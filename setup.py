"""Setuptools shim.

The offline environment has setuptools but not `wheel`, so PEP 660 editable
installs (which build an editable wheel) cannot run.  Keeping a setup.py and
omitting [build-system] from pyproject.toml lets `pip install -e .` use the
legacy `setup.py develop` path, which works without wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "SubZero: a fine-grained lineage system for scientific databases "
        "(ICDE 2013 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.9"],
)
