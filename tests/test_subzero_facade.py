"""Tests for the SubZero facade: strategy plumbing, accounting, re-runs."""

import pytest

from repro import (
    BLACKBOX,
    COMP_ONE_B,
    FULL_ONE_B,
    MAP,
    SciArray,
    SubZero,
)
from repro.errors import QueryError, WorkflowError
from tests.conftest import build_spot_spec


@pytest.fixture
def image(rng):
    return SciArray.from_numpy(rng.random((14, 16)))


class TestStrategyManagement:
    def test_unknown_node_rejected(self):
        sz = SubZero(build_spot_spec())
        with pytest.raises(WorkflowError):
            sz.set_strategy("nope", FULL_ONE_B)

    def test_use_mapping_where_possible(self):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        strategies = sz.strategies()
        assert strategies["smooth"] == (MAP,)
        assert strategies["scale"] == (MAP,)
        assert "spot" not in strategies  # SpotUDF has no mapping functions

    def test_use_mapping_idempotent(self):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.use_mapping_where_possible()
        assert sz.strategies()["smooth"] == (MAP,)

    def test_apply_plan(self):
        sz = SubZero(build_spot_spec())
        sz.apply_plan({"spot": [FULL_ONE_B, BLACKBOX]})
        assert sz.strategies()["spot"] == (FULL_ONE_B, BLACKBOX)


class TestRunAndAccounting:
    def test_accounting_before_run_is_zero(self):
        sz = SubZero(build_spot_spec())
        assert sz.lineage_disk_bytes() == 0
        assert sz.workflow_seconds() == 0.0
        assert sz.input_bytes() == 0
        assert sz.base_storage_bytes() == 0

    def test_accounting_after_run(self, image):
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        assert sz.lineage_disk_bytes() > 0
        assert sz.workflow_seconds() > 0
        assert sz.input_bytes() == image.nbytes
        # base storage: input + 3 node outputs
        assert sz.base_storage_bytes() == 4 * image.nbytes

    def test_rerun_rebuilds_stores(self, image):
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        first = sz.lineage_disk_bytes()
        sz.set_strategy("spot", COMP_ONE_B)
        sz.run({"img": image})
        second = sz.lineage_disk_bytes()
        assert second < first  # composite stores only the bright cells

    def test_wal_accumulates_across_runs(self, image):
        sz = SubZero(build_spot_spec())
        sz.run({"img": image})
        sz.run({"img": image})
        assert len(sz.wal) == 2 * 3

    def test_queries_require_run(self):
        sz = SubZero(build_spot_spec())
        with pytest.raises(QueryError):
            sz.forward_query([(0, 0)], [("smooth", 0)])

    def test_profile_then_query_works(self, image):
        sz = SubZero(build_spot_spec())
        sz.profile({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        assert res.count >= 1  # served by re-execution

    def test_external_version_store(self, image):
        from repro import VersionStore

        store = VersionStore()
        sz = SubZero(build_spot_spec())
        sz.run({"img": image}, version_store=store)
        assert len(store) == 4
