"""Unit + property tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.rtree import RTree


@st.composite
def box_sets(draw):
    ndim = draw(st.integers(1, 3))
    n = draw(st.integers(0, 120))
    lo = draw(
        st.lists(
            st.lists(st.integers(0, 80), min_size=ndim, max_size=ndim),
            min_size=n,
            max_size=n,
        )
    )
    lo = np.asarray(lo, dtype=np.int64).reshape(n, ndim)
    extents = draw(
        st.lists(
            st.lists(st.integers(0, 15), min_size=ndim, max_size=ndim),
            min_size=n,
            max_size=n,
        )
    )
    hi = lo + np.asarray(extents, dtype=np.int64).reshape(n, ndim)
    qlo = np.asarray(draw(st.lists(st.integers(0, 90), min_size=ndim, max_size=ndim)))
    qhi = qlo + np.asarray(draw(st.lists(st.integers(0, 40), min_size=ndim, max_size=ndim)))
    return lo, hi, qlo, qhi


class TestRTreeProperties:
    @given(box_sets(), st.integers(2, 24))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, data, leaf_capacity):
        lo, hi, qlo, qhi = data
        tree = RTree.build(lo, hi, leaf_capacity=leaf_capacity)
        got = sorted(tree.query_box(qlo, qhi).tolist())
        brute = np.nonzero(((lo <= qhi) & (hi >= qlo)).all(axis=1))[0]
        assert got == brute.tolist()

    @given(box_sets())
    @settings(max_examples=40, deadline=None)
    def test_every_box_found_by_its_own_query(self, data):
        lo, hi, _, _ = data
        tree = RTree.build(lo, hi)
        for i in range(min(10, lo.shape[0])):
            assert i in tree.query_box(lo[i], hi[i]).tolist()


class TestRTreeBasics:
    def test_empty(self):
        tree = RTree.build(np.empty((0, 2)), np.empty((0, 2)))
        assert len(tree) == 0
        assert tree.query_box(np.asarray([0, 0]), np.asarray([9, 9])).size == 0

    def test_single(self):
        tree = RTree.build(np.asarray([[2, 2]]), np.asarray([[4, 4]]))
        assert tree.query_point(np.asarray([3, 3])).tolist() == [0]
        assert tree.query_point(np.asarray([5, 5])).size == 0

    def test_from_points(self):
        points = np.asarray([[1, 1], [5, 5], [9, 9]])
        tree = RTree.from_points(points)
        assert tree.query_point(np.asarray([5, 5])).tolist() == [1]

    def test_invalid_boxes(self):
        with pytest.raises(StorageError):
            RTree.build(np.asarray([[2, 2]]), np.asarray([[1, 1]]))
        with pytest.raises(StorageError):
            RTree.build(np.asarray([[0, 0]]), np.asarray([[1, 1]]), leaf_capacity=1)
        with pytest.raises(StorageError):
            RTree.build(np.asarray([[0, 0]]), np.asarray([[1]]))

    def test_invalid_capacity_rejected_on_empty_input(self):
        """The capacity check used to sit after the empty early return, so a
        bad capacity passed silently when the input happened to be empty."""
        with pytest.raises(StorageError):
            RTree.build(np.empty((0, 2)), np.empty((0, 2)), leaf_capacity=1)
        with pytest.raises(StorageError):
            RTree.build(np.empty((0, 2)), np.empty((0, 2)), leaf_capacity=0)

    def test_wrong_query_rank(self):
        tree = RTree.from_points(np.asarray([[1, 1]]))
        with pytest.raises(StorageError):
            tree.query_box(np.asarray([0]), np.asarray([2]))

    def test_nbytes_positive(self):
        tree = RTree.from_points(np.arange(200).reshape(100, 2))
        assert tree.nbytes() > 0

    def test_large_uniform(self):
        rng = np.random.default_rng(3)
        points = rng.integers(0, 1000, size=(5000, 2))
        tree = RTree.from_points(points)
        qlo, qhi = np.asarray([100, 100]), np.asarray([200, 200])
        got = set(tree.query_box(qlo, qhi).tolist())
        brute = set(
            np.nonzero(((points >= qlo) & (points <= qhi)).all(axis=1))[0].tolist()
        )
        assert got == brute
