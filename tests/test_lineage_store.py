"""Unit tests for the strategy-specific lineage stores and the entry table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import coords as C
from repro.core.lineage_store import (
    RegionEntryTable,
    decode_full_value,
    encode_full_value,
    encode_singleton_int_arrays,
    make_store,
)
from repro.core.model import BufferSink, ElementwiseBatch, PayloadBatch, RegionPair
from repro.core.modes import (
    BLACKBOX,
    COMP_ONE_B,
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    MAP,
    PAY_MANY_B,
    PAY_ONE_B,
)
from repro.errors import LineageError, StorageError
from repro.storage import serialize as ser

OUT_SHAPE = (6, 8)
IN_SHAPES = ((6, 8),)


def cells(*coords):
    return np.asarray(coords, dtype=np.int64)


def pk(*coords):
    return C.pack_coords(cells(*coords), OUT_SHAPE)


def make_sink() -> BufferSink:
    """Two general pairs + one elementwise batch + payload rows."""
    sink = BufferSink()
    sink.add_pair(
        RegionPair(
            outcells=cells((0, 0), (0, 1)),
            incells=(cells((1, 1), (1, 2), (2, 2)),),
        )
    )
    sink.add_pair(RegionPair(outcells=cells((5, 5)), incells=(cells((5, 5)),)))
    sink.add_elementwise(
        ElementwiseBatch(
            outcells=cells((3, 3), (3, 4)),
            incells=(cells((3, 3), (3, 4)),),
        )
    )
    return sink


def make_payload_sink() -> BufferSink:
    sink = BufferSink()
    sink.add_pair(RegionPair(outcells=cells((0, 0), (0, 1)), payload=b"AA"))
    sink.add_payload_batch(
        PayloadBatch(
            outcells=cells((3, 3), (4, 4)),
            payloads=np.asarray([[1], [2]], dtype=np.uint8),
        )
    )
    return sink


class TestSingletonEncoding:
    def test_matches_scalar_encoder(self):
        values = np.asarray([0, 7, 123456, 2**40])
        rows = encode_singleton_int_arrays(values)
        for row, v in zip(rows, values):
            assert row.tobytes() == ser.encode_int_array(np.asarray([v]))

    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_twelve_byte_layout_is_stable(self, values):
        """The bulk singleton encoder hard-codes the 12-byte delta layout;
        codec selection must keep emitting it for every single-element
        array (negatives and int64 extremes included) or bulk-written
        entries would diverge from scalar-encoded ones."""
        arr = np.asarray(values, dtype=np.int64)
        rows = encode_singleton_int_arrays(arr)
        assert rows.shape == (arr.size, 12)
        for row, v in zip(rows, arr):
            scalar = ser.encode_int_array(np.asarray([v], dtype=np.int64))
            assert len(scalar) == 12
            assert row.tobytes() == scalar
            decoded, pos = ser.decode_int_array(row.tobytes())
            assert decoded.tolist() == [v] and pos == 12

    def test_full_value_roundtrip(self):
        per_input = [np.asarray([3, 1, 2]), np.asarray([9])]
        buf = encode_full_value(per_input)
        out = decode_full_value(buf, 2)
        assert out[0].tolist() == [1, 2, 3]  # sorted on encode
        assert out[1].tolist() == [9]


class TestRegionEntryTable:
    def test_add_and_query(self):
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0), (0, 3)), b"v0")
        table.add_entry(pk((5, 5)), b"v1")
        assert table.n_entries == 2
        hits = table.candidate_entries(cells((0, 1)))
        # bbox of entry 0 spans (0,0)-(0,3): (0,1) intersects the box
        assert 0 in hits.tolist()
        assert table.entry_value(0) == b"v0"

    def test_exactness_requires_membership_check(self):
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0), (0, 3)), b"v0")
        keys = table.entry_keys(0)
        # (0,1) is inside the bbox but not a member
        assert C.pack_coords(cells((0, 1)), OUT_SHAPE)[0] not in keys.tolist()

    def test_singleton_bulk(self):
        table = RegionEntryTable(OUT_SHAPE)
        keys = pk((1, 1), (2, 2), (3, 3))
        lengths = np.asarray([1, 1, 1], dtype=np.int64)
        table.add_singleton_entries(keys, b"abc", lengths)
        assert table.n_entries == 3
        assert table.entry_value(int(table.candidate_entries(cells((2, 2)))[0])) in (
            b"a", b"b", b"c",
        )

    def test_singleton_validation(self):
        table = RegionEntryTable(OUT_SHAPE)
        with pytest.raises(StorageError):
            table.add_singleton_entries(pk((1, 1)), b"ab", np.asarray([1]))

    def test_empty_entry_rejected(self):
        table = RegionEntryTable(OUT_SHAPE)
        with pytest.raises(StorageError):
            table.add_entry(np.empty(0, dtype=np.int64), b"v")

    def test_incremental_finalize(self):
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0)), b"a")
        assert table.candidate_entries(cells((0, 0))).tolist() == [0]
        table.add_entry(pk((1, 1)), b"b")
        assert len(table.candidate_entries(cells((0, 0), (1, 1)))) == 2

    def test_columns_and_disk(self):
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0), (1, 1)), b"val")
        keys, koff, vbuf, voff = table.columns()
        assert koff.size - 1 == 1
        assert bytes(vbuf[voff[0]: voff[1]]) == b"val"
        assert keys[koff[0]: koff[1]].size == 2
        assert table.disk_bytes() > 0

    def test_all_singleton_keys(self):
        table = RegionEntryTable(OUT_SHAPE)
        table.add_singleton_entries(pk((1, 1)), b"x", np.asarray([1]))
        assert table.all_singleton_keys() is not None
        table.add_entry(pk((2, 2), (3, 3)), b"y")
        assert table.all_singleton_keys() is None

    def test_in_situ_value_probes(self):
        """value_contains_any / value_intersect / value_bounds answer from
        the encoded bytes without slicing or decoding entry values."""
        table = RegionEntryTable(OUT_SHAPE)
        cells_a = np.sort(pk((1, 1), (1, 2), (1, 3)))
        cells_b = np.sort(pk((4, 0), (5, 7)))
        table.add_entry(pk((0, 0)), ser.encode_int_array(cells_a))
        table.add_entry(pk((2, 2)), ser.encode_int_array(cells_b))
        query = np.sort(pk((1, 2), (5, 7)))
        assert table.value_contains_any(0, query)
        assert table.value_contains_any(1, query)
        assert not table.value_contains_any(0, np.sort(pk((0, 5))))
        assert table.value_intersect(0, query).tolist() == [pk((1, 2))[0]]
        lo, hi, n = table.value_bounds(0)
        assert (lo, hi, n) == (int(cells_a[0]), int(cells_a[-1]), 3)

    def test_in_situ_probes_with_multi_field_values(self):
        """field= skips preceding per-input cell sets inside one value."""
        table = RegionEntryTable(OUT_SHAPE)
        in0 = np.sort(pk((0, 1), (0, 2)))
        in1 = np.sort(pk((3, 3)))
        table.add_entry(pk((5, 5)), encode_full_value([in0, in1]))
        assert table.value_contains_any(0, in0, field=0)
        assert not table.value_contains_any(0, in0, field=1)
        assert table.value_contains_any(0, in1, field=1)
        assert table.value_bounds(0, field=1)[2] == 1

    def test_probe_field_out_of_range_raises(self):
        """A field index past the entry's own value must fail loudly, not
        silently probe the next entry's bytes."""
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0)), ser.encode_int_array(np.sort(pk((1, 1)))))
        table.add_entry(pk((2, 2)), ser.encode_int_array(np.sort(pk((3, 3)))))
        with pytest.raises(StorageError):
            table.value_contains_any(0, np.sort(pk((3, 3))), field=1)

    def test_probe_rejects_value_overrunning_entry(self):
        """A value whose header claims more payload than the entry holds
        (bit rot after load) must raise, not read the next entry's bytes."""
        good = ser.encode_int_array(np.sort(pk((1, 1), (1, 2))))
        overstated = bytearray(good)
        overstated[2] = 9  # inflate the cell count past the payload
        table = RegionEntryTable(OUT_SHAPE)
        table.add_entry(pk((0, 0)), bytes(overstated))
        table.add_entry(pk((2, 2)), ser.encode_int_array(np.sort(pk((3, 3)))))
        with pytest.raises(StorageError):
            table.value_contains_any(0, np.sort(pk((1, 1))))


class TestMakeStore:
    def test_mapping_strategies_rejected(self):
        for strategy in (MAP, BLACKBOX):
            with pytest.raises(LineageError):
                make_store("n", strategy, OUT_SHAPE, IN_SHAPES)

    @pytest.mark.parametrize(
        "strategy",
        [FULL_ONE_B, FULL_ONE_F, FULL_MANY_B, FULL_MANY_F, PAY_ONE_B, PAY_MANY_B, COMP_ONE_B],
        ids=lambda s: s.label,
    )
    def test_factory_produces_working_store(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        assert store.strategy == strategy
        assert store.n_entries == 0
        assert store.disk_bytes() == 0


class TestFullBackwardStores:
    @pytest.mark.parametrize("strategy", [FULL_ONE_B, FULL_MANY_B], ids=lambda s: s.label)
    def test_backward_lookup(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_sink())
        store.finalize_if_possible()
        # query the multi-cell pair and one elementwise cell
        q = pk((0, 1), (3, 3), (2, 7))
        matched, per_input = store.backward_full(q)
        assert matched.tolist() == [True, True, False]
        got = set(per_input[0].tolist())
        expected = set(pk((1, 1), (1, 2), (2, 2), (3, 3)).tolist())
        assert got == expected

    @pytest.mark.parametrize("strategy", [FULL_ONE_B, FULL_MANY_B], ids=lambda s: s.label)
    def test_forward_scan_on_backward_store(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_sink())
        store.finalize_if_possible()
        q = C.pack_coords(cells((1, 2)), IN_SHAPES[0])
        outs = store.scan_forward_full(q, 0)
        assert set(outs.tolist()) == set(pk((0, 0), (0, 1)).tolist())

    def test_disk_grows_with_entries(self):
        store = make_store("n", FULL_ONE_B, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_sink())
        assert store.disk_bytes() > 0
        assert store.n_entries == 5  # 3 hash keys for pairs + 2 elementwise


class TestFullForwardStores:
    @pytest.mark.parametrize("strategy", [FULL_ONE_F, FULL_MANY_F], ids=lambda s: s.label)
    def test_forward_lookup(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_sink())
        store.finalize_if_possible()
        q = C.pack_coords(cells((1, 1), (3, 4)), IN_SHAPES[0])
        outs = store.forward_full(q, 0)
        assert set(outs.tolist()) == set(pk((0, 0), (0, 1), (3, 4)).tolist())

    @pytest.mark.parametrize("strategy", [FULL_ONE_F, FULL_MANY_F], ids=lambda s: s.label)
    def test_backward_scan_on_forward_store(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_sink())
        store.finalize_if_possible()
        q = pk((0, 0), (5, 5))
        matched, per_input = store.scan_backward_full(q)
        assert matched.all()
        got = set(per_input[0].tolist())
        expected = set(
            C.pack_coords(cells((1, 1), (1, 2), (2, 2), (5, 5)), IN_SHAPES[0]).tolist()
        )
        assert got == expected


class TestPayloadStores:
    @pytest.mark.parametrize("strategy", [PAY_ONE_B, PAY_MANY_B], ids=lambda s: s.label)
    def test_backward_payload(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_payload_sink())
        store.finalize_if_possible()
        q = pk((0, 0), (3, 3), (5, 0))
        matched, pairs = store.backward_payload(q)
        assert matched.tolist() == [True, True, False]
        payloads = {payload for _, payload in pairs}
        assert b"AA" in payloads
        assert b"\x01" in payloads

    def test_payone_rows_fast_path(self):
        store = make_store("n", PAY_ONE_B, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_payload_sink())
        matched, hits, payloads = store.backward_payload_rows(pk((0, 1), (4, 4)))
        assert matched.all()
        assert len(payloads) == 2
        assert b"AA" in payloads and b"\x02" in payloads

    def test_paymany_has_no_rows_fast_path(self):
        store = make_store("n", PAY_MANY_B, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_payload_sink())
        assert store.backward_payload_rows(pk((0, 0))) is None

    @pytest.mark.parametrize("strategy", [PAY_ONE_B, PAY_MANY_B], ids=lambda s: s.label)
    def test_payload_columns_and_overridden(self, strategy):
        store = make_store("n", strategy, OUT_SHAPE, IN_SHAPES)
        store.ingest(make_payload_sink())
        keys, koff, vbuf, voff = store.payload_entries()
        assert int(koff[-1]) == keys.size == 4
        assert int(voff[-1]) == len(vbuf)
        overridden = store.overridden_keys()
        assert set(overridden.tolist()) == set(pk((0, 0), (0, 1), (3, 3), (4, 4)).tolist())

    def test_payone_duplicates_payload_per_cell(self):
        store = make_store("n", PAY_ONE_B, OUT_SHAPE, IN_SHAPES)
        sink = BufferSink()
        sink.add_pair(RegionPair(outcells=cells((0, 0), (0, 1), (0, 2)), payload=b"PPPP"))
        store.ingest(sink)
        # 3 keys * (8 bytes + 4-byte payload copy)
        assert store.disk_bytes() == 3 * 12

    def test_full_store_rejects_payload_queries(self):
        store = make_store("n", FULL_ONE_B, OUT_SHAPE, IN_SHAPES)
        with pytest.raises(LineageError):
            store.backward_payload(pk((0, 0)))
        with pytest.raises(LineageError):
            store.payload_entries()

    def test_payload_store_rejects_full_queries(self):
        store = make_store("n", PAY_ONE_B, OUT_SHAPE, IN_SHAPES)
        with pytest.raises(LineageError):
            store.backward_full(pk((0, 0)))
