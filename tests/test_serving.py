"""The concurrent serving core: sessions, pinning, LRU eviction, shards.

Five layers under test:

* **threaded stress** — N threads x M mixed backward/forward queries
  against one catalog with a tiny ``memory_budget_bytes``, asserting the
  answers match the single-threaded baseline, that eviction/pinning never
  serves a closed mapping, and that the budget caps resident store bytes.
  Thread joins carry explicit timeouts so a deadlock fails instead of
  hanging (CI additionally runs this module under pytest-timeout).
* **pin/evict semantics** — a store borrowed (pinned) survives being chosen
  by the LRU; its mapping closes exactly when the last pin drops; a closed
  segment handle refuses section access.
* **sharded segments** — a Hypothesis property asserts a store flushed with
  a tiny shard threshold answers byte-identically to the monolithic flush,
  shards are recorded in the catalog manifest, sibling shards map lazily,
  and recovery quarantines *every* file of a corrupt sharded store.
* **atomic manifest** — a crash mid-``save_manifest`` leaves the previous
  ``catalog.json`` intact (tmp + rename), not a truncated brick.
* **lifecycle** — Segment refcounting, catalog/SubZero close() and context
  managers, serving counters on ``QueryResult.explain()``.
"""

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    FULL_MANY_B,
    FULL_ONE_B,
    PAY_ONE_B,
    QuerySession,
    SciArray,
    SubZero,
    WorkflowSpec,
)
from repro.arrays.versions import VersionStore
from repro.core.catalog import StoreCatalog
from repro.core.lineage_store import make_store
from repro.core.runtime import LineageRuntime
from repro.errors import StorageError
from repro.storage.segment import (
    Segment,
    SegmentWriter,
    ShardedSegment,
    open_segment,
    segment_files,
)
from repro.workflow.recovery import recover_lineage
from tests.conftest import SpotUDF
from tests.test_segments import ALL_FULL, SHAPE, _answers, sinks

JOIN_TIMEOUT = 120  # seconds before a hung worker counts as a deadlock


# -- workload ------------------------------------------------------------------


def _serving_spec() -> WorkflowSpec:
    """Three store-bearing detector stages over one image source."""
    spec = WorkflowSpec(name="serving")
    spec.add_source("img")
    spec.add_node("s1", SpotUDF(thresh=0.55, radius=1), ["img"])
    spec.add_node("s2", SpotUDF(thresh=0.5, radius=2), ["s1"])
    spec.add_node("s3", SpotUDF(thresh=0.5, radius=1), ["s2"])
    return spec


def _assign(sz: SubZero) -> None:
    sz.set_strategy("s1", FULL_ONE_B)
    sz.set_strategy("s2", FULL_MANY_B)
    sz.set_strategy("s3", PAY_ONE_B)


def _mixed_queries(rng, shape, n_each: int = 2):
    """(kind, cells, path) triples mixing matched, mismatched and payload
    paths over all three stores."""
    jobs = []
    for _ in range(n_each):
        cells = [tuple(c) for c in rng.integers(0, min(shape), size=(6, 2))]
        jobs.extend(
            [
                ("b", cells, ["s1"]),
                ("b", cells, ["s2", "s1"]),
                ("f", cells, ["s1", "s2"]),
                ("b", cells, ["s3", "s2"]),
                ("f", cells, ["s2"]),
                ("f", cells, ["s3"]),
            ]
        )
    return jobs


def _run_job(sz: SubZero, job, **overrides):
    kind, cells, path = job
    if kind == "b":
        return sz.backward_query(cells, path, **overrides)
    return sz.forward_query(cells, path, **overrides)


def _coords_set(result):
    return sorted(map(tuple, result.coords.tolist()))


@pytest.fixture(scope="module")
def flushed_workflow(tmp_path_factory):
    """Run the serving workflow once, flush it, and keep the artifacts a
    fresh engine needs to resume (versions + WAL + lineage dir)."""
    rng = np.random.default_rng(7)
    image = SciArray.from_numpy(rng.random((24, 28)))
    versions = VersionStore()
    sz = SubZero(_serving_spec(), enable_query_opt=False)
    _assign(sz)
    sz.run({"img": image}, version_store=versions)
    lineage_dir = str(tmp_path_factory.mktemp("serving-lineage"))
    sz.flush_lineage(lineage_dir)
    baseline = {
        i: _coords_set(_run_job(sz, job))
        for i, job in enumerate(_mixed_queries(np.random.default_rng(3), (24, 28)))
    }
    return {
        "versions": versions,
        "wal": sz.wal,
        "dir": lineage_dir,
        "baseline": baseline,
        "jobs": _mixed_queries(np.random.default_rng(3), (24, 28)),
    }


def _resume_engine(flushed, memory_budget_bytes=None) -> SubZero:
    sz = SubZero(
        _serving_spec(),
        enable_query_opt=False,
        memory_budget_bytes=memory_budget_bytes,
    )
    sz.resume(flushed["versions"], wal=flushed["wal"], lineage_dir=flushed["dir"])
    return sz


def _tiny_budget(directory: str) -> int:
    """A budget that fits the largest single store and nothing else, so
    mixed queries must evict between stores."""
    catalog = StoreCatalog.open(directory)
    return max(entry.nbytes for entry in catalog.entries()) + 1


# -- the threaded stress test --------------------------------------------------


@pytest.mark.timeout(300)
class TestThreadedServing:
    def test_mixed_queries_match_baseline_under_tiny_budget(self, flushed_workflow):
        budget = _tiny_budget(flushed_workflow["dir"])
        jobs = flushed_workflow["jobs"]
        baseline = flushed_workflow["baseline"]
        with _resume_engine(flushed_workflow, memory_budget_bytes=budget) as sz:
            n_threads, rounds = 8, 4
            failures: list[str] = []

            def worker(seed: int) -> None:
                order = np.random.default_rng(seed).permutation(len(jobs))
                with QuerySession(sz.runtime) as session:
                    for _ in range(rounds):
                        for j in order:
                            got = _coords_set(_run_job(sz, jobs[j], session=session))
                            if got != baseline[j]:
                                failures.append(
                                    f"job {j} diverged: {got[:4]}... vs "
                                    f"{baseline[j][:4]}..."
                                )
                                return

            threads = [
                threading.Thread(target=worker, args=(seed,), daemon=True)
                for seed in range(n_threads)
            ]
            for t in threads:
                t.start()
            deadline = time.monotonic() + JOIN_TIMEOUT
            for t in threads:
                t.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not any(t.is_alive() for t in threads), (
                "threaded serving deadlocked (workers still alive at timeout)"
            )
            assert not failures, failures[0]

            stats = sz.runtime.serving_stats()
            # the tiny budget forced churn, and the churn was real sharing:
            # hits dominate because sessions pin stores across their queries
            assert stats["evictions"] > 0
            assert stats["hits"] > 0
            # with every session closed, the budget caps resident bytes
            assert stats["resident_bytes"] <= budget
        assert sz.runtime.serving_stats()["open_mappings"] == 0  # close() drained

    def test_serve_threadpool_matches_baseline(self, flushed_workflow):
        """The facade path: SubZero.serve() on a thread pool, hot cache."""
        from repro.core.model import Direction, LineageQuery, QueryStep

        jobs = flushed_workflow["jobs"]
        baseline = flushed_workflow["baseline"]
        queries = [
            LineageQuery(
                cells=np.asarray(job[1]),
                path=tuple(QueryStep(n, 0) for n in job[2]),
                direction=Direction.BACKWARD if job[0] == "b" else Direction.FORWARD,
            )
            for job in jobs
        ]
        with _resume_engine(flushed_workflow) as sz:
            pool = ThreadPoolExecutor(max_workers=1)
            try:
                future = pool.submit(sz.serve, queries * 2, 8)
                done, _ = wait([future], timeout=JOIN_TIMEOUT)
                assert done, "SubZero.serve deadlocked"
                results = future.result()
            finally:
                pool.shutdown(wait=False)
            for i, result in enumerate(results):
                assert _coords_set(result) == baseline[i % len(jobs)]
            stats = sz.runtime.serving_stats()
            assert stats["misses"] <= 3  # one open per store, shared by all


# -- pin / evict semantics -----------------------------------------------------


class TestPinningAndEviction:
    def test_pinned_store_survives_eviction_until_release(self, flushed_workflow):
        # budget below every store size: each borrow is immediately over
        # budget, but a pinned record is never a victim — it closes at the
        # moment its last pin drops and the budget is re-checked
        catalog = StoreCatalog.open(flushed_workflow["dir"], memory_budget_bytes=1)
        key = catalog.keys()[0]
        record = catalog.borrow(*key)
        assert record is not None and record.pins == 1
        assert not record.evicted and not record.closed  # pinned: untouchable
        assert catalog.stats()["open_mappings"] == 1
        # the store still answers (mapping alive under the pin)
        assert record.store.n_entries >= 0
        catalog.release(record)
        assert record.evicted and record.closed  # last pin dropped -> closed
        assert record.store._segment is None
        assert catalog.stats()["open_mappings"] == 0
        assert catalog.stats()["evictions"] == 1
        catalog.close()

    def test_lru_evicts_least_recently_used_unpinned(self, flushed_workflow):
        catalog = StoreCatalog.open(flushed_workflow["dir"])
        sizes = {entry.key: entry.nbytes for entry in catalog.entries()}
        total = sum(sizes.values())
        keys = catalog.keys()
        assert len(keys) == 3
        catalog.memory_budget_bytes = total - 1  # forces exactly one eviction
        opened = [catalog.open_store(*key) for key in keys]
        assert all(store is not None for store in opened)
        stats = catalog.stats()
        assert stats["evictions"] == 1
        assert not catalog.is_open(*keys[0])  # the LRU victim
        assert catalog.is_open(*keys[1]) and catalog.is_open(*keys[2])
        assert stats["resident_bytes"] <= catalog.memory_budget_bytes
        # touching the victim again is a miss (reopen), the others are hits
        catalog.open_store(*keys[0])
        assert catalog.stats()["misses"] == 4
        catalog.close()

    def test_closed_segment_handle_refuses_reads(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_array("vec", np.arange(16, dtype=np.int64))
        writer.write(path)
        seg = Segment.open(path)
        seg.acquire()  # two holders
        seg.close()
        assert not seg.closed  # one reference remains
        assert seg.array("vec").size == 16
        seg.close()
        assert seg.closed
        with pytest.raises(StorageError, match="closed"):
            seg.array("vec")
        with pytest.raises(StorageError, match="closed"):
            seg.acquire()

    def test_session_pins_against_concurrent_eviction_pressure(self, flushed_workflow):
        """A session's store keeps answering while another thread churns
        the cache hard enough to evict everything unpinned."""
        budget = _tiny_budget(flushed_workflow["dir"])
        with _resume_engine(flushed_workflow, memory_budget_bytes=budget) as sz:
            keys = sz.runtime.catalog.keys()
            stop = threading.Event()

            def churn():
                while not stop.is_set():
                    for key in keys:
                        with QuerySession(sz.runtime) as s:
                            s.store_for(*key)

            churner = threading.Thread(target=churn, daemon=True)
            churner.start()
            try:
                with QuerySession(sz.runtime) as session:
                    store = session.store_for(*keys[0])
                    for _ in range(200):
                        assert store.n_entries > 0  # never a cleared store
            finally:
                stop.set()
                churner.join(timeout=JOIN_TIMEOUT)
            assert not churner.is_alive()
            assert sz.runtime.serving_stats()["evictions"] > 0


# -- sharded segments ----------------------------------------------------------


class TestShardedSegments:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case=sinks())
    @settings(max_examples=15, deadline=None)
    def test_sharded_flush_answers_identically(self, strategy, case, tmp_path_factory):
        """Hypothesis equivalence: shard/LRU round-trips preserve exact
        query answers vs. the monolithic path."""
        sink, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        before = _answers(store, strategy, query)

        base = tmp_path_factory.mktemp("shards")
        mono_path = str(base / "mono.seg")
        shard_path = str(base / "sharded.seg")
        store.flush_segment(mono_path)
        store.flush_segment(shard_path, shard_threshold_bytes=64)

        mono = make_store("n", strategy, SHAPE, (SHAPE,))
        mono.load_segment(mono_path)
        sharded = make_store("n", strategy, SHAPE, (SHAPE,))
        sharded.load_segment(shard_path)
        assert sharded.lowered_ready()
        assert _answers(mono, strategy, query) == before
        assert _answers(sharded, strategy, query) == before
        mono.close()
        sharded.close()

    def test_sharded_write_layout_and_lazy_shard_open(self, tmp_path):
        store = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
        from repro.core.model import BufferSink, ElementwiseBatch

        sink = BufferSink()
        rng = np.random.default_rng(2)
        cells = rng.integers(0, 9, size=(200, 2))
        sink.add_elementwise(
            ElementwiseBatch(outcells=cells, incells=(cells[::-1].copy(),))
        )
        store.ingest(sink)
        path = str(tmp_path / "store.seg")
        store.flush_segment(path, shard_threshold_bytes=512)
        files = segment_files(path)
        assert len(files) > 1  # genuinely sharded
        assert not os.path.exists(path)  # no stale monolith
        assert files == [f"{path}.{i}" for i in range(len(files))]

        seg = open_segment(path)
        assert isinstance(seg, ShardedSegment)
        opened_at_start = seg.open_shard_count()
        assert opened_at_start < len(files)  # shard 0 + nothing else yet
        clone = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
        clone.load_segment(seg)
        after_load = seg.open_shard_count()
        # the shard(s) holding the lowered probe tables stay unmapped until
        # a mismatched scan asks for them
        q = np.sort(np.unique(rng.integers(0, 99, size=16)))
        clone.scan_forward_full(q, 0)
        assert seg.open_shard_count() >= after_load
        expect = store.scan_forward_full(q, 0)
        got = clone.scan_forward_full(q, 0)
        assert got.tolist() == expect.tolist()
        clone.close()

    def test_mixed_shard_generations_refused(self, tmp_path):
        """A crash mid-reflush can leave internally-clean shards from two
        different writes; reading across them must fail loudly (and under
        recovery, quarantine), never silently mix generations."""
        def write_sharded(tag: bytes) -> list[str]:
            writer = SegmentWriter()
            for i in range(4):
                writer.add_bytes(f"s{i}", tag * 200)
            _, files = writer.write_sharded(str(tmp_path / "x.seg"), 300)
            assert len(files) >= 2
            return files

        files_old = write_sharded(b"A")
        import shutil

        kept_old = str(tmp_path / "old.shard")
        shutil.copy(files_old[1], kept_old)  # a shard of flush generation 1
        write_sharded(b"B")  # generation 2 replaces all shards...
        shutil.copy(kept_old, files_old[1])  # ...but the crash kept an old one

        seg = open_segment(str(tmp_path / "x.seg"))
        with pytest.raises(StorageError, match="different flush"):
            seg.view("s1")  # s1 lives in the stale shard
        seg.close()
        with pytest.raises(StorageError, match="different flush"):
            open_segment(str(tmp_path / "x.seg"), verify=True)

    def test_reflush_monolith_removes_stale_shards(self, tmp_path):
        writer = SegmentWriter()
        for i in range(6):
            writer.add_bytes(f"s{i}", bytes(100))
        path = str(tmp_path / "x.seg")
        total, files = writer.write_sharded(path, 150)
        assert len(files) > 1 and total > 0
        # re-flush the same logical segment as a monolith
        writer2 = SegmentWriter()
        writer2.add_bytes("s0", bytes(10))
        writer2.write(path)
        assert segment_files(path) == [path]
        assert not os.path.exists(path + ".0")

    def test_catalog_records_and_reopens_shards(self, flushed_workflow, tmp_path):
        with _resume_engine(flushed_workflow) as sz:
            written = sz.runtime.flush_all(str(tmp_path), shard_threshold_bytes=512)
            assert written > 0
        catalog = StoreCatalog.open(str(tmp_path))
        sharded_entries = [e for e in catalog.entries() if e.shards]
        assert sharded_entries, "no store crossed the shard threshold"
        for entry in sharded_entries:
            assert [os.path.basename(p) for p in segment_files(
                os.path.join(str(tmp_path), entry.file)
            )] == list(entry.shards)
        # the sharded catalog serves the same answers as the original dir
        sz_mono = SubZero(_serving_spec(), enable_query_opt=False)
        sz_mono.resume(
            flushed_workflow["versions"],
            wal=flushed_workflow["wal"],
            lineage_dir=flushed_workflow["dir"],
        )
        sz_shard = SubZero(_serving_spec(), enable_query_opt=False)
        sz_shard.resume(
            flushed_workflow["versions"], wal=flushed_workflow["wal"],
            lineage_dir=str(tmp_path),
        )
        for job in flushed_workflow["jobs"]:
            assert _coords_set(_run_job(sz_shard, job)) == _coords_set(
                _run_job(sz_mono, job)
            )
        sz_mono.close()
        sz_shard.close()

    def test_recovery_quarantines_every_shard_of_a_corrupt_store(
        self, flushed_workflow, tmp_path
    ):
        with _resume_engine(flushed_workflow) as sz:
            sz.runtime.flush_all(str(tmp_path), shard_threshold_bytes=512)
        catalog = StoreCatalog.open(str(tmp_path))
        entry = next(e for e in catalog.entries() if e.shards)
        victim = os.path.join(str(tmp_path), entry.shards[-1])
        with open(victim, "rb") as fh:
            raw = bytearray(fh.read())
        raw[-10] ^= 0xFF
        with open(victim, "wb") as fh:
            fh.write(bytes(raw))

        report = recover_lineage(str(tmp_path))
        assert not report.ok
        assert any(fname == entry.file for fname, _ in report.quarantined)
        for shard in entry.shards:
            spath = os.path.join(str(tmp_path), shard)
            assert not os.path.exists(spath)
            assert os.path.exists(spath + ".quarantined")
        # the survivors still serve after a plain reopen
        fresh = LineageRuntime()
        assert fresh.load_all(str(tmp_path)) == len(catalog) - 1


# -- atomic manifest -----------------------------------------------------------


class TestManifestAtomicity:
    def test_interrupted_save_leaves_previous_manifest_intact(
        self, flushed_workflow, tmp_path, monkeypatch
    ):
        with _resume_engine(flushed_workflow) as sz:
            sz.runtime.flush_all(str(tmp_path))
        manifest_path = os.path.join(str(tmp_path), "catalog.json")
        with open(manifest_path, encoding="utf-8") as fh:
            before = fh.read()
        catalog = StoreCatalog.open(str(tmp_path))

        real_dump = json.dump

        def crashing_dump(obj, fh, **kwargs):
            fh.write('{"format": "subzero-catalog", "stores": [{"trunc')
            raise OSError("disk full mid-write")

        monkeypatch.setattr(json, "dump", crashing_dump)
        # the storage boundary wraps the raw OSError (invariant SZ004)
        with pytest.raises(StorageError, match="disk full"):
            catalog.save_manifest()
        monkeypatch.setattr(json, "dump", real_dump)

        # the crash hit the tmp file only: the manifest is byte-identical,
        # still opens, and no tmp debris is left behind
        with open(manifest_path, encoding="utf-8") as fh:
            assert fh.read() == before
        assert not os.path.exists(manifest_path + ".tmp")
        reopened = StoreCatalog.open(str(tmp_path))
        assert len(reopened) == len(catalog)


# -- lifecycle + stats surfacing -----------------------------------------------


class TestLifecycleAndStats:
    def test_subzero_context_manager_drains_mappings(self, flushed_workflow):
        with _resume_engine(flushed_workflow) as sz:
            _run_job(sz, flushed_workflow["jobs"][0])
            assert sz.runtime.serving_stats()["open_mappings"] >= 1
        assert sz.runtime.serving_stats()["open_mappings"] == 0

    def test_explain_surfaces_serving_cache_counters(self, flushed_workflow):
        with _resume_engine(flushed_workflow) as sz:
            result = _run_job(sz, flushed_workflow["jobs"][0])
            assert result.cache is not None
            text = result.explain()
            assert "serving cache:" in text
            assert "open mappings" in text
            # the collector carries the same snapshot for benchmarks
            assert sz.stats.serving["misses"] >= 1

    def test_catalog_context_manager(self, flushed_workflow):
        with StoreCatalog.open(flushed_workflow["dir"]) as catalog:
            key = catalog.keys()[0]
            assert catalog.open_store(*key) is not None
            assert catalog.open_count() == 1
        assert catalog.open_count() == 0

    def test_closed_store_raises_instead_of_answering_empty(self, flushed_workflow):
        """Regression: a caller that holds a store across its eviction must
        get a loud StorageError, never a silent empty answer."""
        catalog = StoreCatalog.open(flushed_workflow["dir"])
        key = ("s1", FULL_ONE_B)
        store = catalog.open_store(*key)
        q = np.arange(8, dtype=np.int64)
        matched, _ = store.backward_full(q)  # live: answers fine
        assert matched.shape == (8,)
        catalog.close()
        with pytest.raises(StorageError, match="closed"):
            store.backward_full(q)
        with pytest.raises(StorageError, match="QuerySession"):
            store.scan_forward_full(q, 0)

    def test_open_store_under_tiny_budget_returns_live_store(self, flushed_workflow):
        """Regression: the unpinned open_store path must never hand back a
        store its own unpin just evicted, even when the budget is smaller
        than the store itself."""
        catalog = StoreCatalog.open(flushed_workflow["dir"], memory_budget_bytes=1)
        for key in catalog.keys():
            store = catalog.open_store(*key)
            assert store is not None
            assert store.n_entries > 0  # live, not evicted-and-poisoned
        catalog.close()

    def test_store_close_is_idempotent_and_resident_safe(self, flushed_workflow):
        catalog = StoreCatalog.open(flushed_workflow["dir"])
        key = catalog.keys()[0]
        store = catalog.open_store(*key)
        catalog.close()
        store.close()  # already closed by the catalog: must be a no-op
        resident = make_store("x", FULL_ONE_B, SHAPE, (SHAPE,))
        resident.close()  # resident store: nothing to release, no error
