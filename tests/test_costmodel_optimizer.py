"""Tests for the cost model and the lineage-strategy optimizer (ILP + greedy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SciArray, SubZero
from repro.core.costmodel import CostModel
from repro.core.model import Direction, LineageQuery
from repro.core.modes import (
    BLACKBOX,
    FULL_MANY_B,
    FULL_ONE_B,
    FULL_ONE_F,
    MAP,
    PAY_ONE_B,
)
from repro.core.optimizer import (
    StrategyOptimizer,
    WorkloadProfile,
    candidate_strategies,
)
from repro.core.stats import StatsCollector
from repro.errors import OptimizationError
from tests.conftest import SpotUDF, build_spot_spec


def seeded_stats(node="udf", n_pairs=1000, fanin=4, fanout=1, payload=8):
    stats = StatsCollector()
    s = stats.get(node)
    s.compute_seconds = 0.2
    s.output_size = 10000
    s.input_sizes = (10000,)
    s.n_pairs = n_pairs
    s.n_outcells = n_pairs * fanout
    s.n_incells = n_pairs * fanin
    s.n_payload_pairs = n_pairs
    s.n_payload_outcells = n_pairs * fanout
    s.payload_bytes = n_pairs * payload
    return stats


class TestCostModel:
    def test_blackbox_free_storage(self):
        model = CostModel(seeded_stats())
        assert model.disk_bytes("udf", BLACKBOX) == 0
        assert model.write_seconds("udf", MAP) == 0

    def test_disk_scales_with_fanin(self):
        lo = CostModel(seeded_stats(fanin=1))
        hi = CostModel(seeded_stats(fanin=100))
        assert hi.disk_bytes("udf", FULL_ONE_B) > lo.disk_bytes("udf", FULL_ONE_B)

    def test_payload_disk_independent_of_fanin(self):
        lo = CostModel(seeded_stats(fanin=1))
        hi = CostModel(seeded_stats(fanin=100))
        assert hi.disk_bytes("udf", PAY_ONE_B) == lo.disk_bytes("udf", PAY_ONE_B)

    def test_measured_disk_overrides_formula(self):
        stats = seeded_stats()
        stats.get("udf").disk_bytes["<-FullOne"] = 12345
        model = CostModel(stats)
        assert model.disk_bytes("udf", FULL_ONE_B) == 12345

    def test_codec_sampled_bytes_shrink_full_estimates(self):
        """Sampled interval-coded footprints (e.g. convolution lineage at
        ~2 bytes/cell) must flow into the Full estimates in place of the
        flat enc_cell_bytes constant."""
        flat = CostModel(seeded_stats(fanin=25))
        sampled_stats = seeded_stats(fanin=25)
        s = sampled_stats.get("udf")
        s.enc_in_bytes = 2 * s.n_incells  # codec-priced: ~2 bytes per cell
        sampled = CostModel(sampled_stats)
        for strategy in (FULL_ONE_B, FULL_MANY_B):
            assert sampled.disk_bytes("udf", strategy) < flat.disk_bytes(
                "udf", strategy
            )
        # forward stores encode output cells; input-side sampling alone
        # must not change them
        assert sampled.disk_bytes("udf", FULL_ONE_F) == flat.disk_bytes(
            "udf", FULL_ONE_F
        )

    def test_record_sink_prices_contiguous_lineage_below_constant(self):
        """record_sink with shapes prices pairs through int_array_nbytes;
        contiguous regions interval-code far below 9 bytes/cell."""
        from repro.core.model import BufferSink, RegionPair

        shape = (32, 32)
        sink = BufferSink()
        for row in range(8):
            block = np.stack(
                [np.full(32, row, dtype=np.int64), np.arange(32, dtype=np.int64)],
                axis=1,
            )
            sink.add_pair(RegionPair(outcells=block[:1], incells=(block,)))
        stats = StatsCollector()
        stats.record_sink("conv", sink, out_shape=shape, in_shapes=(shape,))
        s = stats.get("conv")
        assert s.enc_in_bytes > 0
        assert s.enc_in_bytes_per_cell < 2.0  # 32-cell runs: ~0.5 bytes/cell
        assert s.enc_out_bytes_per_cell == 12.0  # singleton layout per pair
        # a later shape-less record_sink overwrites the denominators; the
        # codec samples must reset rather than describe the previous sink
        stats.record_sink("conv", sink)
        assert stats.get("conv").enc_in_bytes == 0
        assert stats.get("conv").enc_in_bytes_per_cell is None

    def test_matched_query_cheaper_than_mismatched(self):
        model = CostModel(seeded_stats())
        matched = model.query_seconds("udf", FULL_ONE_B, True, 100)
        mismatched = model.query_seconds("udf", FULL_ONE_B, False, 100)
        assert matched < mismatched

    def test_blackbox_query_cost_tracks_compute(self):
        model = CostModel(seeded_stats())
        assert model.query_seconds("udf", BLACKBOX, True, 10) >= 0.2

    def test_observed_query_time_preferred(self):
        stats = seeded_stats()
        model = CostModel(stats)
        model.record_observation("udf", FULL_ONE_B, True, 42.0)
        assert model.query_seconds("udf", FULL_ONE_B, True, 100) == 42.0

    def test_require_profiled(self):
        model = CostModel(StatsCollector())
        with pytest.raises(OptimizationError):
            model.require_profiled("ghost")


class TestWorkloadProfile:
    def test_weights_normalised(self):
        q1 = LineageQuery(np.asarray([[0, 0]]), (("a", 0), ("b", 0)), Direction.BACKWARD)
        q2 = LineageQuery(np.asarray([[0, 0]]), (("a", 0),), Direction.FORWARD)
        profile = WorkloadProfile.from_queries([q1, q2])
        assert profile.weights["a"][Direction.BACKWARD] == 0.5
        assert profile.weights["a"][Direction.FORWARD] == 0.5
        assert profile.weights["b"][Direction.BACKWARD] == 0.5

    def test_weighted_queries(self):
        q = LineageQuery(np.asarray([[0, 0]]), (("a", 0),), Direction.BACKWARD)
        profile = WorkloadProfile.from_queries([(q, 3.0)])
        assert profile.weights["a"][Direction.BACKWARD] == 1.0


class TestCandidateStrategies:
    def test_spot_udf_candidates(self):
        labels = {s.label for s in candidate_strategies(SpotUDF())}
        assert "<-FullOne" in labels and "->FullOne" in labels
        assert "<-PayOne" in labels and "<-CompOne" in labels
        assert "Map" not in labels
        assert "Blackbox" in labels


def _optimize(stats, directions, max_disk, pinned=None, max_run=None):
    model = CostModel(stats)
    optimizer = StrategyOptimizer(model)
    profile = WorkloadProfile(
        weights={"udf": directions}, cells=100.0
    )
    return optimizer.optimize(
        {"udf": SpotUDF(name="udf")},
        profile,
        max_disk_bytes=max_disk,
        max_runtime_seconds=max_run,
        pinned=pinned,
    )


class TestStrategyOptimizer:
    def test_tiny_budget_means_blackbox(self):
        result = _optimize(seeded_stats(), {Direction.BACKWARD: 1.0}, max_disk=10)
        stored = [s for s in result.plan["udf"] if s.stores_pairs]
        assert stored == []
        assert BLACKBOX in result.plan["udf"]

    def test_big_budget_materialises(self):
        result = _optimize(seeded_stats(), {Direction.BACKWARD: 1.0}, max_disk=1e9)
        stored = [s for s in result.plan["udf"] if s.stores_pairs]
        assert stored, result.describe()
        assert result.est_query_seconds < 0.2  # better than re-execution

    def test_forward_workload_picks_forward_index(self):
        result = _optimize(seeded_stats(), {Direction.FORWARD: 1.0}, max_disk=1e9)
        stored = [s for s in result.plan["udf"] if s.stores_pairs]
        assert any(s.label == "->FullOne" or s.label == "->FullMany" for s in stored)

    def test_backward_only_prunes_forward_stores(self):
        result = _optimize(seeded_stats(), {Direction.BACKWARD: 1.0}, max_disk=1e9)
        assert all(s.label not in ("->FullOne", "->FullMany") for s in result.plan["udf"])

    def test_disk_constraint_respected(self):
        stats = seeded_stats(n_pairs=10000, fanin=10)
        model = CostModel(stats)
        for budget in (1e3, 1e5, 1e7):
            result = _optimize(stats, {Direction.BACKWARD: 1.0}, max_disk=budget)
            used = sum(
                model.disk_bytes("udf", s) for s in result.plan["udf"]
            )
            assert used <= budget * 1.001

    def test_runtime_constraint_respected(self):
        stats = seeded_stats(n_pairs=100000, fanin=10)
        model = CostModel(stats)
        result = _optimize(
            stats, {Direction.BACKWARD: 1.0}, max_disk=1e9, max_run=1e-6
        )
        used = sum(model.write_seconds("udf", s) for s in result.plan["udf"])
        assert used <= 1e-6 * 1.001

    def test_pinned_strategy_kept(self):
        result = _optimize(
            seeded_stats(),
            {Direction.BACKWARD: 1.0},
            max_disk=1e9,
            pinned={"udf": [PAY_ONE_B]},
        )
        assert PAY_ONE_B in result.plan["udf"]

    def test_greedy_fallback_matches_constraints(self):
        stats = seeded_stats()
        model = CostModel(stats)
        optimizer = StrategyOptimizer(model)
        profile = WorkloadProfile(weights={"udf": {Direction.BACKWARD: 1.0}})
        plan = optimizer._solve_greedy(
            ["udf"],
            {"udf": candidate_strategies(SpotUDF(name="udf"))},
            {"udf": []},
            profile,
            max_disk=1e9,
            max_run=None,
        )
        assert plan["udf"]
        used = sum(model.disk_bytes("udf", s) for s in plan["udf"])
        assert used <= 1e9

    @given(
        budget=st.floats(min_value=1e2, max_value=1e8),
        fanin=st.integers(1, 50),
        n_pairs=st.integers(10, 20000),
    )
    @settings(max_examples=25, deadline=None)
    def test_optimizer_never_violates_budget(self, budget, fanin, n_pairs):
        stats = seeded_stats(n_pairs=n_pairs, fanin=fanin)
        model = CostModel(stats)
        result = _optimize(
            stats,
            {Direction.BACKWARD: 0.5, Direction.FORWARD: 0.5},
            max_disk=budget,
        )
        used = sum(model.disk_bytes("udf", s) for s in result.plan["udf"])
        assert used <= budget * 1.001
        assert result.plan["udf"]  # always at least one strategy


class TestEndToEndOptimize:
    def test_subzero_optimize_roundtrip(self, rng):
        image = SciArray.from_numpy(rng.random((16, 16)))
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.profile({"img": image})
        queries = [
            LineageQuery(
                np.asarray([[4, 4]]),
                (("scale", 0), ("spot", 0), ("smooth", 0)),
                Direction.BACKWARD,
            )
        ]
        result = sz.optimize(queries, max_disk_bytes=10e6)
        assert "spot" in result.plan
        # the plan is applied and a re-run materialises it
        sz.run({"img": image})
        res = sz.backward_query([(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)])
        assert res.count > 0

    def test_optimize_requires_profiling(self, rng):
        sz = SubZero(build_spot_spec())
        with pytest.raises(OptimizationError):
            sz.optimize([], max_disk_bytes=1e6)
