"""Unit + property tests for coordinate utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import coords as C
from repro.errors import CoordinateError


def shapes(max_ndim=3, max_extent=40):
    return st.lists(
        st.integers(min_value=1, max_value=max_extent), min_size=1, max_size=max_ndim
    ).map(tuple)


@st.composite
def shape_and_coords(draw):
    shape = draw(shapes())
    n = draw(st.integers(min_value=0, max_value=60))
    coords = [
        tuple(draw(st.integers(0, extent - 1)) for extent in shape) for _ in range(n)
    ]
    return shape, np.asarray(coords, dtype=np.int64).reshape(n, len(shape))


class TestAsCoordArray:
    def test_single_tuple(self):
        arr = C.as_coord_array((3, 4))
        assert arr.shape == (1, 2)
        assert arr.dtype == np.int64

    def test_list_of_tuples(self):
        arr = C.as_coord_array([(1, 2), (3, 4)])
        assert arr.shape == (2, 2)

    def test_empty_needs_ndim(self):
        with pytest.raises(CoordinateError):
            C.as_coord_array([])

    def test_empty_with_ndim(self):
        assert C.as_coord_array([], ndim=3).shape == (0, 3)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(CoordinateError):
            C.as_coord_array([(1, 2)], ndim=3)

    def test_3d_input_rejected(self):
        with pytest.raises(CoordinateError):
            C.as_coord_array(np.zeros((2, 2, 2), dtype=np.int64))


class TestValidate:
    def test_out_of_bounds(self):
        with pytest.raises(CoordinateError):
            C.validate_coords(np.asarray([[5, 0]]), (5, 5))

    def test_negative(self):
        with pytest.raises(CoordinateError):
            C.validate_coords(np.asarray([[-1, 0]]), (5, 5))

    def test_ok(self):
        arr = C.validate_coords(np.asarray([[4, 4]]), (5, 5))
        assert arr.shape == (1, 2)


class TestPackUnpack:
    @given(shape_and_coords())
    @settings(max_examples=120, deadline=None)
    def test_roundtrip(self, sc):
        shape, coords = sc
        packed = C.pack_coords(coords, shape)
        assert packed.shape == (coords.shape[0],)
        back = C.unpack_coords(packed, shape)
        assert (back == coords).all()

    @given(shape_and_coords())
    @settings(max_examples=60, deadline=None)
    def test_pack_is_row_major(self, sc):
        shape, coords = sc
        if coords.shape[0] == 0:
            return
        packed = C.pack_coords(coords, shape)
        strides = np.cumprod((1,) + shape[::-1][:-1])[::-1]
        expected = (coords * strides).sum(axis=1)
        assert (packed == expected).all()

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(CoordinateError):
            C.unpack_coords(np.asarray([100]), (5, 5))
        with pytest.raises(CoordinateError):
            C.unpack_coords(np.asarray([-1]), (5, 5))


class TestMasks:
    @given(shape_and_coords())
    @settings(max_examples=60, deadline=None)
    def test_mask_roundtrip(self, sc):
        shape, coords = sc
        mask = C.coords_to_mask(coords, shape)
        back = C.mask_to_coords(mask)
        expected = C.dedupe_coords(coords) if coords.shape[0] else coords
        assert {tuple(r) for r in back} == {tuple(r) for r in expected}

    def test_mask_shape(self):
        mask = C.coords_to_mask(np.asarray([[1, 1]]), (3, 4))
        assert mask.shape == (3, 4)
        assert mask.sum() == 1


class TestDedupe:
    def test_removes_duplicates(self):
        arr = np.asarray([[1, 2], [1, 2], [0, 0]])
        out = C.dedupe_coords(arr)
        assert out.shape[0] == 2

    @given(shape_and_coords())
    @settings(max_examples=60, deadline=None)
    def test_unique_coords_matches_dedupe(self, sc):
        shape, coords = sc
        fast = C.unique_coords(coords, shape)
        slow = C.dedupe_coords(coords)
        assert {tuple(r) for r in fast} == {tuple(r) for r in slow}


class TestBoxes:
    def test_bounding_box(self):
        lo, hi = C.bounding_box(np.asarray([[1, 5], [3, 2]]))
        assert lo.tolist() == [1, 2]
        assert hi.tolist() == [3, 5]

    def test_bounding_box_empty_raises(self):
        with pytest.raises(CoordinateError):
            C.bounding_box(C.empty_coords(2))

    def test_coords_in_box(self):
        coords = np.asarray([[0, 0], [2, 2], [5, 5]])
        inside = C.coords_in_box(coords, np.asarray([1, 1]), np.asarray([3, 3]))
        assert inside.tolist() == [False, True, False]

    def test_box_intersects(self):
        assert C.box_intersects([0, 0], [2, 2], [2, 2], [4, 4])
        assert not C.box_intersects([0, 0], [1, 1], [2, 2], [3, 3])


class TestClip:
    def test_clip_drops_outside(self):
        arr = np.asarray([[0, 0], [-1, 0], [2, 9], [1, 1]])
        out = C.clip_coords(arr, (3, 3))
        assert {tuple(r) for r in out} == {(0, 0), (1, 1)}


class TestAllCoords:
    def test_counts_and_order(self):
        out = C.all_coords((2, 3))
        assert out.shape == (6, 2)
        assert out[0].tolist() == [0, 0]
        assert out[-1].tolist() == [1, 2]


class TestIsinSorted:
    @given(
        st.lists(st.integers(-100, 100), max_size=50),
        st.lists(st.integers(-100, 100), max_size=50),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_np_isin(self, values, pool):
        values = np.asarray(values, dtype=np.int64)
        sorted_pool = np.sort(np.asarray(pool, dtype=np.int64))
        expected = np.isin(values, sorted_pool)
        got = C.isin_sorted(values, sorted_pool)
        assert (got == expected).all()

    def test_empty_pool(self):
        assert not C.isin_sorted(np.asarray([1, 2]), np.empty(0, dtype=np.int64)).any()
