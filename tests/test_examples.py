"""Every example script must run end to end (they are living documentation)."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "astronomy_debugging.py",
        "genomics_clinician.py",
        "optimizer_tour.py",
        "custom_udf.py",
        "partitioned_catalog.py",
    ],
)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_quickstart_reports_lineage(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "backward lineage" in out
    assert "forward lineage" in out
    assert "all-to-all" in out  # the entire-array optimization fired
