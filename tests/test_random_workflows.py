"""Property test: on randomly composed workflows of built-in mapping
operators, backward and forward queries are mutually consistent and agree
with brute-force per-cell mapping.

This catches composition bugs (shape bookkeeping, frontier packing,
direction mix-ups) that fixed pipelines would not.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SciArray, SubZero, WorkflowSpec, ops
from repro.arrays import coords as C

# Pools of unary operator factories keyed by how they transform a 2-D shape.
SAME_SHAPE_OPS = [
    lambda: ops.Scale(2.0),
    lambda: ops.AddConstant(1.0),
    lambda: ops.ClipMin(0.2),
    lambda: ops.Convolve2D(ops.gaussian_kernel(3)),
    lambda: ops.CumulativeSum(axis=0),
    lambda: ops.CumulativeSum(axis=1),
    lambda: ops.Threshold(0.5),
]


@st.composite
def chain_workflows(draw):
    """A random chain of 1-4 shape-preserving mapping ops, optionally ending
    with a transpose."""
    n_ops = draw(st.integers(1, 4))
    picks = [draw(st.integers(0, len(SAME_SHAPE_OPS) - 1)) for _ in range(n_ops)]
    with_transpose = draw(st.booleans())
    shape = (draw(st.integers(4, 9)), draw(st.integers(4, 9)))
    seed = draw(st.integers(0, 2**16))
    return picks, with_transpose, shape, seed


def build_chain(picks, with_transpose):
    spec = WorkflowSpec(name="chain")
    spec.add_source("src")
    prev = "src"
    for i, pick in enumerate(picks):
        name = f"n{i}"
        spec.add_node(name, SAME_SHAPE_OPS[pick](), [prev])
        prev = name
    if with_transpose:
        spec.add_node("tr", ops.Transpose(), [prev])
        prev = "tr"
    return spec, prev


@given(chain_workflows())
@settings(max_examples=30, deadline=None)
def test_backward_forward_roundtrip(case):
    """Every cell in the backward lineage of o must forward-reach o."""
    picks, with_transpose, shape, seed = case
    spec, last = build_chain(picks, with_transpose)
    sz = SubZero(spec)
    sz.use_mapping_where_possible()
    rng = np.random.default_rng(seed)
    instance = sz.run({"src": SciArray.from_numpy(rng.random(shape))})

    back_path = [(name, 0) for name in reversed(spec.topo_order())]
    fwd_path = [(name, 0) for name in spec.topo_order()]

    out_shape = instance.output_shape(last)
    target = (int(rng.integers(0, out_shape[0])), int(rng.integers(0, out_shape[1])))
    back = sz.backward_query([target], back_path)
    assert back.count > 0
    probe = back.coords[: min(4, back.count)]
    fwd = sz.forward_query(probe, fwd_path)
    assert target in {tuple(c) for c in fwd.coords}


@given(chain_workflows())
@settings(max_examples=20, deadline=None)
def test_backward_matches_per_step_composition(case):
    """Query executor path == manually composing map_b_many per step."""
    picks, with_transpose, shape, seed = case
    spec, last = build_chain(picks, with_transpose)
    sz = SubZero(spec)
    sz.use_mapping_where_possible()
    rng = np.random.default_rng(seed)
    instance = sz.run({"src": SciArray.from_numpy(rng.random(shape))})

    order = spec.topo_order()
    out_shape = instance.output_shape(last)
    target = np.asarray(
        [[rng.integers(0, out_shape[0]), rng.integers(0, out_shape[1])]],
        dtype=np.int64,
    )
    # manual composition (mapping ops only, so maps are the ground truth)
    coords = target
    for name in reversed(order):
        op = instance.operator(name)
        coords = C.unique_coords(op.map_b_many(coords, 0), op.input_shapes[0])
    result = sz.backward_query(target, [(n, 0) for n in reversed(order)])
    assert {tuple(c) for c in result.coords} == {tuple(c) for c in coords}


@given(chain_workflows())
@settings(max_examples=15, deadline=None)
def test_query_results_within_bounds(case):
    picks, with_transpose, shape, seed = case
    spec, last = build_chain(picks, with_transpose)
    sz = SubZero(spec)
    sz.use_mapping_where_possible()
    rng = np.random.default_rng(seed)
    sz.run({"src": SciArray.from_numpy(rng.random(shape))})
    back = sz.backward_query(
        [(0, 0)], [(n, 0) for n in reversed(spec.topo_order())]
    )
    assert back.count <= int(np.prod(shape))
    coords = back.coords
    if coords.size:
        assert (coords >= 0).all()
        assert (coords < np.asarray(shape)).all()
