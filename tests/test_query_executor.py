"""Behavioural tests for the query executor: shortcuts, dedup, validation,
the static vs dynamic strategy choice, and the dynamic blackbox switch."""

import numpy as np
import pytest

from repro import (
    FULL_ONE_B,
    FULL_ONE_F,
    PAY_ONE_B,
    QueryRequest,
    SciArray,
    SubZero,
    WorkflowSpec,
    ops,
)
from repro.errors import QueryError
from tests.conftest import SpotUDF, build_spot_spec


@pytest.fixture
def image(rng):
    return SciArray.from_numpy(rng.random((12, 14)))


def mean_spec():
    spec = WorkflowSpec(name="mean")
    spec.add_source("a")
    spec.add_node("mean", ops.GlobalMean(), ["a"])
    spec.add_node("center", ops.BroadcastSubtract(), ["a", "mean"])
    return spec


class TestShortcuts:
    def test_all_to_all_backward(self, image):
        sz = SubZero(mean_spec())
        sz.use_mapping_where_possible()
        sz.run({"a": image})
        res = sz.backward_query([(0,)], [("mean", 0)])
        assert res.count == image.size
        assert res.steps[0].shortcut == "all-to-all"

    def test_all_to_all_disabled_still_correct(self, image):
        sz = SubZero(mean_spec())
        sz.use_mapping_where_possible()
        sz.run({"a": image})
        res = sz.query(QueryRequest.backward([(0,)], [("mean", 0)], entire_array=False))
        assert res.count == image.size
        assert res.steps[0].shortcut is None

    def test_entire_array_on_full_frontier(self, image):
        sz = SubZero(mean_spec())
        sz.use_mapping_where_possible()
        sz.run({"a": image})
        # forward through mean (-> full output) then center input 1 (scalar)
        res = sz.forward_query(
            [(2, 2)], [("mean", 0), ("center", 1)]
        )
        assert res.count == image.size
        assert res.steps[1].shortcut in ("entire-array", "all-to-all")

    def test_empty_frontier_short_circuits(self, image):
        # a padded border cell has empty backward lineage; the next step
        # must short-circuit instead of probing anything
        spec = WorkflowSpec(name="padded")
        spec.add_source("img")
        spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3)), ["img"])
        spec.add_node("pad", ops.Pad((1, 1), (1, 1)), ["smooth"])
        sz = SubZero(spec, enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.run({"img": image})
        res = sz.backward_query([(0, 0)], [("pad", 0), ("smooth", 0)])
        assert res.count == 0
        assert res.steps[1].method == "empty"
        assert res.steps[1].shortcut == "empty-frontier"


class TestValidationErrors:
    def test_query_before_run(self):
        sz = SubZero(build_spot_spec())
        with pytest.raises(QueryError):
            sz.backward_query([(0, 0)], [("scale", 0)])

    def test_broken_path_rejected(self, image):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.run({"img": image})
        with pytest.raises(QueryError):
            sz.backward_query([(0, 0)], [("scale", 0), ("smooth", 0)])

    def test_out_of_bounds_cells_rejected(self, image):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.run({"img": image})
        with pytest.raises(Exception):
            sz.backward_query([(999, 999)], [("scale", 0)])


class TestDeduplication:
    def test_overlapping_lineage_deduped(self, image):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.run({"img": image})
        # adjacent cells have overlapping 3x3 smoothing neighbourhoods
        res = sz.backward_query([(5, 5), (5, 6)], [("smooth", 0)])
        assert res.count == 12  # 3x4 union, not 18


class TestStaticChoice:
    def test_static_uses_mismatched_store(self, image):
        spec = build_spot_spec()
        sz = SubZero(spec, enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_F)  # forward-optimized only
        sz.run({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        assert res.steps[0].method == "->FullOne"  # blind mismatched join

    def test_static_prefers_matched_orientation(self, image):
        spec = build_spot_spec()
        sz = SubZero(spec, enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", PAY_ONE_B, FULL_ONE_F)
        sz.run({"img": image})
        back = sz.backward_query([(3, 3)], [("spot", 0)])
        fwd = sz.forward_query([(3, 3)], [("spot", 0)])
        assert back.steps[0].method == "<-PayOne"
        assert fwd.steps[0].method == "->FullOne"

    def test_static_blackbox_when_nothing_stored(self, image):
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.run({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        assert res.steps[0].method == "Blackbox"


class TestDynamicChoice:
    def test_optimizer_prefers_stored_lineage(self, image):
        sz = SubZero(build_spot_spec(), enable_query_opt=True)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        assert res.steps[0].method == "<-FullOne"

    def test_optimizer_avoids_mismatched_scan(self, image):
        """Given only a forward store, a backward query should re-execute
        when the cost model says scanning is dearer."""
        sz = SubZero(build_spot_spec(), enable_query_opt=True)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_F)
        sz.run({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        # either it picked blackbox outright, or scanned within budget;
        # both must give the right answer
        ref = SubZero(build_spot_spec())
        ref.use_mapping_where_possible()
        ref.run({"img": image})
        expected = ref.backward_query([(3, 3)], [("spot", 0)])
        assert {tuple(c) for c in res.coords} == {tuple(c) for c in expected.coords}


class _SlowStoreUDF(SpotUDF):
    """SpotUDF whose map_p stalls, forcing the dynamic switch."""

    def map_p_many(self, out_coords, payload, input_idx):
        import time

        time.sleep(0.002)
        return super().map_p_many(out_coords, payload, input_idx)


class TestDynamicSwitch:
    def test_switch_to_blackbox_bounds_runtime(self, rng):
        image = SciArray.from_numpy(rng.random((16, 16)))
        spec = WorkflowSpec(name="slow")
        spec.add_source("img")
        spec.add_node("spot", _SlowStoreUDF(thresh=0.05), ["img"])  # ~all bright
        sz = SubZero(spec, enable_query_opt=True)
        sz.set_strategy("spot", PAY_ONE_B)
        sz.run({"img": image})
        # Force the estimate low so the stored path is chosen, then stalls.
        sz.stats.get("spot").reexec_seconds = 0.001
        sz.stats.get("spot").observed_query_seconds.clear()
        res = sz.forward_query(
            [(i, j) for i in range(8) for j in range(8)], [("spot", 0)]
        )
        # it either finished in budget or switched; if switched, flag is set
        step = res.steps[0]
        if step.switched_to_blackbox:
            assert step.method.endswith("->Blackbox")
        ref = SubZero(spec_copy := WorkflowSpec(name="ref"))
        # correctness check against mapping-free blackbox run
        spec2 = WorkflowSpec(name="slow2")
        spec2.add_source("img")
        spec2.add_node("spot", _SlowStoreUDF(thresh=0.05), ["img"])
        sz2 = SubZero(spec2)
        sz2.run({"img": image})
        expected = sz2.forward_query(
            [(i, j) for i in range(8) for j in range(8)], [("spot", 0)]
        )
        assert {tuple(c) for c in res.coords} == {tuple(c) for c in expected.coords}


class TestStepStats:
    def test_steps_report_methods_and_counts(self, image):
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        res = sz.backward_query([(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)])
        assert [s.method for s in res.steps][:2] == ["Map", "<-FullOne"]
        assert res.steps[0].cells_in == 1
        assert res.seconds >= 0
        assert res.count == res.frontier.count

    def test_healthy_stores_drop_nothing(self, image):
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        res = sz.backward_query([(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)])
        assert all(s.dropped_cells == 0 for s in res.steps)
        assert "dropped=" not in res.explain()

    def test_out_of_range_cells_are_counted_not_masked(self, image, monkeypatch):
        """A store returning cells outside the target array used to have
        them clipped silently; the count now surfaces on StepStats."""
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        store = sz.runtime.store_for("spot", FULL_ONE_B)
        real = store.backward_full
        bogus = np.asarray([10**9, -5], dtype=np.int64)

        def corrupted(qpacked, only_input=None):
            matched, per_input = real(qpacked)
            return matched, [np.concatenate([c, bogus]) for c in per_input]

        monkeypatch.setattr(store, "backward_full", corrupted)
        res = sz.backward_query([(4, 4)], [("spot", 0)])
        assert res.steps[0].dropped_cells == 2
        assert "dropped=2" in res.explain()
