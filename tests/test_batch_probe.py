"""Batch-scan engine equivalence: BatchProbe vs the per-entry probes.

The batch engine answers a whole value heap per codec-tag group, so its
verdicts and intersections must be *identical* to calling the per-entry
in-situ probes entry by entry — on randomized heaps mixing every codec tag
(including the bitmap ``0x42``), on multi-field values, and through the
``RegionEntryTable`` scan surface.  Companion to the store-level property
tests in ``test_store_properties.py``, which check the same batch paths
against brute-force joins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lineage_store import (
    RegionEntryTable,
    decode_full_value,
    encode_full_value,
)
from repro.errors import StorageError
from repro.storage import codecs
from repro.storage.codecs import BatchProbe


def arr_of(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


@st.composite
def heap_entry(draw):
    """One cell set biased so every codec tag shows up in heaps."""
    kind = draw(st.sampled_from(["scattered", "runs", "dense", "unsorted", "extreme"]))
    if kind == "scattered":
        return arr_of(draw(st.lists(st.integers(0, 2**30), min_size=1, max_size=40)))
    if kind == "runs":
        start = draw(st.integers(0, 2**20))
        length = draw(st.integers(2, 80))
        return np.arange(start, start + length, dtype=np.int64)
    if kind == "dense":
        base = draw(st.integers(0, 2**20))
        span = draw(st.integers(2, 200))
        offsets = draw(
            st.lists(st.integers(0, span - 1), min_size=1, max_size=span, unique=True)
        )
        return base + np.sort(arr_of(offsets))
    if kind == "unsorted":
        values = draw(st.lists(st.integers(-(2**20), 2**20), min_size=1, max_size=30))
        return arr_of(values)
    return arr_of([draw(st.integers(-(2**63), 2**62)), 2**63 - 1])


@st.composite
def heaps(draw):
    """A concatenated value heap plus a sorted (possibly duplicated) query."""
    entries = draw(st.lists(heap_entry(), min_size=1, max_size=12))
    bufs = [codecs.encode_cells(arr) for arr in entries]
    offsets = np.zeros(len(bufs), dtype=np.int64)
    np.cumsum([len(b) for b in bufs[:-1]], out=offsets[1:])
    pool: list[int] = [int(v) for arr in entries for v in arr[:4]]
    query = draw(
        st.lists(
            st.one_of(st.sampled_from(pool), st.integers(-(2**21), 2**21)),
            max_size=25,
        )
    )
    return b"".join(bufs), offsets, entries, np.sort(arr_of(query))


class TestBatchMatchesPerEntry:
    @given(heaps())
    @settings(max_examples=150, deadline=None)
    def test_contains_any_verdicts_identical(self, case):
        buf, offsets, entries, query = case
        verdicts = BatchProbe(buf, offsets).contains_any(query)
        expected = np.asarray(
            [codecs.contains_any(buf, query, int(off)) for off in offsets], dtype=bool
        )
        assert np.array_equal(verdicts, expected)

    @given(heaps())
    @settings(max_examples=150, deadline=None)
    def test_intersections_identical(self, case):
        buf, offsets, entries, query = case
        hit_ids, parts = BatchProbe(buf, offsets).intersect(query)
        by_entry = dict(zip(hit_ids.tolist(), parts))
        for e, off in enumerate(offsets):
            expected = codecs.intersect(buf, query, int(off))
            if expected.size:
                assert by_entry[e].tolist() == expected.tolist()
            else:
                assert e not in by_entry  # non-hits are never materialised

    @given(heaps())
    @settings(max_examples=60, deadline=None)
    def test_repeat_queries_reuse_lowered_tables(self, case):
        buf, offsets, entries, query = case
        query = np.sort(np.append(query, entries[0][:1]))  # never empty
        probe = BatchProbe(buf, offsets)
        first = probe.contains_any(query)
        assert probe._lowered is not None  # cached after the first pass
        again = probe.contains_any(query)
        assert np.array_equal(first, again)

    def test_empty_query_and_empty_heap(self):
        probe = BatchProbe(b"", np.empty(0, dtype=np.int64))
        assert probe.contains_any(arr_of([1, 2])).size == 0
        hit_ids, parts = probe.intersect(arr_of([1, 2]))
        assert hit_ids.size == 0 and parts == []
        buf = codecs.encode_cells(np.arange(5, dtype=np.int64))
        probe = BatchProbe(buf, arr_of([0]))
        assert not probe.contains_any(np.empty(0, dtype=np.int64)).any()

    def test_value_overrunning_heap_slot_raises(self):
        good = codecs.encode_cells(arr_of([3, 4, 5]))
        overstated = bytearray(good)
        overstated[1] = 9  # header now claims more payload than the slot has
        buf = bytes(overstated) + codecs.encode_cells(arr_of([7]))
        probe = BatchProbe(buf, arr_of([0, len(overstated)]), arr_of([len(overstated), len(buf)]))
        with pytest.raises(StorageError):
            probe.contains_any(arr_of([3]))


class TestRegionEntryTableBatch:
    def test_multi_field_probe_matches_per_entry(self):
        table = RegionEntryTable((16, 16))
        rng = np.random.default_rng(11)
        values = []
        for j in range(12):
            in0 = np.sort(rng.choice(256, size=rng.integers(1, 9), replace=False))
            in1 = np.arange(j * 3, j * 3 + 5, dtype=np.int64)
            values.append((in0.astype(np.int64), in1))
            table.add_entry(arr_of([j]), encode_full_value([in0, in1]))
        query = np.sort(rng.choice(256, size=24, replace=False)).astype(np.int64)
        for field in (0, 1):
            verdicts = table.batch_probe(field).contains_any(query)
            expected = [
                table.value_contains_any(e, query, field=field) for e in range(12)
            ]
            assert verdicts.tolist() == expected
            hit_ids, parts = table.batch_probe(field).intersect(query)
            for e, part in zip(hit_ids, parts):
                assert (
                    part.tolist()
                    == table.value_intersect(int(e), query, field=field).tolist()
                )

    def test_probe_cache_invalidated_by_new_entries(self):
        table = RegionEntryTable((8, 8))
        table.add_entry(arr_of([1]), codecs.encode_cells(arr_of([10, 11])))
        probe = table.batch_probe()
        assert probe.n_entries == 1
        assert table.batch_probe() is probe  # cached while unchanged
        table.add_entry(arr_of([2]), codecs.encode_cells(arr_of([20])))
        fresh = table.batch_probe()
        assert fresh is not probe and fresh.n_entries == 2
        assert fresh.contains_any(arr_of([20])).tolist() == [False, True]


class TestBlobStoreBatch:
    def test_blob_probe_matches_per_blob_and_invalidates_on_append(self):
        from repro.storage.kvstore import BlobStore

        blobs = BlobStore("b")
        sets = [
            arr_of([5, 9, 12]),
            np.arange(100, 160, dtype=np.int64),
            np.arange(30, dtype=np.int64) * 3,
        ]
        for arr in sets:
            blobs.append(codecs.encode_cells(arr))
        query = np.sort(arr_of([9, 101, 33, 999]))
        probe = blobs.batch_probe()
        expected = [bool(codecs.contains_any(blobs.get(j), query)) for j in range(3)]
        assert probe.contains_any(query).tolist() == expected
        assert blobs.batch_probe() is probe  # cached while unchanged
        blobs.append(codecs.encode_cells(arr_of([999])))
        fresh = blobs.batch_probe()
        assert fresh is not probe
        assert fresh.contains_any(query).tolist() == expected + [True]

    def test_blob_probe_multi_field(self):
        from repro.storage.kvstore import BlobStore

        blobs = BlobStore("b")
        in0, in1 = arr_of([1, 2, 3]), arr_of([50, 51])
        blobs.append(encode_full_value([in0, in1]))
        assert blobs.batch_probe(field=0).contains_any(arr_of([2])).tolist() == [True]
        assert blobs.batch_probe(field=1).contains_any(arr_of([2])).tolist() == [False]
        assert blobs.batch_probe(field=1).contains_any(arr_of([51])).tolist() == [True]


class TestFullValueCrossCodec:
    """Every codec tag round-trips through the store value envelope."""

    CASES = {
        "delta": arr_of([0, 7, 9, 1000]),
        "interval": np.arange(500, dtype=np.int64),
        "bitmap": np.arange(60, dtype=np.int64) * 3,
        "raw": arr_of([-(2**63), 0, 2**63 - 1]),
    }

    def test_tags_cover_all_codecs(self):
        tags = {codecs.encode_cells(arr)[0] for arr in self.CASES.values()}
        assert tags == {
            codecs.TAG_DELTA,
            codecs.TAG_INTERVAL,
            codecs.TAG_BITMAP,
            codecs.TAG_RAW,
        }

    def test_encode_full_value_roundtrip(self):
        fields = list(self.CASES.values())
        buf = encode_full_value(fields)
        out = decode_full_value(buf, len(fields))
        for arr, back in zip(fields, out):
            assert back.tolist() == np.sort(arr).tolist()

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_single_field_roundtrip(self, name):
        arr = np.sort(self.CASES[name])
        out = decode_full_value(encode_full_value([arr]), 1)
        assert out[0].tolist() == arr.tolist()

    def test_batch_probe_reads_every_tag_in_one_heap(self):
        fields = [np.sort(arr) for arr in self.CASES.values()]
        bufs = [codecs.encode_cells(arr) for arr in fields]
        offsets = np.zeros(len(bufs), dtype=np.int64)
        np.cumsum([len(b) for b in bufs[:-1]], out=offsets[1:])
        heap = b"".join(bufs)
        for i, arr in enumerate(fields):
            query = np.sort(arr[:2])
            verdicts = BatchProbe(heap, offsets).contains_any(query)
            assert verdicts[i]
