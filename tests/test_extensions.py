"""Tests for the convenience/robustness extensions: path inference,
query explain, cost calibration, stats persistence, and WAL recovery."""

import numpy as np
import pytest

from repro import FULL_ONE_B, SciArray, SubZero, VersionStore, WorkflowSpec, ops
from repro.core.costmodel import CostConstants
from repro.core.runtime import LineageRuntime
from repro.core.stats import StatsCollector
from repro.errors import WorkflowError
from repro.storage.wal import WriteAheadLog
from repro.workflow.executor import execute_workflow
from repro.workflow.recovery import recover_instance
from tests.conftest import build_spot_spec


@pytest.fixture
def image(rng):
    return SciArray.from_numpy(rng.random((12, 14)))


class TestPathInference:
    def test_chain_path(self):
        spec = build_spot_spec()
        path = spec.lineage_path("scale", "img")
        assert path == [("scale", 0), ("spot", 0), ("smooth", 0)]

    def test_partial_path(self):
        spec = build_spot_spec()
        assert spec.lineage_path("scale", "smooth") == [("scale", 0), ("spot", 0)]

    def test_multi_input_takes_shortest(self):
        spec = WorkflowSpec(name="diamond")
        spec.add_source("a")
        spec.add_node("left", ops.Scale(1.0), ["a"])
        spec.add_node("l2", ops.Scale(2.0), ["left"])
        spec.add_node("right", ops.Scale(3.0), ["a"])
        spec.add_node("join", ops.Add(), ["l2", "right"])
        path = spec.lineage_path("join", "a")
        assert path == [("join", 1), ("right", 0)]  # two hops beat three

    def test_no_path(self):
        spec = WorkflowSpec(name="forked")
        spec.add_source("a")
        spec.add_source("b")
        spec.add_node("na", ops.Scale(1.0), ["a"])
        spec.add_node("nb", ops.Scale(1.0), ["b"])
        with pytest.raises(WorkflowError):
            spec.lineage_path("na", "b")

    def test_unknown_names(self):
        spec = build_spot_spec()
        with pytest.raises(WorkflowError):
            spec.lineage_path("ghost", "img")
        with pytest.raises(WorkflowError):
            spec.lineage_path("scale", "ghost")

    def test_trace_back_and_forward_agree_with_manual(self, image):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.run({"img": image})
        auto = sz.trace_back([(4, 4)], "scale", "img")
        manual = sz.backward_query(
            [(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)]
        )
        assert {tuple(c) for c in auto.coords} == {tuple(c) for c in manual.coords}
        fwd = sz.trace_forward([(4, 4)], "img", "scale")
        assert (4, 4) in {tuple(c) for c in fwd.coords} or fwd.count > 0


class TestExplain:
    def test_explain_lists_steps(self, image):
        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        result = sz.trace_back([(4, 4)], "scale", "img")
        text = result.explain()
        assert "3 steps" in text
        assert "<-FullOne" in text
        assert "scale" in text and "smooth" in text
        assert "ms" in text


class TestCalibration:
    def test_calibrate_returns_positive_constants(self):
        constants = CostConstants.calibrate(n=5000)
        assert constants.hash_probe_s > 0
        assert constants.rtree_probe_s > 0
        assert constants.scan_entry_s > 0
        assert constants.map_cell_s > 0

    def test_calibrated_constants_usable(self, image):
        constants = CostConstants.calibrate(n=5000)
        sz = SubZero(build_spot_spec(), constants=constants)
        sz.use_mapping_where_possible()
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        res = sz.backward_query([(3, 3)], [("spot", 0)])
        assert res.count >= 1


class TestStatsPersistence:
    def test_save_load_roundtrip(self, tmp_path, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        path = str(tmp_path / "stats.json")
        runtime.stats.save(path)
        loaded = StatsCollector.load(path)
        original = runtime.stats.get("spot")
        restored = loaded.get("spot")
        assert restored.n_pairs == original.n_pairs
        assert restored.disk_bytes == original.disk_bytes
        assert restored.input_sizes == original.input_sizes

    def test_loaded_stats_drive_optimizer(self, tmp_path, image):
        from repro.core.model import Direction, LineageQuery

        sz = SubZero(build_spot_spec())
        sz.use_mapping_where_possible()
        sz.profile({"img": image})
        path = str(tmp_path / "stats.json")
        sz.stats.save(path)

        # a "later session": fresh facade with restored statistics
        sz2 = SubZero(build_spot_spec())
        sz2.use_mapping_where_possible()
        sz2.stats._stats = StatsCollector.load(path)._stats
        query = LineageQuery(
            np.asarray([[3, 3]]),
            (("scale", 0), ("spot", 0), ("smooth", 0)),
            Direction.BACKWARD,
        )
        result = sz2.optimize([query], max_disk_bytes=1e8)
        assert "spot" in result.plan


class TestWalRecovery:
    def _run(self, image):
        spec = build_spot_spec()
        versions = VersionStore()
        wal = WriteAheadLog()
        execute_workflow(spec, {"img": image}, version_store=versions, wal=wal)
        return spec, versions, wal

    def test_recovered_instance_serves_queries(self, image):
        spec, versions, wal = self._run(image)
        # "crash": keep only the durable artifacts, rebuild the instance
        fresh_spec = build_spot_spec()
        recovered = recover_instance(fresh_spec, versions, wal)
        assert recovered.output_array("scale").shape == image.shape

        from repro.core.query import QueryExecutor

        executor = QueryExecutor(recovered, LineageRuntime())
        res = executor.backward([(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)])
        assert res.count >= 1

    def test_recovery_matches_original_lineage(self, image):
        spec, versions, wal = self._run(image)
        original = execute_workflow(
            build_spot_spec(), {"img": image}
        )
        from repro.core.query import QueryExecutor

        a = QueryExecutor(original, LineageRuntime()).backward(
            [(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)]
        )
        recovered = recover_instance(build_spot_spec(), versions, wal)
        b = QueryExecutor(recovered, LineageRuntime()).backward(
            [(4, 4)], [("scale", 0), ("spot", 0), ("smooth", 0)]
        )
        assert {tuple(c) for c in a.coords} == {tuple(c) for c in b.coords}

    def test_partial_wal_rejected(self, image):
        spec, versions, wal = self._run(image)
        truncated = WriteAheadLog()
        for record in list(wal)[:-1]:
            truncated.append(record)
        with pytest.raises(WorkflowError):
            recover_instance(build_spot_spec(), versions, truncated)

    def test_missing_version_rejected(self, image):
        spec, versions, wal = self._run(image)
        with pytest.raises(WorkflowError):
            recover_instance(build_spot_spec(), VersionStore(), wal)

    def test_last_run_wins(self, image, rng):
        spec = build_spot_spec()
        versions = VersionStore()
        wal = WriteAheadLog()
        execute_workflow(spec, {"img": image}, version_store=versions, wal=wal)
        second = SciArray.from_numpy(rng.random((12, 14)))
        spec2 = build_spot_spec()
        execute_workflow(spec2, {"img": second}, version_store=versions, wal=wal)
        recovered = recover_instance(build_spot_spec(), versions, wal)
        assert recovered.source_array("img").allclose(second)
