"""Tests for the microbenchmark generator and its strategy sweeps."""

import numpy as np
import pytest

from repro import BLACKBOX, FULL_MANY_B, FULL_ONE_B, FULL_ONE_F, PAY_ONE_B, SubZero
from repro.bench.micro import MicroBenchmark, SyntheticLineageOp, _generate_pairs

SHAPE = (80, 80)


class TestPairGenerator:
    def test_coverage_target(self):
        outs, _ = _generate_pairs(SHAPE, fanin=1, fanout=1, coverage=0.1, seed=0)
        total = sum(o.shape[0] for o in outs)
        assert total >= 0.1 * SHAPE[0] * SHAPE[1]

    def test_fanin_fanout_honoured(self):
        outs, ins = _generate_pairs(SHAPE, fanin=9, fanout=4, coverage=0.05, seed=0)
        # clusters may clip at edges, but most pairs hit the target sizes
        assert np.median([o.shape[0] for o in outs]) == 4
        assert np.median([i.shape[0] for i in ins]) == 9

    def test_deterministic(self):
        a, _ = _generate_pairs(SHAPE, 2, 2, 0.05, seed=7)
        b, _ = _generate_pairs(SHAPE, 2, 2, 0.05, seed=7)
        assert all((x == y).all() for x, y in zip(a, b))


class TestMicroBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return MicroBenchmark(
            fanin=5, fanout=3, shape=SHAPE, coverage=0.05, seed=2, query_cells=50
        )

    def test_spec_rebuild_is_deterministic(self, bench):
        s1, s2 = bench.build_spec(), bench.build_spec()
        op1, op2 = s1.node("synthetic").operator, s2.node("synthetic").operator
        assert all((a == b).all() for a, b in zip(op1._outs, op2._outs))

    @pytest.mark.parametrize(
        "strategy",
        [BLACKBOX, FULL_ONE_B, FULL_MANY_B, FULL_ONE_F, PAY_ONE_B],
        ids=lambda s: s.label,
    )
    def test_strategy_equivalence(self, bench, strategy):
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        if strategy is not BLACKBOX:
            sz.set_strategy("synthetic", strategy)
        instance = sz.run(bench.inputs())
        queries = bench.queries(instance)

        ref = SubZero(bench.build_spec(), enable_query_opt=False)
        ref_instance = ref.run(bench.inputs())
        ref_queries = bench.queries(ref_instance)

        for name in queries:
            got = {tuple(c) for c in sz.execute_query(queries[name]).coords}
            want = {tuple(c) for c in ref.execute_query(ref_queries[name]).coords}
            assert got == want, name

    def test_payload_size_is_4x_fanin(self, bench):
        op: SyntheticLineageOp = bench.build_spec().node("synthetic").operator
        for ins in op._ins[:5]:
            assert len(op._encode_payload(ins)) == 4 * ins.shape[0]

    def test_disk_grows_with_fanin(self):
        sizes = {}
        for fanin in (1, 16):
            bench = MicroBenchmark(
                fanin=fanin, fanout=1, shape=SHAPE, coverage=0.05, seed=2
            )
            sz = SubZero(bench.build_spec())
            sz.set_strategy("synthetic", FULL_ONE_B)
            sz.run(bench.inputs())
            sizes[fanin] = sz.lineage_disk_bytes()
        assert sizes[16] > sizes[1]

    def test_payload_disk_flat_in_fanin_for_one(self):
        """PayOne keys dominate; disk grows only via the 4*fanin payload."""
        sizes = {}
        for fanin in (1, 16):
            bench = MicroBenchmark(
                fanin=fanin, fanout=1, shape=SHAPE, coverage=0.05, seed=2
            )
            sz = SubZero(bench.build_spec())
            sz.set_strategy("synthetic", PAY_ONE_B)
            sz.run(bench.inputs())
            sizes[fanin] = sz.lineage_disk_bytes()
        # paper: payload overhead nearly independent of fanin (vs Full's blow-up)
        assert sizes[16] < sizes[1] * 8
