"""Persistence round-trips: lineage stores survive a process restart.

Region lineage is a rebuildable cache (§VI-A), but flushing it avoids the
rebuild: a store flushed to disk and loaded in a fresh runtime must answer
every query identically.
"""

import numpy as np
import pytest

from repro import (
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    PAY_MANY_B,
    PAY_ONE_B,
    SciArray,
)
from repro.arrays import coords as C
from repro.core.lineage_store import RegionEntryTable, make_store
from repro.core.model import BufferSink, ElementwiseBatch, PayloadBatch, RegionPair
from repro.core.runtime import LineageRuntime
from repro.workflow.executor import execute_workflow
from tests.conftest import build_spot_spec

SHAPE = (8, 10)


def cells(*coords):
    return np.asarray(coords, dtype=np.int64)


def populated_sink():
    sink = BufferSink()
    sink.add_pair(
        RegionPair(outcells=cells((0, 0), (0, 1)), incells=(cells((2, 2), (3, 3)),))
    )
    sink.add_elementwise(
        ElementwiseBatch(outcells=cells((5, 5), (6, 6)), incells=(cells((5, 5), (6, 6)),))
    )
    return sink


def payload_sink():
    sink = BufferSink()
    sink.add_pair(RegionPair(outcells=cells((1, 1), (1, 2)), payload=b"PP"))
    sink.add_payload_batch(
        PayloadBatch(outcells=cells((4, 4)), payloads=np.asarray([[7]], dtype=np.uint8))
    )
    return sink


class TestRegionEntryTableRoundtrip:
    def test_flush_load(self, tmp_path):
        table = RegionEntryTable(SHAPE)
        table.add_entry(C.pack_coords(cells((0, 0), (0, 3)), SHAPE), b"v0")
        table.add_entry(C.pack_coords(cells((5, 5)), SHAPE), b"v1")
        path = str(tmp_path / "table.bin")
        written = table.flush(path)
        assert written > 0
        loaded = RegionEntryTable.load(path, SHAPE)
        assert loaded.n_entries == 2
        assert loaded.entry_value(0) == b"v0"
        assert (loaded.entry_keys(0) == table.entry_keys(0)).all()
        # the R-tree was rebuilt
        assert len(loaded.candidate_entries(cells((5, 5)))) == 1

    def test_empty_roundtrip(self, tmp_path):
        table = RegionEntryTable(SHAPE)
        path = str(tmp_path / "empty.bin")
        table.flush(path)
        assert RegionEntryTable.load(path, SHAPE).n_entries == 0

    def test_pre_codec_flushed_values_still_load_and_probe(self, tmp_path):
        """A table flushed before the codec subsystem existed holds only
        legacy delta-tagged values; loading must decode them and the new
        in-situ probes must answer over them unchanged."""
        from repro.storage import codecs

        in_cells = np.sort(C.pack_coords(cells((2, 2), (2, 3), (2, 4)), SHAPE))
        legacy_value = codecs.DELTA.encode(in_cells)  # the only seed format
        table = RegionEntryTable(SHAPE)
        table.add_entry(C.pack_coords(cells((0, 0), (0, 1)), SHAPE), legacy_value)
        path = str(tmp_path / "legacy.bin")
        table.flush(path)

        from repro.storage import serialize as ser

        loaded = RegionEntryTable.load(path, SHAPE)
        assert loaded.entry_value(0) == legacy_value
        decoded, _ = ser.decode_int_array(loaded.entry_value(0))
        assert (decoded == in_cells).all()
        assert loaded.value_contains_any(0, in_cells[:1])
        assert loaded.value_bounds(0) == (int(in_cells[0]), int(in_cells[-1]), 3)


@pytest.mark.parametrize(
    "strategy",
    [FULL_ONE_B, FULL_ONE_F, FULL_MANY_B, FULL_MANY_F],
    ids=lambda s: s.label,
)
def test_full_store_roundtrip(tmp_path, strategy):
    store = make_store("n", strategy, SHAPE, (SHAPE,))
    store.ingest(populated_sink())
    store.flush_to(str(tmp_path))

    clone = make_store("n", strategy, SHAPE, (SHAPE,))
    clone.load_from(str(tmp_path))
    q_out = C.pack_coords(cells((0, 0), (5, 5)), SHAPE)
    q_in = C.pack_coords(cells((2, 2), (6, 6)), SHAPE)
    if strategy.orientation.value == "backward":
        a = store.backward_full(q_out)
        b = clone.backward_full(q_out)
        assert (a[0] == b[0]).all()
        assert set(a[1][0].tolist()) == set(b[1][0].tolist())
    else:
        assert set(store.forward_full(q_in, 0).tolist()) == set(
            clone.forward_full(q_in, 0).tolist()
        )


@pytest.mark.parametrize("strategy", [PAY_ONE_B, PAY_MANY_B], ids=lambda s: s.label)
def test_payload_store_roundtrip(tmp_path, strategy):
    store = make_store("n", strategy, SHAPE, (SHAPE,))
    store.ingest(payload_sink())
    store.flush_to(str(tmp_path))
    clone = make_store("n", strategy, SHAPE, (SHAPE,))
    clone.load_from(str(tmp_path))
    q = C.pack_coords(cells((1, 2), (4, 4)), SHAPE)
    a_matched, a_pairs = store.backward_payload(q)
    b_matched, b_pairs = clone.backward_payload(q)
    assert (a_matched == b_matched).all()
    assert {p for _, p in a_pairs} == {p for _, p in b_pairs}


class TestRuntimeFlushAll:
    def test_manifest_roundtrip_answers_queries(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        runtime = LineageRuntime()
        runtime.set_strategies("spot", [FULL_ONE_B, PAY_ONE_B])
        instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        out_shape = instance.output_shape("spot")
        q = C.pack_coords(cells((3, 3), (7, 7)), out_shape)
        original = runtime.store_for("spot", FULL_ONE_B).backward_full(q)

        written = runtime.flush_all(str(tmp_path))
        assert written > 0
        assert (tmp_path / "catalog.json").exists()
        # one single-file segment per store
        assert len(list(tmp_path.glob("*.seg"))) == 2

        fresh = LineageRuntime()
        loaded = fresh.load_all(str(tmp_path))
        assert loaded == 2
        assert FULL_ONE_B in fresh.strategies_for("spot")
        # lazy-open: attaching the catalog materialises nothing...
        assert fresh._catalog.open_count() == 0
        restored = fresh.store_for("spot", FULL_ONE_B).backward_full(q)
        # ...and the first query opened exactly the store it needed
        assert fresh._catalog.open_count() == 1
        assert (original[0] == restored[0]).all()
        assert set(original[1][0].tolist()) == set(restored[1][0].tolist())

    def test_flush_bytes_close_to_disk_accounting(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        written = runtime.flush_all(str(tmp_path))
        accounted = runtime.total_disk_bytes()
        # the segment carries the logical store bytes plus derived serving
        # structures (section table, persisted lowered batch-scan tables)
        # whose fixed framing dominates only on stores this small
        assert written >= accounted * 0.7
        assert written <= accounted * 2.0 + 16384

    def test_loaded_catalog_accounts_from_manifest(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        runtime.flush_all(str(tmp_path))
        fresh = LineageRuntime()
        fresh.load_all(str(tmp_path))
        # accounting answers from the manifest without opening any segment
        before = fresh.total_disk_bytes()
        assert before > 0
        assert fresh.disk_bytes_by_node().get("spot", 0) > 0
        assert fresh._catalog.open_count() == 0
        # ...and does not drift when queries lazily open stores
        fresh.store_for("spot", FULL_ONE_B)
        assert fresh._catalog.open_count() == 1
        assert fresh.total_disk_bytes() == before
