"""The serving daemon, its client, the 2Q cache, and the request surface.

Five layers under test:

* **wire equivalence** — N concurrent network clients receive results
  byte-identical (canonical projection) to in-process ``sz.query`` for the
  same :class:`QueryRequest`, under a memory budget small enough to force
  cache churn while serving.
* **backpressure** — the admission gate refuses overload *explicitly*
  (HTTP 429 / ``QueueFullError``): a flooded daemon sheds requests
  instead of buffering them, one client cannot exceed its in-flight cap,
  and the waiting line never grows past ``max_queue``.
* **lifecycle** — clean shutdown drains admitted queries before the
  listener closes; queries arriving during the drain get 503; the client
  retries refused connections while a daemon is still binding.
* **2Q cache** — a second touch promotes a store out of probation, a
  one-off scan evicts only its own probationary admissions (the hot
  store survives), and the ghost queue re-admits a recently evicted key
  straight to the protected tier.
* **request surface** — a Hypothesis property: request -> dict -> JSON ->
  request round-trips exactly and executes identically; the deprecated
  ``**overrides`` kwargs warn and map onto request fields.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FULL_MANY_B,
    FULL_ONE_B,
    PAY_ONE_B,
    QueryRequest,
    SciArray,
    SubZero,
    WorkflowSpec,
)
from repro.arrays.versions import VersionStore
from repro.core.catalog import StoreCatalog
from repro.errors import ProtocolError, QueryError, QueueFullError
from repro.serving import (
    DaemonClient,
    QueryDaemon,
    ServingLimits,
    WorkerPool,
    canonical_result,
)
from repro.serving.protocol import load_request
from tests.conftest import SpotUDF

JOIN_TIMEOUT = 120  # seconds before a hung worker counts as a deadlock
SHAPE = (24, 28)


# -- workload ------------------------------------------------------------------


def _daemon_spec() -> WorkflowSpec:
    spec = WorkflowSpec(name="daemon")
    spec.add_source("img")
    spec.add_node("s1", SpotUDF(thresh=0.55, radius=1), ["img"])
    spec.add_node("s2", SpotUDF(thresh=0.5, radius=2), ["s1"])
    spec.add_node("s3", SpotUDF(thresh=0.5, radius=1), ["s2"])
    return spec


def _requests(rng) -> list[QueryRequest]:
    """Mixed backward/forward, path and endpoint forms, over all stores."""
    requests = []
    for _ in range(2):
        cells = [tuple(int(v) for v in c) for c in rng.integers(0, min(SHAPE), size=(5, 2))]
        requests.extend(
            [
                QueryRequest.backward(cells, ["s1"]),
                QueryRequest.backward(cells, ["s2", "s1"]),
                QueryRequest.backward(cells, ["s3", "s2"]),
                QueryRequest.forward(cells, ["s1", "s2"]),
                QueryRequest.forward(cells, ["s3"]),
                QueryRequest.backward(cells, start="s3", end="img"),
                QueryRequest.forward(cells, start="img", end="s2"),
            ]
        )
    return requests


@pytest.fixture(scope="module")
def flushed(tmp_path_factory):
    """Run the workflow once, flush it, and precompute the canonical
    in-process answer for every request in the shared workload."""
    rng = np.random.default_rng(11)
    image = SciArray.from_numpy(rng.random(SHAPE))
    versions = VersionStore()
    sz = SubZero(_daemon_spec(), enable_query_opt=False)
    sz.set_strategy("s1", FULL_ONE_B)
    sz.set_strategy("s2", FULL_MANY_B)
    sz.set_strategy("s3", PAY_ONE_B)
    sz.run({"img": image}, version_store=versions)
    lineage_dir = str(tmp_path_factory.mktemp("daemon-lineage"))
    sz.flush_lineage(lineage_dir)
    requests = _requests(np.random.default_rng(5))
    baseline = [canonical_result(sz.query(r).to_dict()) for r in requests]
    return {
        "versions": versions,
        "wal": sz.wal,
        "dir": lineage_dir,
        "requests": requests,
        "baseline": baseline,
    }


def _resume_engine(flushed, memory_budget_bytes=None) -> SubZero:
    sz = SubZero(
        _daemon_spec(),
        enable_query_opt=False,
        memory_budget_bytes=memory_budget_bytes,
    )
    sz.resume(flushed["versions"], wal=flushed["wal"], lineage_dir=flushed["dir"])
    return sz


class _BlockingEngine:
    """Engine wrapper whose queries park until the test releases them."""

    def __init__(self, inner: SubZero):
        self.inner = inner
        self.release = threading.Event()

    def query(self, request):
        assert self.release.wait(JOIN_TIMEOUT), "blocking engine never released"
        return self.inner.query(request)


def _poll(predicate, timeout: float = 10.0, what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.005)


# -- wire equivalence ----------------------------------------------------------


@pytest.mark.timeout(300)
class TestDaemonEquivalence:
    def test_eight_clients_match_in_process_under_budget(self, flushed):
        """8 concurrent network clients, cache churn forced by a budget
        sized for roughly one store: every response's canonical form must
        equal the in-process baseline."""
        catalog = StoreCatalog.open(flushed["dir"])
        budget = max(e.nbytes for e in catalog.entries()) + 1
        requests, baseline = flushed["requests"], flushed["baseline"]
        with _resume_engine(flushed, memory_budget_bytes=budget) as sz:
            with QueryDaemon(sz, port=0) as daemon:
                host, port = daemon.address
                failures: list[str] = []

                def client_run(cid: int) -> None:
                    client = DaemonClient(host, port, client_id=f"c{cid}")
                    order = np.random.default_rng(cid).permutation(len(requests))
                    for j in order:
                        got = canonical_result(client.query(requests[j]))
                        if got != baseline[j]:
                            failures.append(f"client {cid} request {j} diverged")
                            return

                threads = [
                    threading.Thread(target=client_run, args=(cid,), daemon=True)
                    for cid in range(8)
                ]
                for t in threads:
                    t.start()
                deadline = time.monotonic() + JOIN_TIMEOUT
                for t in threads:
                    t.join(timeout=max(0.0, deadline - time.monotonic()))
                assert not any(t.is_alive() for t in threads), "daemon serving hung"
                assert not failures, failures[0]
                stats = daemon.stats()
                assert stats["gate"]["admitted"] == 8 * len(requests)
                assert stats["gate"]["rejected"] == 0
                assert stats["cache"]["evictions"] > 0  # the budget did bite

    def test_health_stats_and_unknown_endpoint(self, flushed):
        with _resume_engine(flushed) as sz:
            with QueryDaemon(sz, port=0) as daemon:
                client = DaemonClient(*daemon.address)
                client.wait_ready()
                assert client.health() == {"status": "serving"}
                stats = client.stats()
                assert stats["gate"]["waiting"] == 0
                assert "cache" in stats
                status, body = client._call("GET", "/v1/nope")
                assert status == 404 and "error" in body

    def test_malformed_and_invalid_requests_get_400(self, flushed):
        with _resume_engine(flushed) as sz:
            with QueryDaemon(sz, port=0) as daemon:
                client = DaemonClient(*daemon.address)
                client.wait_ready()
                status, body = client._call("POST", "/v1/query", b"{not json")
                assert status == 400 and body["error"]["type"] == "ProtocolError"
                bad = json.dumps(
                    {"direction": "sideways", "cells": [[1, 1]], "path": [["s1", 0]]}
                ).encode()
                status, body = client._call("POST", "/v1/query", bad)
                assert status == 400 and body["error"]["type"] == "QueryError"
                # a well-formed request over an unknown node: engine-level 400
                with pytest.raises(QueryError):
                    client.query(QueryRequest.backward([(1, 1)], ["nonesuch"]))


# -- backpressure --------------------------------------------------------------


@pytest.mark.timeout(300)
class TestBackpressure:
    def test_flood_sheds_load_with_429(self, flushed):
        """A daemon with one execution slot and a one-deep queue refuses
        the rest of a 12-request flood instead of buffering it."""
        with _resume_engine(flushed) as sz:
            blocking = _BlockingEngine(sz)
            limits = ServingLimits(
                max_inflight=1,
                max_queue=1,
                max_per_client=64,
                queue_timeout_seconds=0.2,
            )
            request = flushed["requests"][0]
            with QueryDaemon(blocking, port=0, limits=limits) as daemon:
                host, port = daemon.address
                outcomes: list[str] = []
                lock = threading.Lock()  # szlint: ignore[SZ005] -- test-local counter lock, not engine state

                def hit() -> None:
                    client = DaemonClient(host, port, client_id="flood")
                    try:
                        client.query(request)
                        with lock:
                            outcomes.append("ok")
                    except QueueFullError:
                        with lock:
                            outcomes.append("shed")

                threads = [threading.Thread(target=hit, daemon=True) for _ in range(12)]
                for t in threads:
                    t.start()
                # while the flood is parked, the waiting line stays bounded
                _poll(
                    lambda: daemon.gate.stats()["executing"] == 1,
                    what="first query to start executing",
                )
                assert daemon.gate.stats()["waiting"] <= limits.max_queue
                blocking.release.set()
                deadline = time.monotonic() + JOIN_TIMEOUT
                for t in threads:
                    t.join(timeout=max(0.0, deadline - time.monotonic()))
                assert not any(t.is_alive() for t in threads), "flood hung"
                assert "ok" in outcomes, "nothing was served under overload"
                assert "shed" in outcomes, "overload was buffered, not shed"
                # every client-side QueueFullError is an explicit gate
                # rejection — shed load, not dropped or buffered load
                assert daemon.gate.stats()["rejected"] == outcomes.count("shed")

    def test_per_client_inflight_cap(self, flushed):
        """One greedy client identity cannot hold more than its cap."""
        with _resume_engine(flushed) as sz:
            blocking = _BlockingEngine(sz)
            limits = ServingLimits(max_inflight=4, max_queue=4, max_per_client=1)
            request = flushed["requests"][0]
            with QueryDaemon(blocking, port=0, limits=limits) as daemon:
                host, port = daemon.address
                first_result: list = []

                def first() -> None:
                    client = DaemonClient(host, port, client_id="greedy")
                    first_result.append(client.query(request))

                t = threading.Thread(target=first, daemon=True)
                t.start()
                _poll(
                    lambda: daemon.gate.stats()["executing"] == 1,
                    what="first query to occupy the client's slot",
                )
                same = DaemonClient(host, port, client_id="greedy")
                with pytest.raises(QueueFullError):
                    same.query(request)
                # a different identity is admitted fine
                other = DaemonClient(host, port, client_id="patient")
                done = threading.Event()

                def second() -> None:
                    other.query(request)
                    done.set()

                t2 = threading.Thread(target=second, daemon=True)
                t2.start()
                _poll(
                    lambda: daemon.gate.stats()["executing"] == 2,
                    what="second client to be admitted",
                )
                blocking.release.set()
                t.join(JOIN_TIMEOUT)
                assert done.wait(JOIN_TIMEOUT) and first_result
                t2.join(JOIN_TIMEOUT)


# -- lifecycle -----------------------------------------------------------------


@pytest.mark.timeout(300)
class TestLifecycle:
    def test_clean_shutdown_drains_inflight(self, flushed):
        """A query admitted before shutdown completes with 200; queries
        arriving during the drain get 503; the listener then closes."""
        with _resume_engine(flushed) as sz:
            blocking = _BlockingEngine(sz)
            request = flushed["requests"][0]
            expected = canonical_result(sz.query(request).to_dict())
            daemon = QueryDaemon(blocking, port=0).start()
            host, port = daemon.address
            inflight_result: list = []

            def inflight() -> None:
                client = DaemonClient(host, port, client_id="inflight")
                inflight_result.append(client.query(request))

            t = threading.Thread(target=inflight, daemon=True)
            t.start()
            _poll(
                lambda: daemon.gate.stats()["executing"] == 1,
                what="in-flight query to start",
            )
            DaemonClient(host, port).shutdown()
            _poll(lambda: daemon.stopping, what="daemon to enter stopping state")
            late = DaemonClient(host, port, client_id="late")
            with pytest.raises(ProtocolError, match="503|shutting down"):
                late.query(request)
            blocking.release.set()
            t.join(JOIN_TIMEOUT)
            assert not t.is_alive(), "in-flight query abandoned by shutdown"
            assert inflight_result, "admitted query did not complete"
            assert canonical_result(inflight_result[0]) == expected
            # the drain finished: the listener is (or is about to be) closed
            def refused() -> bool:
                try:
                    DaemonClient(host, port, connect_retries=0).health()
                    return False
                except OSError:
                    return True
                except ProtocolError:
                    return True

            _poll(refused, what="listener to close after drain")
            daemon.stop()  # idempotent

    def test_client_retries_while_daemon_binds(self, flushed):
        """A client started before the daemon connects once it is up."""
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with _resume_engine(flushed) as sz:
            started: list[QueryDaemon] = []

            def late_start() -> None:
                time.sleep(0.25)
                started.append(QueryDaemon(sz, port=port).start())

            t = threading.Thread(target=late_start, daemon=True)
            t.start()
            try:
                client = DaemonClient(
                    "127.0.0.1", port, connect_retries=200, connect_delay=0.025
                )
                assert client.health() == {"status": "serving"}
            finally:
                t.join(JOIN_TIMEOUT)
                for daemon in started:
                    daemon.stop()

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            ServingLimits(max_inflight=0)
        with pytest.raises(ValueError):
            ServingLimits(max_queue=-1)
        with pytest.raises(ValueError):
            ServingLimits(max_per_client=0)


# -- the 2Q cache --------------------------------------------------------------


class Test2QCache:
    def test_promotion_on_second_touch(self, flushed):
        catalog = StoreCatalog.open(flushed["dir"])
        key = catalog.keys()[0]
        record = catalog.borrow(*key)
        assert record.tier == "probation"  # first touch
        catalog.release(record)
        again = catalog.borrow(*key)
        assert again is record and record.tier == "protected"
        catalog.release(again)
        stats = catalog.stats()
        assert stats["promotions"] == 1
        assert stats["ghost_hits"] == 0
        catalog.close()

    def test_scan_does_not_evict_hot_store(self, flushed):
        """The tentpole property: with the budget one eviction short of
        everything, a one-off scan over the cold stores evicts its own
        probationary admission — never the re-referenced (hot) store,
        which plain LRU would have victimized as least-recently-used."""
        catalog = StoreCatalog.open(flushed["dir"])
        keys = catalog.keys()
        assert len(keys) == 3
        hot, cold1, cold2 = keys
        catalog.memory_budget_bytes = sum(e.nbytes for e in catalog.entries()) - 1
        catalog.open_store(*hot)
        catalog.open_store(*hot)  # second touch: promoted to protected
        catalog.open_store(*cold1)  # the scan begins (probation)
        catalog.open_store(*cold2)  # over budget -> evict probation FIFO
        assert catalog.is_open(*hot), "scan evicted the hot store"
        assert not catalog.is_open(*cold1), "expected the scan's own admission out"
        assert catalog.is_open(*cold2)
        stats = catalog.stats()
        assert stats["promotions"] == 1
        assert stats["evictions"] == 1
        catalog.close()

    def test_ghost_readmits_to_protected(self, flushed):
        """A key that bounces back shortly after eviction was evidently
        re-referenced: the ghost admits it straight to protected."""
        catalog = StoreCatalog.open(flushed["dir"])
        keys = catalog.keys()
        hot, cold1, cold2 = keys
        catalog.memory_budget_bytes = sum(e.nbytes for e in catalog.entries()) - 1
        catalog.open_store(*hot)
        catalog.open_store(*hot)
        catalog.open_store(*cold1)
        catalog.open_store(*cold2)  # evicts cold1 (probation FIFO)
        catalog.open_store(*cold1)  # back within the ghost window
        stats = catalog.stats()
        assert stats["ghost_hits"] == 1
        record = catalog.borrow(*cold1)
        assert record.tier == "protected"
        catalog.release(record)
        catalog.close()

    def test_single_touch_order_is_fifo_lru_compatible(self, flushed):
        """With no re-references, 2Q degenerates to the old LRU behaviour
        (insertion-order eviction) — the upgrade is regression-free for
        one-pass workloads."""
        catalog = StoreCatalog.open(flushed["dir"])
        keys = catalog.keys()
        catalog.memory_budget_bytes = sum(e.nbytes for e in catalog.entries()) - 1
        for key in keys:
            catalog.open_store(*key)
        assert not catalog.is_open(*keys[0])  # oldest single-touch out first
        assert catalog.is_open(*keys[1]) and catalog.is_open(*keys[2])
        catalog.close()


# -- request surface -----------------------------------------------------------


_CELLS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SHAPE[0] - 1),
        st.integers(min_value=0, max_value=SHAPE[1] - 1),
    ),
    min_size=1,
    max_size=8,
)
_ROUTES = st.sampled_from(
    [
        ("backward", ["s1"], None),
        ("backward", ["s2", "s1"], None),
        ("backward", ["s3", "s2"], None),
        ("forward", ["s1", "s2"], None),
        ("forward", ["s3"], None),
        ("backward", None, ("s3", "img")),
        ("forward", None, ("img", "s2")),
    ]
)
_FLAG = st.sampled_from([None, True, False])


@pytest.mark.timeout(300)
class TestRequestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(cells=_CELLS, route=_ROUTES, entire=_FLAG, opt=_FLAG)
    def test_request_json_roundtrip_executes_identically(
        self, flushed, cells, route, entire, opt
    ):
        direction, path, endpoints = route
        ctor = QueryRequest.backward if direction == "backward" else QueryRequest.forward
        if path is not None:
            request = ctor(cells, path, entire_array=entire, query_opt=opt)
        else:
            start, end = endpoints
            request = ctor(
                cells, start=start, end=end, entire_array=entire, query_opt=opt
            )
        # dict -> JSON -> dict -> request is exact
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = QueryRequest.from_dict(wire)
        assert rebuilt == request
        assert load_request(json.dumps(wire).encode()) == request
        # and the round-tripped request answers identically in-process
        sz = self._engine(flushed)
        assert canonical_result(sz.query(rebuilt).to_dict()) == canonical_result(
            sz.query(request).to_dict()
        )

    _cached_engine: SubZero | None = None

    @classmethod
    def _engine(cls, flushed) -> SubZero:
        # one resumed engine for every Hypothesis example (resume is slow)
        if cls._cached_engine is None:
            cls._cached_engine = _resume_engine(flushed)
        return cls._cached_engine

    @classmethod
    def teardown_class(cls) -> None:
        if cls._cached_engine is not None:
            cls._cached_engine.close()
            cls._cached_engine = None

    def test_request_validation(self):
        with pytest.raises(QueryError):
            QueryRequest("sideways", ((1, 1),), (("s1", 0),))
        with pytest.raises(QueryError):
            QueryRequest.backward([], ["s1"])  # no cells
        with pytest.raises(QueryError):
            QueryRequest.backward([(1, 1)])  # neither path nor endpoints
        with pytest.raises(QueryError):
            QueryRequest.backward([(1, 1)], ["s1"], start="a", end="b")  # both
        with pytest.raises(QueryError):
            QueryRequest.backward([(1, 1)], start="a")  # half the endpoints
        with pytest.raises(QueryError):
            QueryRequest.from_dict({"v": 99, "direction": "backward", "cells": [[1]]})
        with pytest.raises(QueryError):
            QueryRequest.from_dict([1, 2])  # not an object

    def test_canonical_result_strips_diagnostics_only(self, flushed):
        with _resume_engine(flushed) as sz:
            result = sz.query(flushed["requests"][0]).to_dict()
            canon = canonical_result(result)
            assert "seconds" not in canon and "cache" not in canon
            assert all("seconds" not in s for s in canon["steps"])
            assert canon["count"] == result["count"]
            assert canon["coords"] == result["coords"]
            structural = {"node", "direction", "method", "cells_in", "cells_out"}
            assert structural <= set(canon["steps"][0])


# -- deprecated kwargs shim ----------------------------------------------------


class TestDeprecatedOverrides:
    def test_overrides_warn_and_still_apply(self, flushed):
        with _resume_engine(flushed) as sz:
            request = QueryRequest.backward([(5, 5)], ["s2", "s1"], entire_array=False)
            expected = canonical_result(sz.query(request).to_dict())
            with pytest.warns(DeprecationWarning, match="entire_array=False"):
                legacy = sz.backward_query(
                    [(5, 5)], ["s2", "s1"], enable_entire_array=False
                )
            assert canonical_result(legacy.to_dict()) == expected

    def test_unknown_override_raises_type_error(self, flushed):
        with _resume_engine(flushed) as sz:
            with pytest.raises(TypeError, match="unexpected keyword"):
                sz.backward_query([(5, 5)], ["s1"], enable_warp_drive=True)

    def test_serve_single_worker_shares_one_session(self, flushed):
        """Regression for the serve() bugfix: ``max_workers<=1`` must run
        through one QuerySession, so under a tiny budget the whole batch
        pays one open per store instead of eviction churn per query."""
        catalog = StoreCatalog.open(flushed["dir"])
        budget = max(e.nbytes for e in catalog.entries()) + 1
        requests, baseline = flushed["requests"], flushed["baseline"]
        with _resume_engine(flushed, memory_budget_bytes=budget) as sz:
            results = sz.serve(requests, max_workers=1)
            for got, want in zip(results, baseline):
                assert canonical_result(got.to_dict()) == want
            stats = sz.runtime.serving_stats()
            # one shared session pins each store on first touch: without the
            # fix every query opened (and evicted) stores independently
            assert stats["misses"] <= 3


# -- multi-process workers -----------------------------------------------------


@pytest.mark.timeout(300)
@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="fork start method unavailable",
)
class TestWorkerPool:
    def test_fork_pool_matches_in_process(self, flushed):
        with _resume_engine(flushed) as sz:
            requests, baseline = flushed["requests"][:4], flushed["baseline"][:4]
            with WorkerPool(engine=sz, workers=2) as pool:
                for request, want in zip(requests, baseline):
                    assert canonical_result(pool.query(request)) == want
                batch = pool.map(requests)
                assert [canonical_result(b) for b in batch] == baseline[:4]

    def test_daemon_delegates_to_pool(self, flushed):
        with _resume_engine(flushed) as sz:
            request = flushed["requests"][0]
            want = flushed["baseline"][0]
            with WorkerPool(engine=sz, workers=2) as pool:
                with QueryDaemon(sz, port=0, workers=pool) as daemon:
                    client = DaemonClient(*daemon.address)
                    client.wait_ready()
                    assert canonical_result(client.query(request)) == want

    def test_pool_argument_validation(self, flushed):
        with pytest.raises(ValueError):
            WorkerPool()  # neither engine nor factory
        with _resume_engine(flushed) as sz:
            with pytest.raises(ValueError):
                WorkerPool(engine=sz, engine_factory=lambda: sz)  # both
            with pytest.raises(ValueError):
                WorkerPool(engine=sz, mp_context="spawn")  # engine needs fork
