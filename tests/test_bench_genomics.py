"""Integration tests for the genomics benchmark workload."""

import numpy as np
import pytest

from repro import (
    FULL_ONE_B,
    FULL_ONE_F,
    PAY_ONE_B,
    SubZero,
)
from repro.bench.genomics import (
    BUILTIN_NODES,
    N_FEATURES_SELECTED,
    UDF_NODES,
    GenomicsBenchmark,
    generate_matrix,
)
from repro.core.modes import LineageMode

SCALE = 4  # 400 patients — plenty for correctness checks


@pytest.fixture(scope="module")
def bench():
    return GenomicsBenchmark(scale=SCALE, seed=11)


@pytest.fixture(scope="module")
def subzero(bench):
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    for udf in UDF_NODES:
        sz.set_strategy(udf, PAY_ONE_B)
    sz.run(bench.inputs())
    return sz


class TestWorkflowShape:
    def test_node_census(self, bench):
        spec = bench.build_spec()
        assert len(spec) == 14  # 10 built-ins + 4 UDFs, as in Figure 2
        assert len(BUILTIN_NODES) == 10
        assert set(UDF_NODES) <= set(spec.nodes)

    def test_builtins_map(self, bench):
        spec = bench.build_spec()
        for name in BUILTIN_NODES:
            assert LineageMode.MAP in spec.node(name).operator.supported_modes()

    def test_udfs_support_full_and_pay(self, bench):
        spec = bench.build_spec()
        for name in UDF_NODES:
            modes = spec.node(name).operator.supported_modes()
            assert LineageMode.FULL in modes and LineageMode.PAY in modes


class TestDataGenerator:
    def test_shape_and_labels(self):
        m = generate_matrix(scale=2, seed=0)
        assert m.shape == (56, 200)
        labels = m.values()[-1]
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_replication_preserves_labels(self):
        base = generate_matrix(scale=1, seed=0).values()[-1]
        scaled = generate_matrix(scale=3, seed=0).values()[-1]
        assert (scaled[: base.size] == base).all()
        assert (scaled[base.size: 2 * base.size] == base).all()


class TestPipelineOutputs:
    def test_model_shape(self, subzero):
        model = subzero.instance.output_array("train_model")
        assert model.shape == (N_FEATURES_SELECTED, 2)

    def test_predictions_are_probabilities(self, subzero):
        pred = subzero.instance.output_array("predict").values()
        assert pred.shape[1] == 1
        assert (pred >= 0).all() and (pred <= 1).all()

    def test_final_threshold_binary(self, subzero):
        out = subzero.instance.output_array("p_thresh").values()
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestLineageSemantics:
    def test_extract_is_one_to_one(self, subzero):
        res = subzero.backward_query([(5, 2)], [("extract_train", 0)])
        assert res.count == 1

    def test_model_cell_fanin_is_two_columns(self, subzero):
        n_patients = subzero.instance.operator("train_model").input_shapes[0][0]
        res = subzero.backward_query([(3, 0)], [("train_model", 0)])
        assert res.count == 2 * n_patients  # feature column + label column

    def test_prediction_depends_on_whole_model(self, subzero):
        res = subzero.backward_query([(7, 0)], [("predict", 0)])
        assert res.count == N_FEATURES_SELECTED * 2

    def test_prediction_depends_on_patient_row(self, subzero):
        res = subzero.backward_query([(7, 0)], [("predict", 1)])
        assert {c[0] for c in res.coords.tolist()} == {7}
        assert res.count == N_FEATURES_SELECTED


class TestQueriesAndEquivalence:
    def test_all_queries_run(self, bench, subzero):
        queries = bench.queries(subzero.instance)
        assert set(queries) == {"BQ0", "BQ1", "FQ0", "FQ1"}
        for name, query in queries.items():
            assert subzero.execute_query(query).count > 0, name

    @pytest.mark.parametrize(
        "strategies",
        [None, [FULL_ONE_B], [FULL_ONE_F], [PAY_ONE_B], [PAY_ONE_B, FULL_ONE_F]],
        ids=["BlackBox", "FullOne", "FullForw", "PayOne", "PayBoth"],
    )
    def test_strategy_equivalence(self, bench, strategies):
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        if strategies:
            for udf in UDF_NODES:
                sz.set_strategy(udf, *strategies)
        instance = sz.run(bench.inputs())
        queries = bench.queries(instance)
        reference = SubZero(bench.build_spec(), enable_query_opt=False)
        reference.use_mapping_where_possible()
        ref_instance = reference.run(bench.inputs())
        ref_queries = bench.queries(ref_instance)
        for name in queries:
            got = {tuple(c) for c in sz.execute_query(queries[name]).coords}
            want = {tuple(c) for c in reference.execute_query(ref_queries[name]).coords}
            assert got == want, name

    def test_forward_and_backward_consistent(self, subzero):
        """Cells reported by BQ1 must flow forward to the queried model cell."""
        model_cell = (2, 0)
        back = subzero.backward_query(
            [model_cell],
            [("train_model", 0), ("extract_train", 0), ("t_norm", 0), ("t_log", 0), ("t_transpose", 0)],
        )
        some_sources = back.coords[:3]
        fwd = subzero.forward_query(
            some_sources,
            [("t_transpose", 0), ("t_log", 0), ("t_norm", 0), ("extract_train", 0), ("train_model", 0)],
        )
        assert model_cell in {tuple(c) for c in fwd.coords}
