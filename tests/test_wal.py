"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import StorageError
from repro.storage.wal import InvocationRecord, WriteAheadLog


def make_record(node="n1", out=3):
    return InvocationRecord(
        node=node,
        op_name="Scale",
        input_versions=(1, 2),
        output_version=out,
        params={"factor": 2.0},
        lineage_modes=("Map",),
    )


class TestInvocationRecord:
    def test_json_roundtrip(self):
        rec = make_record()
        back = InvocationRecord.from_json(rec.to_json())
        assert back == rec

    def test_corrupt_json(self):
        with pytest.raises(StorageError):
            InvocationRecord.from_json("{not json")

    def test_missing_field(self):
        with pytest.raises(StorageError):
            InvocationRecord.from_json('{"node": "x"}')


class TestWriteAheadLog:
    def test_append_iterate(self):
        log = WriteAheadLog()
        log.append(make_record("a"))
        log.append(make_record("b"))
        assert [r.node for r in log] == ["a", "b"]
        assert len(log) == 2
        assert log.nbytes() > 0

    def test_file_backed_and_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path=path)
        log.append(make_record("a", out=1))
        log.append(make_record("b", out=2))
        log.close()
        replayed = WriteAheadLog.replay(path)
        assert [r.node for r in replayed] == ["a", "b"]
        assert replayed.records()[1].output_version == 2

    def test_replay_skips_blank_lines(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text(make_record().to_json() + "\n\n")
        assert len(WriteAheadLog.replay(str(path))) == 1

    def test_replay_corrupt_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("garbage\n")
        with pytest.raises(StorageError):
            WriteAheadLog.replay(str(path))

    def test_appends_after_replay_are_persisted(self, tmp_path):
        """Crash-recovery regression: a replayed log must keep appending to
        the file — it used to come back handle-less and drop new records."""
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path=path) as log:
            log.append(make_record("a", out=1))
        replayed = WriteAheadLog.replay(path)
        replayed.append(make_record("b", out=2))
        replayed.close()
        again = WriteAheadLog.replay(path, reopen=False)
        assert [r.node for r in again] == ["a", "b"]

    def test_replay_without_reopen_is_in_memory(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path=path) as log:
            log.append(make_record("a"))
        replayed = WriteAheadLog.replay(path, reopen=False)
        replayed.append(make_record("b"))
        assert len(WriteAheadLog.replay(path, reopen=False)) == 1

    def test_replay_repairs_torn_tail_before_appending(self, tmp_path):
        """A crash can tear the trailing newline off the last record; the
        reopened log must not merge the next append onto that line."""
        path = tmp_path / "wal.log"
        path.write_text(make_record("a").to_json())  # no trailing newline
        replayed = WriteAheadLog.replay(str(path))
        replayed.append(make_record("b"))
        replayed.close()
        again = WriteAheadLog.replay(str(path), reopen=False)
        assert [r.node for r in again] == ["a", "b"]

    def test_context_manager_closes_handle(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path=path) as log:
            log.append(make_record("a"))
            assert log._fh is not None
        assert log._fh is None
        with WriteAheadLog.replay(path) as replayed:
            assert replayed._fh is not None
        assert replayed._fh is None
