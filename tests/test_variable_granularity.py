"""Tests for the §VIII-D extension: variable-granularity (lossy) lineage.

Star detection can store its payload as a bounding box instead of the exact
member-cell set.  Queries then return a *superset* of the true lineage —
the trade the paper's interviewed scientists said they would accept — for
less storage.
"""

import numpy as np
import pytest

from repro import COMP_ONE_B, PAY_ONE_B, SciArray, SubZero, WorkflowSpec
from repro.bench.astronomy import StarDetect


def star_field(seed=0, shape=(48, 64)):
    """A field with a handful of non-convex bright blobs."""
    rng = np.random.default_rng(seed)
    field = rng.normal(0.0, 1.0, size=shape)
    for _ in range(5):
        cy, cx = rng.integers(5, shape[0] - 5), rng.integers(5, shape[1] - 5)
        field[cy, cx - 2: cx + 3] += 40.0  # horizontal bar
        field[cy - 2: cy + 3, cx] += 40.0  # vertical bar -> a plus shape
    return SciArray.from_numpy(field)


def run_detector(granularity, field, strategy=COMP_ONE_B):
    spec = WorkflowSpec(name=f"stars_{granularity}")
    spec.add_source("field")
    spec.add_node("stars", StarDetect(granularity=granularity), ["field"])
    sz = SubZero(spec, enable_query_opt=False)
    sz.set_strategy("stars", strategy)
    sz.run({"field": field})
    return sz


class TestGranularityValidation:
    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            StarDetect(granularity="fuzzy")


class TestBoxPayloads:
    @pytest.fixture(scope="class")
    def field(self):
        return star_field()

    @pytest.fixture(scope="class")
    def engines(self, field):
        return run_detector("exact", field), run_detector("box", field)

    def _star_cells(self, sz):
        labels = sz.instance.output_array("stars").values().astype(int)
        ids, counts = np.unique(labels[labels > 0], return_counts=True)
        star = int(ids[np.argmax(counts)])
        return np.stack(np.nonzero(labels == star), axis=1)

    def test_box_lineage_is_superset(self, engines):
        exact_sz, box_sz = engines
        cells = self._star_cells(exact_sz)
        target = [tuple(int(x) for x in cells[0])]
        exact = {tuple(c) for c in exact_sz.backward_query(target, [("stars", 0)]).coords}
        box = {tuple(c) for c in box_sz.backward_query(target, [("stars", 0)]).coords}
        assert exact <= box

    def test_box_is_strictly_lossy_for_nonconvex_stars(self, engines):
        """Plus-shaped stars don't fill their bounding boxes."""
        exact_sz, box_sz = engines
        cells = self._star_cells(exact_sz)
        target = [tuple(int(x) for x in cells[0])]
        exact = exact_sz.backward_query(target, [("stars", 0)]).count
        box = box_sz.backward_query(target, [("stars", 0)]).count
        assert box > exact

    def test_box_payloads_are_smaller(self, field):
        exact_sz = run_detector("exact", field, strategy=PAY_ONE_B)
        box_sz = run_detector("box", field, strategy=PAY_ONE_B)
        # both store one payload per output cell; box payloads are 17 bytes
        # flat while exact payloads grow with star size
        assert box_sz.lineage_disk_bytes() < exact_sz.lineage_disk_bytes()

    def test_background_cells_unaffected(self, engines):
        exact_sz, box_sz = engines
        labels = exact_sz.instance.output_array("stars").values()
        cold = np.stack(np.nonzero(labels < 0.5), axis=1)[0]
        target = [tuple(int(x) for x in cold)]
        for sz in engines:
            res = sz.backward_query(target, [("stars", 0)])
            assert {tuple(c) for c in res.coords} == {target[0]}

    def test_forward_query_remains_superset(self, engines):
        """Forward through a lossy payload still covers the true lineage."""
        exact_sz, box_sz = engines
        cells = self._star_cells(exact_sz)
        probe = [tuple(int(x) for x in cells[0])]
        exact = {tuple(c) for c in exact_sz.forward_query(probe, [("stars", 0)]).coords}
        box = {tuple(c) for c in box_sz.forward_query(probe, [("stars", 0)]).coords}
        assert exact <= box
