"""Tests for the lineage runtime (strategy plumbing, ingest accounting) and
the black-box re-executor (tracing-mode joins)."""

import numpy as np
import pytest

from repro import (
    BLACKBOX,
    FULL_ONE_B,
    MAP,
    PAY_ONE_B,
    SciArray,
    WorkflowSpec,
    ops,
)
from repro.core.modes import LineageMode
from repro.core.reexec import ReExecutor
from repro.core.runtime import LineageRuntime
from repro.arrays import coords as C
from repro.errors import LineageError
from repro.workflow.executor import execute_workflow
from tests.conftest import SpotUDF, build_spot_spec


@pytest.fixture
def image(rng):
    return SciArray.from_numpy(rng.random((10, 12)))


class TestRuntimeStrategyPlumbing:
    def test_default_is_blackbox(self):
        runtime = LineageRuntime()
        assert runtime.strategies_for("anything") == (BLACKBOX,)

    def test_dedupe(self):
        runtime = LineageRuntime()
        runtime.set_strategies("n", [FULL_ONE_B, FULL_ONE_B, MAP])
        assert runtime.strategies_for("n") == (FULL_ONE_B, MAP)

    def test_validate_against_rejects_unsupported(self):
        runtime = LineageRuntime()
        runtime.set_strategies("n", MAP)
        with pytest.raises(LineageError):
            runtime.validate_against("n", SpotUDF())  # SpotUDF has no Map

    def test_cur_modes_union(self):
        runtime = LineageRuntime()
        op = SpotUDF()
        runtime.set_strategies("n", [FULL_ONE_B, PAY_ONE_B])
        assert runtime.cur_modes("n", op) == frozenset(
            {LineageMode.FULL, LineageMode.PAY}
        )

    def test_cur_modes_blackbox_when_nothing_stored(self):
        runtime = LineageRuntime()
        op = SpotUDF()
        assert runtime.cur_modes("n", op) == frozenset({LineageMode.BLACKBOX})
        runtime.set_strategies("n", MAP)  # map needs no run-time work
        class MappySpot(SpotUDF):
            def supported_modes(self):
                return super().supported_modes() | {LineageMode.MAP}
        assert runtime.cur_modes("n", MappySpot()) == frozenset(
            {LineageMode.BLACKBOX}
        )

    def test_profile_mode_requests_everything(self):
        runtime = LineageRuntime(profile=True)
        op = SpotUDF()
        modes = runtime.cur_modes("n", op)
        assert LineageMode.FULL in modes and LineageMode.PAY in modes

    def test_profile_mode_stores_nothing(self, image):
        runtime = LineageRuntime(profile=True)
        spec = build_spot_spec()
        execute_workflow(spec, {"img": image}, runtime=runtime)
        assert runtime.total_disk_bytes() == 0
        # ...but statistics were still gathered
        assert runtime.stats.get("spot").n_pairs > 0


class TestRuntimeAccounting:
    def test_disk_by_node_and_totals(self, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        spec = build_spot_spec()
        execute_workflow(spec, {"img": image}, runtime=runtime)
        per_node = runtime.disk_bytes_by_node()
        assert per_node["spot"] > 0
        assert runtime.total_disk_bytes() == sum(per_node.values())
        assert runtime.total_write_seconds() > 0

    def test_stats_record_store_sizes(self, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        stats = runtime.stats.get("spot")
        assert stats.disk_bytes["<-FullOne"] > 0
        assert stats.n_pairs == stats.n_outcells  # spot emits 1-cell pairs

    def test_clear_stores(self, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        runtime.clear_stores()
        assert runtime.total_disk_bytes() == 0


class TestReExecutor:
    @pytest.fixture
    def instance(self, image):
        return execute_workflow(build_spot_spec(), {"img": image})

    def test_trace_backward_matches_stored(self, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        reexec = ReExecutor(instance, runtime.stats)
        out_shape = instance.output_shape("spot")
        q = C.pack_coords(np.asarray([[2, 3], [7, 7]]), out_shape)
        traced = set(reexec.trace_backward("spot", q, 0).tolist())
        store = runtime.store_for("spot", FULL_ONE_B)
        _, per_input = store.backward_full(q)
        assert traced == set(np.unique(per_input[0]).tolist())

    def test_trace_forward_matches_stored(self, image):
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_ONE_B)
        instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        reexec = ReExecutor(instance, runtime.stats)
        in_shape = instance.operator("spot").input_shapes[0]
        q = C.pack_coords(np.asarray([[2, 3], [5, 5]]), in_shape)
        traced = set(reexec.trace_forward("spot", q, 0).tolist())
        store = runtime.store_for("spot", FULL_ONE_B)
        outs = store.scan_forward_full(q, 0)
        assert traced == set(np.unique(outs).tolist())

    def test_mapping_ops_pay_rerun_but_use_maps(self, instance):
        reexec = ReExecutor(instance)
        out_shape = instance.output_shape("smooth")
        q = C.pack_coords(np.asarray([[4, 4]]), out_shape)
        got = reexec.trace_backward("smooth", q, 0)
        assert got.size == 9  # 3x3 kernel neighbourhood

    def test_uninstrumented_op_degrades_to_all_to_all(self, image):
        class Opaque(ops.Operator):
            def compute(self, inputs):
                return SciArray.from_numpy(inputs[0].values() + 1)

        spec = WorkflowSpec(name="opaque")
        spec.add_source("img")
        spec.add_node("op", Opaque(), ["img"])
        instance = execute_workflow(spec, {"img": image})
        reexec = ReExecutor(instance)
        q = C.pack_coords(np.asarray([[0, 0]]), image.shape)
        assert reexec.trace_backward("op", q, 0).size == image.size

    def test_reexec_seconds_recorded(self, image):
        runtime = LineageRuntime()
        instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        reexec = ReExecutor(instance, runtime.stats)
        q = C.pack_coords(np.asarray([[1, 1]]), instance.output_shape("spot"))
        reexec.trace_backward("spot", q, 0)
        assert runtime.stats.get("spot").reexec_seconds is not None

    def test_comp_tracing_applies_defaults(self, image):
        """Re-running a COMP-only operator must fill unmatched cells with
        the mapping default."""

        class CompOnly(SpotUDF):
            def supported_modes(self):
                return frozenset({LineageMode.COMP, LineageMode.BLACKBOX})

        spec = WorkflowSpec(name="comp")
        spec.add_source("img")
        spec.add_node("spot", CompOnly(thresh=0.8), ["img"])
        instance = execute_workflow(spec, {"img": image})
        reexec = ReExecutor(instance)
        # a cold cell: default identity lineage
        labels = instance.output_array("spot").values()
        cold = np.stack(np.nonzero(labels < 0.5), axis=1)[0]
        q = C.pack_coords(cold.reshape(1, -1), instance.output_shape("spot"))
        got = reexec.trace_backward("spot", q, 0)
        assert got.tolist() == q.tolist()
