"""Incremental append-merge: generational catalog + online compaction.

Five layers under test:

* **equivalence property** — a Hypothesis property asserts that appending a
  run as a delta generation and then compacting answers *identically* to a
  single full flush of all the lineage, for all four Full strategies,
  matched and mismatched, before AND after the compaction (the overlay and
  the merge must both be exact).
* **generational catalog** — delta naming (``<name>.gen.<g>.seg``),
  manifest ``gen`` records (absent for never-appended catalogs, keeping
  the schema byte-compatible), ordinal collision avoidance against stale
  crash residue, shape guards, empty-delta skipping.
* **compaction semantics** — generations merge into one base segment,
  bytes are reclaimed, a rewrite budget leaves the rest for a later pass,
  and — the serve-while-compacting contract — readers pinned on the old
  generation set keep serving it, with the superseded delta files unlinked
  only when the last pin drops.
* **crash recovery** — an interrupted compaction leaves the catalog
  serving the old generation set (and no tmp residue); a crash *after* the
  atomic manifest swap leaves stale delta files that recovery sweeps; a
  torn or missing generation is quarantined alone (older generations keep
  serving); a store directory with files deleted outright — a missing
  shard, a missing monolith — quarantines with a clear ``StorageError``,
  never a raw ``FileNotFoundError``.
* **facade + cost model** — ``flush_lineage(append=True)`` /
  ``compact_lineage`` / ``compaction_advice`` round-trip through
  ``SubZero``, and the cost model prices the overlay read amplification so
  the advice (and the query-time optimizer) can see un-compacted appends.
"""

import json
import os
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    FULL_MANY_B,
    FULL_ONE_B,
    PAY_ONE_B,
    SciArray,
    SubZero,
)
from repro.arrays.versions import VersionStore
from repro.core.catalog import StoreCatalog, store_filename
from repro.core.costmodel import CostModel
from repro.core.lineage_store import make_store
from repro.core.model import BufferSink, ElementwiseBatch, RegionPair
from repro.core.modes import BLACKBOX, MAP
from repro.core.overlay import OverlayStore
from repro.core.query import QueryRequest
from repro.core.runtime import LineageRuntime
from repro.core.stats import StatsCollector
from repro.errors import StorageError
from repro.storage.segment import (
    SegmentWriter,
    generation_files,
    generation_path,
    segment_files,
)
from repro.workflow.recovery import QUARANTINE_SUFFIX, recover_lineage
from tests.conftest import build_spot_spec
from tests.test_segments import ALL_FULL, SHAPE, _answers, sinks

JOIN_TIMEOUT = 120  # seconds before a hung worker counts as a deadlock


def cells(*coords):
    return np.asarray(coords, dtype=np.int64)


def _store_from(sink, strategy, node="n"):
    store = make_store(node, strategy, SHAPE, (SHAPE,))
    store.ingest(sink)
    return store


def _sink(seed, n=12):
    """A deterministic elementwise + region-pair sink."""
    rng = np.random.default_rng(seed)
    sink = BufferSink()
    outs = rng.integers(0, SHAPE[0], size=(n, 1))
    outs = np.concatenate([outs, rng.integers(0, SHAPE[1], size=(n, 1))], axis=1)
    ins = np.concatenate(
        [rng.integers(0, SHAPE[0], size=(n, 1)), rng.integers(0, SHAPE[1], size=(n, 1))],
        axis=1,
    )
    sink.add_elementwise(ElementwiseBatch(outcells=outs, incells=(ins,)))
    sink.add_pair(
        RegionPair(
            outcells=cells((0, seed % SHAPE[1]), (1, seed % SHAPE[1])),
            incells=(cells((2, 2), (3, (seed + 3) % SHAPE[1])),),
        )
    )
    return sink


QUERY = np.arange(SHAPE[0] * SHAPE[1], dtype=np.int64)


# -- the equivalence property --------------------------------------------------


class TestAppendCompactEquivalence:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case_a=sinks(), case_b=sinks())
    @settings(max_examples=10, deadline=None)
    def test_append_then_compact_matches_full_flush(
        self, strategy, case_a, case_b, tmp_path_factory
    ):
        sink_a, q_a = case_a
        sink_b, q_b = case_b
        query = np.unique(np.concatenate([q_a, q_b]))

        combined = make_store("n", strategy, SHAPE, (SHAPE,))
        combined.ingest(sink_a)
        combined.ingest(sink_b)
        baseline = _answers(combined, strategy, query)

        directory = str(tmp_path_factory.mktemp("gens"))
        key = ("n", strategy)
        catalog, _ = StoreCatalog.write(directory, {key: _store_from(sink_a, strategy)})
        catalog.close()
        delta = _store_from(sink_b, strategy)
        expect_gens = 2 if delta.n_entries else 1
        catalog, _ = StoreCatalog.append(directory, {key: delta})

        # the overlay (pre-compaction) already answers identically
        assert catalog.generation_count("n", strategy) == expect_gens
        overlay = catalog.open_store("n", strategy)
        assert overlay.lowered_ready()  # every generation persisted warm
        assert _answers(overlay, strategy, query) == baseline
        catalog.close()

        # ...and so does the single merged segment compaction writes
        catalog = StoreCatalog.open(directory)
        catalog.compact()
        assert catalog.generation_count("n", strategy) == 1
        catalog.close()
        fresh = StoreCatalog.open(directory)
        assert fresh.generation_count("n", strategy) == 1
        compacted = fresh.open_store("n", strategy)
        assert _answers(compacted, strategy, query) == baseline
        fresh.close()


# -- the generational catalog --------------------------------------------------


class TestGenerationalCatalog:
    def test_generation_path_naming(self):
        assert generation_path("/d/spot.seg", 0) == "/d/spot.seg"
        assert generation_path("/d/spot.seg", 3) == "/d/spot.gen.3.seg"
        with pytest.raises(StorageError):
            generation_path("/d/spot.seg", -1)

    def test_append_writes_delta_and_manifest_gen(self, tmp_path):
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_MANY_B)})
        catalog.close()
        catalog, nbytes = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        assert nbytes > 0
        base = store_filename("n", FULL_MANY_B)
        delta = base.replace(".seg", ".gen.1.seg")
        assert (tmp_path / delta).exists()
        manifest = json.loads((tmp_path / "catalog.json").read_text())
        gens = {obj["file"]: obj.get("gen") for obj in manifest["stores"]}
        assert gens == {base: None, delta: 1}
        # one store, two generations
        assert len(catalog) == 1
        assert len(catalog.entries()) == 2
        assert catalog.entry("n", FULL_MANY_B).gen == 0
        assert [e.gen for e in catalog.generations_for("n", FULL_MANY_B)] == [0, 1]
        # manifest accounting covers all generations
        assert catalog.manifest_bytes("n", FULL_MANY_B) == sum(
            e.nbytes for e in catalog.entries()
        )
        catalog.close()

    def test_never_appended_manifest_stays_gen_free(self, tmp_path):
        key = ("n", FULL_ONE_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(2), FULL_ONE_B)})
        catalog.close()
        manifest = json.loads((tmp_path / "catalog.json").read_text())
        assert all("gen" not in obj for obj in manifest["stores"])

    def test_append_skips_empty_delta(self, tmp_path):
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(3), FULL_MANY_B)})
        catalog.close()
        empty = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
        catalog, nbytes = StoreCatalog.append(str(tmp_path), {key: empty})
        assert nbytes == 0
        assert catalog.generation_count("n", FULL_MANY_B) == 1
        catalog.close()

    def test_append_rejects_shape_change(self, tmp_path):
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(4), FULL_MANY_B)})
        catalog.close()
        other = make_store("n", FULL_MANY_B, (SHAPE[0] + 1, SHAPE[1]), (SHAPE,))
        sink = BufferSink()
        sink.add_elementwise(
            ElementwiseBatch(outcells=cells((0, 0)), incells=(cells((1, 1)),))
        )
        other.ingest(sink)
        with pytest.raises(StorageError, match="delta shapes"):
            StoreCatalog.append(str(tmp_path), {key: other})

    def test_append_skips_stale_ordinals_on_disk(self, tmp_path):
        """Crash residue: a generation file no manifest references must not
        be overwritten by (or mixed into) the next append."""
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(5), FULL_MANY_B)})
        catalog.close()
        base_path = str(tmp_path / store_filename("n", FULL_MANY_B))
        stale = generation_path(base_path, 1)
        _store_from(_sink(99), FULL_MANY_B).flush_segment(stale)
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(6), FULL_MANY_B)}
        )
        assert [e.gen for e in catalog.generations_for("n", FULL_MANY_B)] == [0, 2]
        assert os.path.exists(generation_path(base_path, 2))
        catalog.close()

    def test_append_into_empty_directory_is_a_first_flush(self, tmp_path):
        key = ("n", FULL_ONE_B)
        catalog, nbytes = StoreCatalog.append(
            str(tmp_path / "fresh"), {key: _store_from(_sink(7), FULL_ONE_B)}
        )
        assert nbytes > 0
        assert catalog.generation_count("n", FULL_ONE_B) == 1
        assert catalog.entry("n", FULL_ONE_B).gen == 0
        catalog.close()

    def test_full_reflush_collapses_and_cleans_deltas(self, tmp_path):
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(8), FULL_MANY_B)})
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(9), FULL_MANY_B)}
        )
        catalog.close()
        combined = _store_from(_sink(8), FULL_MANY_B)
        combined.ingest(_sink(9))
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: combined})
        catalog.close()
        assert not [f for f in os.listdir(tmp_path) if ".gen." in f]
        fresh = StoreCatalog.open(str(tmp_path))
        assert fresh.generation_count("n", FULL_MANY_B) == 1
        fresh.close()

    def test_runtime_append_flush_and_overlay_load(self, tmp_path):
        runtime = LineageRuntime()
        runtime._stores[("n", FULL_MANY_B)] = _store_from(_sink(10), FULL_MANY_B)
        runtime.flush_all(str(tmp_path))
        runtime2 = LineageRuntime()
        runtime2._stores[("n", FULL_MANY_B)] = _store_from(_sink(11), FULL_MANY_B)
        written = runtime2.flush_all(str(tmp_path), append=True)
        assert written > 0

        combined = _store_from(_sink(10), FULL_MANY_B)
        combined.ingest(_sink(11))
        baseline = _answers(combined, FULL_MANY_B, QUERY)

        fresh = LineageRuntime()
        assert fresh.load_all(str(tmp_path)) == 1
        assert fresh.generation_count("n", FULL_MANY_B) == 2
        assert fresh.lowered_ready("n", FULL_MANY_B)
        store = fresh.store_for("n", FULL_MANY_B)
        assert isinstance(store, OverlayStore)
        assert _answers(store, FULL_MANY_B, QUERY) == baseline
        # accounting: totals answer from the manifest, across generations
        assert fresh.total_disk_bytes() == sum(
            e.nbytes for e in fresh.catalog.entries()
        )
        fresh.close()


# -- compaction semantics ------------------------------------------------------


class TestCompaction:
    def _three_generation_dir(self, tmp_path, strategy=FULL_MANY_B):
        key = ("n", strategy)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), strategy)})
        catalog.close()
        for seed in (1, 2):
            catalog, _ = StoreCatalog.append(
                str(tmp_path), {key: _store_from(_sink(seed), strategy)}
            )
            catalog.close()
        combined = _store_from(_sink(0), strategy)
        combined.ingest(_sink(1))
        combined.ingest(_sink(2))
        return _answers(combined, strategy, QUERY)

    def test_compact_merges_reclaims_and_preserves(self, tmp_path):
        baseline = self._three_generation_dir(tmp_path)
        catalog = StoreCatalog.open(str(tmp_path))
        before = catalog.manifest_bytes("n", FULL_MANY_B)
        report = catalog.compact()
        assert [(n, g) for n, _, g in report.compacted] == [("n", 3)]
        assert report.ok and not report.skipped
        assert report.bytes_written > 0
        assert report.bytes_written + report.bytes_reclaimed == before
        assert catalog.generation_count("n", FULL_MANY_B) == 1
        assert not [f for f in os.listdir(tmp_path) if ".gen." in f]
        store = catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == baseline
        catalog.close()

    def test_compact_budget_leaves_rest_for_later(self, tmp_path):
        keys = [("a", FULL_MANY_B), ("b", FULL_MANY_B)]
        catalog, _ = StoreCatalog.write(
            str(tmp_path),
            {key: _store_from(_sink(i), FULL_MANY_B, node=key[0]) for i, key in enumerate(keys)},
        )
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path),
            {
                key: _store_from(_sink(i + 10), FULL_MANY_B, node=key[0])
                for i, key in enumerate(keys)
            },
        )
        report = catalog.compact(budget_bytes=1)  # the first candidate always runs
        assert len(report.compacted) == 1 and len(report.skipped) == 1
        assert not report.ok
        report2 = catalog.compact()
        assert len(report2.compacted) == 1 and report2.ok
        assert all(catalog.generation_count(n, s) == 1 for n, s in keys)
        catalog.close()

    def test_compact_filters_by_node(self, tmp_path):
        keys = [("a", FULL_MANY_B), ("b", FULL_MANY_B)]
        catalog, _ = StoreCatalog.write(
            str(tmp_path),
            {key: _store_from(_sink(i), FULL_MANY_B, node=key[0]) for i, key in enumerate(keys)},
        )
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path),
            {
                key: _store_from(_sink(i + 20), FULL_MANY_B, node=key[0])
                for i, key in enumerate(keys)
            },
        )
        report = catalog.compact(node="a")
        assert [n for n, _, _ in report.compacted] == ["a"]
        assert catalog.generation_count("a", FULL_MANY_B) == 1
        assert catalog.generation_count("b", FULL_MANY_B) == 2
        catalog.close()

    def test_pinned_reader_defers_unlink_until_release(self, tmp_path):
        """The compact-while-serving contract: a session pinned on the old
        generation set keeps serving it, and the superseded delta files are
        unlinked exactly when the last pin drops."""
        baseline = self._three_generation_dir(tmp_path)
        catalog = StoreCatalog.open(str(tmp_path))
        record = catalog.borrow("n", FULL_MANY_B)
        old_store = record.store
        gen_files = [f for f in os.listdir(tmp_path) if ".gen." in f]
        assert len(gen_files) == 2

        report = catalog.compact()
        assert report.compacted
        # the pinned reader still serves the old overlay, off files that are
        # still on disk
        assert _answers(old_store, FULL_MANY_B, QUERY) == baseline
        assert all((tmp_path / f).exists() for f in gen_files)
        # a new borrow sees the compacted store
        fresh = catalog.borrow("n", FULL_MANY_B)
        assert fresh.store is not old_store
        assert not isinstance(fresh.store, OverlayStore)
        assert _answers(fresh.store, FULL_MANY_B, QUERY) == baseline
        catalog.release(fresh)

        catalog.release(record)  # last pin drops -> deltas unlink
        assert not any((tmp_path / f).exists() for f in gen_files)
        catalog.close()

    def test_evicted_while_pinned_reader_also_defers_unlink(self, tmp_path):
        """A record the LRU evicted under a pin (lingering) is still a
        holder of the old generation set: compaction must not unlink its
        files until that last pin drops either."""
        baseline = self._three_generation_dir(tmp_path)
        catalog = StoreCatalog.open(str(tmp_path), memory_budget_bytes=1)
        record = catalog.borrow("n", FULL_MANY_B)
        # force the pinned record out of the cache: with a 1-byte budget,
        # releasing-and-reborrowing another key is unnecessary — a direct
        # eviction pass runs at every release; trigger it via a second
        # borrow/release cycle of the same key (hit keeps it), so evict by
        # hand through the private path the LRU uses
        with catalog._lock:
            catalog._open.pop(record.key)
            record.evicted = True
            catalog._lingering.append(record)
        gen_files = [f for f in os.listdir(tmp_path) if ".gen." in f]
        report = catalog.compact()
        assert report.compacted
        # the lingering pinned reader keeps its files...
        assert all((tmp_path / f).exists() for f in gen_files)
        assert _answers(record.store, FULL_MANY_B, QUERY) == baseline
        catalog.release(record)
        # ...until its pin drops
        assert not any((tmp_path / f).exists() for f in gen_files)
        catalog.close()

    def test_compacting_sharded_base_keeps_pinned_lazy_reader_alive(self, tmp_path):
        """A pinned reader of a *sharded* base may not have mapped every
        shard yet; compacting to a monolith must leave those shard files on
        disk until the pin drops — and the interim manifest keeps
        referencing them, so a crash in between quarantines nothing."""
        key = ("n", FULL_MANY_B)
        store = _store_from(_sink(0, n=60), FULL_MANY_B)
        catalog, _ = StoreCatalog.write(
            str(tmp_path), {key: store}, shard_threshold_bytes=512
        )
        entry = catalog.entry("n", FULL_MANY_B)
        catalog.close()
        assert len(entry.shards) >= 3, "base did not shard; lower the threshold"
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        combined = _store_from(_sink(0, n=60), FULL_MANY_B)
        combined.ingest(_sink(1))
        baseline = _answers(combined, FULL_MANY_B, QUERY)

        record = catalog.borrow("n", FULL_MANY_B)  # maps shard 0 only
        report = catalog.compact()  # merged base is monolithic
        assert report.compacted
        # every old shard file survives under the pin...
        assert all((tmp_path / shard).exists() for shard in entry.shards)
        # ...so the pinned reader's first (lazy, shard-mapping) scan works
        assert _answers(record.store, FULL_MANY_B, QUERY) == baseline
        catalog.release(record)
        # last pin dropped: the superseded shard files are reclaimed
        assert not any((tmp_path / shard).exists() for shard in entry.shards)
        fresh = catalog.open_store("n", FULL_MANY_B)
        assert _answers(fresh, FULL_MANY_B, QUERY) == baseline
        catalog.close()

    def test_serve_while_compacting_threads(self, tmp_path):
        """Readers hammer the key while the main thread appends and
        compacts in a loop; every answer must equal the (stable) union."""
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_MANY_B)})
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        combined = _store_from(_sink(0), FULL_MANY_B)
        combined.ingest(_sink(1))

        def answer_sets(store):
            # set-normalised: re-appending the same delta duplicates store
            # entries (a multiset the executor dedupes), but the cell *sets*
            # every query is built from must never waver
            matched, per = store.backward_full(QUERY)
            scan = store.scan_forward_full(QUERY, 0)
            return (
                matched.tolist(),
                [frozenset(p.tolist()) for p in per],
                frozenset(scan.tolist()),
            )

        baseline = answer_sets(combined)

        stop = threading.Event()
        failures: list = []

        def reader():
            while not stop.is_set():
                record = catalog.borrow("n", FULL_MANY_B)
                try:
                    got = answer_sets(record.store)
                finally:
                    catalog.release(record)
                if got != baseline:
                    failures.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(4):
                # re-appending the same delta keeps the union (and the
                # baseline) stable while still exercising append + compact
                catalog.append_stores({key: _store_from(_sink(1), FULL_MANY_B)})
                report = catalog.compact()
                assert report.compacted
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=JOIN_TIMEOUT)
        assert not failures
        assert not any(t.is_alive() for t in threads), "reader deadlocked"
        assert catalog.generation_count("n", FULL_MANY_B) == 1
        store = catalog.open_store("n", FULL_MANY_B)
        assert answer_sets(store) == baseline
        catalog.close()


# -- crash recovery ------------------------------------------------------------


class TestCrashRecovery:
    def test_interrupted_compaction_write_changes_nothing(self, tmp_path, monkeypatch):
        baseline = TestCompaction()._three_generation_dir(tmp_path)
        catalog = StoreCatalog.open(str(tmp_path))

        real_write = SegmentWriter.write

        def boom(self, path, stale_sink=None):
            raise RuntimeError("simulated crash mid-compaction write")

        monkeypatch.setattr(SegmentWriter, "write", boom)
        with pytest.raises(RuntimeError, match="simulated crash"):
            catalog.compact()
        monkeypatch.setattr(SegmentWriter, "write", real_write)
        catalog.close()

        # nothing moved: no tmp residue, all generations live, answers intact
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        recovery = recover_lineage(str(tmp_path))
        assert recovery.ok and not recovery.removed_stale
        assert recovery.catalog.generation_count("n", FULL_MANY_B) == 3
        store = recovery.catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == baseline
        recovery.catalog.close()

    def test_crash_after_manifest_swap_leaves_sweepable_residue(
        self, tmp_path, monkeypatch
    ):
        baseline = TestCompaction()._three_generation_dir(tmp_path)
        catalog = StoreCatalog.open(str(tmp_path))
        # simulate dying between the manifest swap and the deferred unlink
        monkeypatch.setattr(
            "repro.core.catalog.seglib.remove_segment", lambda path: []
        )
        catalog.compact()
        catalog.close()
        stale = [f for f in os.listdir(tmp_path) if ".gen." in f]
        assert len(stale) == 2  # merged but never unlinked

        recovery = recover_lineage(str(tmp_path))
        assert recovery.ok
        assert sorted(recovery.removed_stale) == sorted(stale)
        assert not [f for f in os.listdir(tmp_path) if ".gen." in f]
        store = recovery.catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == baseline
        recovery.catalog.close()

    def test_torn_generation_quarantined_older_ones_serve(self, tmp_path):
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_MANY_B)})
        catalog.close()
        base_only = _answers(_store_from(_sink(0), FULL_MANY_B), FULL_MANY_B, QUERY)
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        catalog.close()

        delta = generation_path(str(tmp_path / store_filename("n", FULL_MANY_B)), 1)
        with open(delta, "r+b") as fh:
            fh.seek(-4, os.SEEK_END)
            fh.write(b"\xff\xff\xff\xff")

        recovery = recover_lineage(str(tmp_path))
        assert len(recovery.quarantined) == 1
        fname, error = recovery.quarantined[0]
        assert ".gen.1." in fname and "generation 1" in str(error)
        assert os.path.exists(delta + QUARANTINE_SUFFIX)
        # the base generation survived and still answers
        assert recovery.catalog.generation_count("n", FULL_MANY_B) == 1
        store = recovery.catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == base_only
        recovery.catalog.close()
        # the quarantine persisted: a plain reload sees one generation
        fresh = StoreCatalog.open(str(tmp_path))
        assert fresh.generation_count("n", FULL_MANY_B) == 1
        fresh.close()

    def test_missing_generation_file_quarantined_not_raised(self, tmp_path):
        """The partial-delete regression: files deleted outright map to the
        quarantine path, exactly like checksum failures."""
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_MANY_B)})
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        catalog.close()
        os.remove(generation_path(str(tmp_path / store_filename("n", FULL_MANY_B)), 1))

        recovery = recover_lineage(str(tmp_path))  # must not raise
        assert len(recovery.quarantined) == 1
        assert isinstance(recovery.quarantined[0][1], StorageError)
        assert recovery.catalog.generation_count("n", FULL_MANY_B) == 1
        recovery.catalog.close()

    def test_missing_shard_quarantined_with_storage_error(self, tmp_path):
        """A store directory partially deleted (one shard gone, the rest
        healthy) quarantines the store with a StorageError — and the
        surviving shards are renamed aside, not abandoned."""
        key = ("n", FULL_MANY_B)
        store = _store_from(_sink(0, n=60), FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: store}, shard_threshold_bytes=512)
        entry = catalog.entry("n", FULL_MANY_B)
        catalog.close()
        assert len(entry.shards) >= 3, "store did not shard; lower the threshold"
        victim = tmp_path / entry.shards[2]
        os.remove(victim)

        with pytest.raises(StorageError):
            recover_lineage(str(tmp_path), strict=True)

        recovery = recover_lineage(str(tmp_path))  # must not raise
        assert len(recovery.quarantined) == 1
        assert isinstance(recovery.quarantined[0][1], StorageError)
        assert len(recovery.catalog) == 0
        for shard in entry.shards:
            path = tmp_path / shard
            assert not path.exists()
            if shard != entry.shards[2]:
                assert (tmp_path / (shard + QUARANTINE_SUFFIX)).exists()

    def test_missing_monolithic_segment_quarantined(self, tmp_path):
        key = ("n", FULL_ONE_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_ONE_B)})
        catalog.close()
        os.remove(tmp_path / store_filename("n", FULL_ONE_B))
        recovery = recover_lineage(str(tmp_path))  # must not raise
        assert len(recovery.quarantined) == 1
        assert isinstance(recovery.quarantined[0][1], StorageError)
        assert len(recovery.catalog) == 0
        recovery.catalog.close()

    def test_stale_residue_swept_even_when_base_generation_quarantined(self, tmp_path):
        """The sweep keys off (node, strategy), not off a surviving gen-0
        entry: losing the base must not orphan unreferenced delta files."""
        key = ("n", FULL_MANY_B)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: _store_from(_sink(0), FULL_MANY_B)})
        catalog.close()
        catalog, _ = StoreCatalog.append(
            str(tmp_path), {key: _store_from(_sink(1), FULL_MANY_B)}
        )
        catalog.close()
        base_path = str(tmp_path / store_filename("n", FULL_MANY_B))
        # unreferenced residue at gen 7, and a corrupt base generation
        _store_from(_sink(9), FULL_MANY_B).flush_segment(generation_path(base_path, 7))
        with open(base_path, "r+b") as fh:
            fh.seek(-4, os.SEEK_END)
            fh.write(b"\xff\xff\xff\xff")

        recovery = recover_lineage(str(tmp_path))
        assert len(recovery.quarantined) == 1  # the base only
        assert recovery.removed_stale == [
            os.path.basename(generation_path(base_path, 7))
        ]
        # the delta generation survived and still serves
        assert recovery.catalog.generation_count("n", FULL_MANY_B) == 1
        assert recovery.catalog.generations_for("n", FULL_MANY_B)[0].gen == 1
        store = recovery.catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == _answers(
            _store_from(_sink(1), FULL_MANY_B), FULL_MANY_B, QUERY
        )
        recovery.catalog.close()

    def test_generation_files_helper_sees_disk_state(self, tmp_path):
        base = str(tmp_path / "s.seg")
        _store_from(_sink(0), FULL_MANY_B).flush_segment(base)
        _store_from(_sink(1), FULL_MANY_B).flush_segment(generation_path(base, 2))
        on_disk = generation_files(base)
        assert sorted(on_disk) == [0, 2]
        assert segment_files(generation_path(base, 2)) == on_disk[2]


# -- facade + cost model -------------------------------------------------------


class TestFacadeAndCostModel:
    def _run(self, image, strategies=(FULL_ONE_B, FULL_MANY_B), versions=None):
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.set_strategy("spot", *strategies)
        sz.run({"img": image}, version_store=versions)
        return sz

    def test_flush_append_resume_compact(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((20, 24)))
        versions = VersionStore()
        sz = self._run(image, versions=versions)
        directory = str(tmp_path / "lineage")
        sz.flush_lineage(directory)
        baseline = sorted(
            map(tuple, sz.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )

        # a second identical run appended as a delta: the union is idempotent,
        # so every answer must stay the baseline through append AND compact
        sz2 = self._run(image)
        written = sz2.flush_lineage(directory, append=True)
        assert 0 < written < os.path.getsize(os.path.join(directory, "catalog.json")) + sum(
            os.path.getsize(os.path.join(directory, f)) for f in os.listdir(directory)
        )

        sz3 = SubZero(build_spot_spec(), enable_query_opt=False)
        sz3.resume(versions, wal=sz.wal, lineage_dir=directory)
        assert sz3.runtime.generation_count("spot", FULL_ONE_B) == 2
        got = sorted(
            map(tuple, sz3.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )
        assert got == baseline

        advice = sz3.compaction_advice()
        assert [(n, g) for n, _, g, _ in advice] == [("spot", 2), ("spot", 2)]
        assert all(penalty > 0 for *_, penalty in advice)

        report = sz3.compact_lineage()
        assert len(report.compacted) == 2
        assert sz3.runtime.generation_count("spot", FULL_ONE_B) == 1
        assert sz3.compaction_advice() == []
        got = sorted(
            map(tuple, sz3.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )
        assert got == baseline
        sz3.close()

    def test_payload_store_appends_and_serves_both_directions(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((20, 24)))
        versions = VersionStore()
        sz = self._run(image, strategies=(PAY_ONE_B,), versions=versions)
        directory = str(tmp_path / "pay")
        sz.flush_lineage(directory)
        back = sorted(
            map(tuple, sz.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )
        fwd = sorted(
            map(tuple, sz.forward_query([(5, 5), (2, 2)], ["spot"]).coords.tolist())
        )

        sz2 = self._run(image, strategies=(PAY_ONE_B,))
        sz2.flush_lineage(directory, append=True)

        sz3 = SubZero(build_spot_spec(), enable_query_opt=False)
        sz3.resume(versions, wal=sz.wal, lineage_dir=directory)
        assert sz3.runtime.generation_count("spot", PAY_ONE_B) == 2
        # backward: overlayed hash probes; forward: the merged payload columns
        assert sorted(
            map(tuple, sz3.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        ) == back
        assert sorted(
            map(tuple, sz3.forward_query([(5, 5), (2, 2)], ["spot"]).coords.tolist())
        ) == fwd
        sz3.compact_lineage()
        assert sorted(
            map(tuple, sz3.forward_query([(5, 5), (2, 2)], ["spot"]).coords.tolist())
        ) == fwd
        sz3.close()

    def test_overlay_accounting_sums_generations(self, tmp_path):
        key = ("n", PAY_ONE_B)
        a = make_store("n", PAY_ONE_B, SHAPE, (SHAPE,))
        sink = BufferSink()
        sink.add_pair(RegionPair(outcells=cells((1, 1), (1, 2)), payload=b"PP"))
        a.ingest(sink)
        b = make_store("n", PAY_ONE_B, SHAPE, (SHAPE,))
        sink = BufferSink()
        sink.add_pair(RegionPair(outcells=cells((4, 4)), payload=b"QQ"))
        b.ingest(sink)
        catalog, _ = StoreCatalog.write(str(tmp_path), {key: a})
        catalog.close()
        catalog, _ = StoreCatalog.append(str(tmp_path), {key: b})
        overlay = catalog.open_store("n", PAY_ONE_B)
        assert isinstance(overlay, OverlayStore)
        assert overlay.generations == 2
        assert overlay.n_entries == a.n_entries + b.n_entries
        keys, koff, vbuf, voff = overlay.payload_entries()
        assert koff.size - 1 == overlay.n_entries
        assert voff[-1] == len(vbuf)
        assert sorted(overlay.overridden_keys().tolist()) == sorted(
            np.unique(
                np.concatenate([a.overridden_keys(), b.overridden_keys()])
            ).tolist()
        )
        # the open record is charged the sum of the generations' segments
        assert catalog.stats()["resident_bytes"] == sum(
            e.nbytes for e in catalog.entries()
        )
        catalog.close()

    def test_costmodel_prices_overlay_amplification(self):
        stats = StatsCollector()
        model = CostModel(stats)
        base = model.query_seconds("n", FULL_ONE_B, True, 64, generations=1)
        amplified = model.query_seconds("n", FULL_ONE_B, True, 64, generations=3)
        assert amplified > base
        # matched accesses repeat their per-cell probes per generation, so
        # the matched-direction penalty dominates the mismatched one
        pen_matched = model.overlay_penalty_seconds("n", FULL_ONE_B, True, 64, 3)
        pen_scan = model.overlay_penalty_seconds("n", FULL_ONE_B, False, 64, 3)
        assert pen_matched > pen_scan > 0
        # strategies that never touch a store pay nothing
        assert model.overlay_penalty_seconds("n", BLACKBOX, True, 64, 3) == 0.0
        assert model.overlay_penalty_seconds("n", MAP, True, 64, 3) == 0.0
        assert model.overlay_penalty_seconds("n", FULL_ONE_B, True, 64, 1) == 0.0


# -- generation filters --------------------------------------------------------


def _strip_filters(store):
    """Disable the loaded filters of a store / every overlay generation, so
    the same mapped data answers with the pre-filter read-everything path."""
    gens = store._gens if isinstance(store, OverlayStore) else [store]
    for gen in gens:
        gen._filters = None


class TestGenerationFilters:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case_a=sinks(), case_b=sinks(), case_c=sinks())
    @settings(max_examples=8, deadline=None)
    def test_filters_are_exact_negative(
        self, strategy, case_a, case_b, case_c, tmp_path_factory
    ):
        """A filter ``False`` is a proof of absence, never a lost answer:
        every query through a filtered multi-generation overlay equals the
        same overlay with its filters stripped."""
        sink_a, q_a = case_a
        query = np.unique(np.concatenate([q_a, case_b[1], case_c[1]]))
        directory = str(tmp_path_factory.mktemp("filters"))
        key = ("n", strategy)
        catalog, _ = StoreCatalog.write(directory, {key: _store_from(sink_a, strategy)})
        catalog.close()
        for case in (case_b, case_c):
            catalog, _ = StoreCatalog.append(
                directory, {key: _store_from(case[0], strategy)}
            )
            catalog.close()

        catalog = StoreCatalog.open(directory)
        store = catalog.open_store("n", strategy)
        with_filters = _answers(store, strategy, query)
        _strip_filters(store)
        without_filters = _answers(store, strategy, query)
        assert with_filters == without_filters
        catalog.close()

    def test_twenty_generation_matched_query_probes_two(self, tmp_path):
        """The tentpole number: a matched backward query on a 20-generation
        store touches only the generations that can contain the key — the
        other 19 are rejected by their zone/bloom filters without a read."""
        shape = (16, 16)
        key = ("n", FULL_ONE_B)

        def owner(lo, hi):
            # one generation owning exactly the packed keys [lo, hi)
            packed = np.arange(lo, hi, dtype=np.int64)
            outs = np.stack(np.unravel_index(packed, shape), axis=1)
            sink = BufferSink()
            sink.add_elementwise(
                ElementwiseBatch(outcells=outs, incells=(outs.copy(),))
            )
            store = make_store("n", FULL_ONE_B, shape, (shape,))
            store.ingest(sink)
            return store

        catalog, _ = StoreCatalog.write(str(tmp_path), {key: owner(0, 8)})
        catalog.close()
        for g in range(1, 20):
            catalog, _ = StoreCatalog.append(
                str(tmp_path), {key: owner(8 * g, 8 * g + 8)}
            )
            catalog.close()

        catalog = StoreCatalog.open(str(tmp_path))
        assert catalog.generation_count("n", FULL_ONE_B) == 20
        assert catalog.filters_ready("n", FULL_ONE_B)
        store = catalog.open_store("n", FULL_ONE_B)
        q = np.arange(8 * 19, 8 * 19 + 8, dtype=np.int64)  # newest gen's keys
        matched, _per = store.backward_full(q)
        assert matched.all()
        stats = catalog.stats()
        assert stats["filter_probes"] == 20
        assert stats["filter_probes"] - stats["generations_skipped"] <= 2
        catalog.close()

    def test_segments_without_filters_serve_unconditionally(
        self, tmp_path, monkeypatch
    ):
        """Filters are optional sections: a segment without them (older
        writer) reports no decision and the overlay reads the generation —
        conservative, never wrong, zero probe counters."""
        baseline = TestCompaction()._three_generation_dir(tmp_path)
        monkeypatch.setattr(
            "repro.core.lineage_store.filterlib.load_filters", lambda seg: None
        )
        catalog = StoreCatalog.open(str(tmp_path))
        store = catalog.open_store("n", FULL_MANY_B)
        assert _answers(store, FULL_MANY_B, QUERY) == baseline
        stats = catalog.stats()
        assert stats["filter_probes"] == 0
        assert stats["generations_skipped"] == 0
        catalog.close()

    def test_costmodel_discounts_filtered_overlays(self):
        stats = StatsCollector()
        model = CostModel(stats)
        plain = model.overlay_penalty_seconds("n", FULL_ONE_B, True, 64, 8)
        filtered = model.overlay_penalty_seconds(
            "n", FULL_ONE_B, True, 64, 8, filtered=True
        )
        # filters shrink the matched repeat but never erase the penalty:
        # compaction advice keeps firing on filtered overlays too
        assert 0 < filtered < plain
        # the mismatched (scan) direction gains nothing from key filters
        scan = model.overlay_penalty_seconds("n", FULL_ONE_B, False, 64, 8)
        scan_f = model.overlay_penalty_seconds(
            "n", FULL_ONE_B, False, 64, 8, filtered=True
        )
        assert scan == scan_f


# -- autonomous background maintenance -----------------------------------------


class TestAutonomousMaintenance:
    def _resumed(self, tmp_path, rng, n_appends=3):
        """A SubZero resumed over a (1 + n_appends)-generation catalog."""
        image = SciArray.from_numpy(rng.random((20, 24)))
        versions = VersionStore()
        sz = SubZero(build_spot_spec(), enable_query_opt=False)
        sz.set_strategy("spot", FULL_ONE_B, FULL_MANY_B)
        sz.run({"img": image}, version_store=versions)
        directory = str(tmp_path / "lineage")
        sz.flush_lineage(directory)
        wal = sz.wal
        for _ in range(n_appends):
            again = SubZero(build_spot_spec(), enable_query_opt=False)
            again.set_strategy("spot", FULL_ONE_B, FULL_MANY_B)
            again.run({"img": image})
            again.flush_lineage(directory, append=True)
        resumed = SubZero(build_spot_spec(), enable_query_opt=False)
        resumed.resume(versions, wal=wal, lineage_dir=directory)
        return resumed

    def test_serve_compacts_in_background_without_manual_compact(
        self, tmp_path, rng
    ):
        sz = self._resumed(tmp_path, rng)
        assert sz.runtime.generation_count("spot", FULL_ONE_B) == 4
        reqs = [QueryRequest.backward([(3, 3), (8, 9)], ["spot"])]
        baseline = sorted(map(tuple, sz.serve(reqs)[0].coords.tolist()))

        # serve() started the maintenance worker; it must drain the advice
        # to empty on its own — zero manual compact_lineage() calls
        deadline = time.monotonic() + JOIN_TIMEOUT
        while sz.compaction_advice() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert sz.compaction_advice() == []
        assert sz.runtime.generation_count("spot", FULL_ONE_B) == 1
        assert sz.stats.maintenance["compactions_run"] >= 1
        assert sz.stats.maintenance["bytes_merged"] > 0
        assert sz.stats.maintenance["maintenance_seconds"] > 0
        assert sz.runtime.serving_stats()["compactions_run"] >= 1

        # answers through the compacted store stay the pre-compaction union
        assert sorted(map(tuple, sz.serve(reqs)[0].coords.tolist())) == baseline
        sz.close()

    def test_close_joins_active_budgeted_compact(self, tmp_path, rng, monkeypatch):
        """The shutdown race: close() arriving while a budgeted compaction
        slice is mid-write must wait for the slice (atomic per key, no safe
        midpoint), then shut down cleanly."""
        sz = self._resumed(tmp_path, rng)
        started = threading.Event()
        real_compact = StoreCatalog.compact

        def slow(self, *args, **kwargs):
            started.set()
            time.sleep(0.3)
            return real_compact(self, *args, **kwargs)

        monkeypatch.setattr(StoreCatalog, "compact", slow)
        sz.start_maintenance(interval_s=0.01)
        assert started.wait(JOIN_TIMEOUT)
        sz.close()  # races the sleeping slice; must join without raising
        assert sz.stats.maintenance["compactions_run"] >= 1
        sz.close()  # idempotent

    def test_maintenance_failure_parks_and_reraises_once(
        self, tmp_path, rng, monkeypatch
    ):
        """A compaction crash mid-maintenance leaves the generation set
        untouched (filters from the old generations keep serving) and the
        failure surfaces exactly once, at close()."""
        sz = self._resumed(tmp_path, rng)
        baseline = sorted(
            map(tuple, sz.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )

        def boom(self, *args, **kwargs):
            raise StorageError("simulated crash mid-maintenance")

        monkeypatch.setattr(StoreCatalog, "compact", boom)
        worker = sz.start_maintenance(interval_s=0.01)
        deadline = time.monotonic() + JOIN_TIMEOUT
        while worker.running and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not worker.running  # parked after the failure, not retrying

        # nothing was compacted or torn: every generation keeps serving,
        # filters intact
        assert sz.runtime.generation_count("spot", FULL_ONE_B) == 4
        assert sz.runtime.filters_ready("spot", FULL_ONE_B)
        got = sorted(
            map(tuple, sz.backward_query([(3, 3), (8, 9)], ["spot"]).coords.tolist())
        )
        assert got == baseline

        with pytest.raises(StorageError, match="simulated crash"):
            sz.close()
        sz.close()  # the captured failure re-raises exactly once
