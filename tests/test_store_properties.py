"""Property tests: every store layout is a faithful index of random sinks.

For arbitrary collections of region pairs, the answer any layout gives must
equal the brute-force join over the raw pairs — backward, forward, matched
or mismatched orientation.  This is the encoder/store analogue of the
strategy-equivalence integration tests, at a much higher fuzzing rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import coords as C
from repro.core.lineage_store import make_store
from repro.core.model import BufferSink, ElementwiseBatch, RegionPair
from repro.core.modes import (
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
)

SHAPE = (9, 11)
SIZE = SHAPE[0] * SHAPE[1]


@st.composite
def sinks(draw):
    """A random mix of general pairs and an elementwise batch."""
    sink = BufferSink()
    pairs = []
    for _ in range(draw(st.integers(0, 6))):
        n_out = draw(st.integers(1, 4))
        n_in = draw(st.integers(1, 5))
        outs = draw(
            st.lists(st.integers(0, SIZE - 1), min_size=n_out, max_size=n_out)
        )
        ins = draw(st.lists(st.integers(0, SIZE - 1), min_size=n_in, max_size=n_in))
        outs = np.unique(np.asarray(outs, dtype=np.int64))
        ins = np.unique(np.asarray(ins, dtype=np.int64))
        pairs.append((outs, ins))
        sink.add_pair(
            RegionPair(
                outcells=C.unpack_coords(outs, SHAPE),
                incells=(C.unpack_coords(ins, SHAPE),),
            )
        )
    n_elem = draw(st.integers(0, 8))
    if n_elem:
        eouts = draw(
            st.lists(st.integers(0, SIZE - 1), min_size=n_elem, max_size=n_elem)
        )
        eins = draw(
            st.lists(st.integers(0, SIZE - 1), min_size=n_elem, max_size=n_elem)
        )
        eouts = np.asarray(eouts, dtype=np.int64)
        eins = np.asarray(eins, dtype=np.int64)
        sink.add_elementwise(
            ElementwiseBatch(
                outcells=C.unpack_coords(eouts, SHAPE),
                incells=(C.unpack_coords(eins, SHAPE),),
            )
        )
        for o, i in zip(eouts, eins):
            pairs.append((np.asarray([o]), np.asarray([i])))
    query = draw(st.lists(st.integers(0, SIZE - 1), min_size=1, max_size=12))
    return sink, pairs, np.unique(np.asarray(query, dtype=np.int64))


def brute_backward(pairs, query):
    hit, result = set(), set()
    qset = set(query.tolist())
    for outs, ins in pairs:
        touched = qset & set(outs.tolist())
        if touched:
            hit |= touched
            result |= set(ins.tolist())
    return hit, result


def brute_forward(pairs, query):
    qset = set(query.tolist())
    result = set()
    for outs, ins in pairs:
        if qset & set(ins.tolist()):
            result |= set(outs.tolist())
    return result


@pytest.mark.parametrize("strategy", [FULL_ONE_B, FULL_MANY_B], ids=lambda s: s.label)
class TestBackwardOrientedStores:
    @given(case=sinks())
    @settings(max_examples=60, deadline=None)
    def test_backward_matches_brute_force(self, strategy, case):
        sink, pairs, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        matched, per_input = store.backward_full(query)
        want_hit, want = brute_backward(pairs, query)
        assert set(query[matched].tolist()) == want_hit
        assert set(per_input[0].tolist()) == want

    @given(case=sinks())
    @settings(max_examples=40, deadline=None)
    def test_forward_scan_matches_brute_force(self, strategy, case):
        sink, pairs, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        outs = store.scan_forward_full(query, 0)
        assert set(outs.tolist()) == brute_forward(pairs, query)


@pytest.mark.parametrize("strategy", [FULL_ONE_F, FULL_MANY_F], ids=lambda s: s.label)
class TestForwardOrientedStores:
    @given(case=sinks())
    @settings(max_examples=60, deadline=None)
    def test_forward_matches_brute_force(self, strategy, case):
        sink, pairs, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        outs = store.forward_full(query, 0)
        assert set(outs.tolist()) == brute_forward(pairs, query)

    @given(case=sinks())
    @settings(max_examples=40, deadline=None)
    def test_backward_scan_matches_brute_force(self, strategy, case):
        sink, pairs, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        matched, per_input = store.scan_backward_full(query)
        want_hit, want = brute_backward(pairs, query)
        assert set(query[matched].tolist()) == want_hit
        assert set(per_input[0].tolist()) == want


class TestMultiInputStores:
    @given(case=sinks(), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_two_input_backward(self, case, seed):
        """Pairs over two inputs keep their per-input cell sets separate."""
        sink, pairs, query = case
        rng = np.random.default_rng(seed)
        two = BufferSink()
        expected = [[], []]
        for outs, ins in pairs:
            ins2 = rng.integers(0, SIZE, size=max(1, ins.size // 2))
            two.add_pair(
                RegionPair(
                    outcells=C.unpack_coords(outs, SHAPE),
                    incells=(
                        C.unpack_coords(ins, SHAPE),
                        C.unpack_coords(np.unique(ins2), SHAPE),
                    ),
                )
            )
            expected[0].append((outs, ins))
            expected[1].append((outs, np.unique(ins2)))
        store = make_store("n", FULL_ONE_B, SHAPE, (SHAPE, SHAPE))
        store.ingest(two)
        _, per_input = store.backward_full(query)
        for idx in range(2):
            _, want = brute_backward(expected[idx], query)
            assert set(per_input[idx].tolist()) == want
