"""Tests for repro.analysis: the SZ rule catalog, the suppression and
baseline machinery, and the runtime lock-order validator."""

from __future__ import annotations

import json
import os
import textwrap
import threading

import pytest

from repro.analysis import lockcheck
from repro.analysis.engine import Baseline, ModuleContext, format_report, run
from repro.analysis.rules import ALL_RULES, rule_by_id

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _ctx(source: str, relpath: str = "core/mod.py") -> ModuleContext:
    return ModuleContext(relpath, relpath, textwrap.dedent(source))


def _findings(rule_id: str, source: str, relpath: str = "core/mod.py"):
    """Run one rule over a source snippet, honoring inline suppressions."""
    ctx = _ctx(source, relpath)
    rule = rule_by_id(rule_id)
    return [f for f in rule.check(ctx) if not ctx.is_suppressed(f)]


# -- SZ001: acquire/borrow released on all paths -------------------------------


class TestSZ001:
    def test_fires_on_unreleased_local(self):
        found = _findings(
            "SZ001",
            """
            def leak(catalog):
                rec = catalog.borrow("n", "s")
                return 1
            """,
        )
        assert len(found) == 1
        assert found[0].symbol == "leak"

    def test_fires_on_bare_call(self):
        found = _findings(
            "SZ001",
            """
            def leak(seg):
                seg.acquire()
            """,
        )
        assert len(found) == 1

    def test_quiet_when_released_in_finally(self):
        assert not _findings(
            "SZ001",
            """
            def ok(catalog):
                rec = catalog.borrow("n", "s")
                try:
                    return rec
                finally:
                    catalog.release(rec)
            """,
        )

    def test_quiet_when_result_escapes(self):
        # the QuerySession pattern: the record is stowed for a later release
        assert not _findings(
            "SZ001",
            """
            def ok(self, catalog):
                rec = catalog.borrow("n", "s")
                self._borrowed.append(("n", rec))
            """,
        )

    def test_quiet_inside_acquisition_api(self):
        assert not _findings(
            "SZ001",
            """
            def acquire(self):
                return self._seg.acquire()
            """,
        )


# -- SZ002: no blocking I/O under a serving-path lock --------------------------


class TestSZ002:
    def test_fires_on_direct_io_under_lock(self):
        found = _findings(
            "SZ002",
            """
            class C:
                def __init__(self):
                    self._lock = make_lock("c")
                def bad(self):
                    with self._lock:
                        open("f", "rb")
            """,
        )
        assert len(found) == 1
        assert "open" in found[0].message

    def test_fires_transitively_through_local_call(self):
        found = _findings(
            "SZ002",
            """
            class C:
                def __init__(self):
                    self._lock = make_lock("c")
                def _helper(self):
                    os.replace("a", "b")
                def bad(self):
                    with self._lock:
                        self._helper()
            """,
        )
        assert len(found) == 1
        assert "_helper" in found[0].message

    def test_quiet_when_io_runs_outside_lock(self):
        assert not _findings(
            "SZ002",
            """
            class C:
                def __init__(self):
                    self._lock = make_lock("c")
                def ok(self):
                    with self._lock:
                        paths = list(self._stale)
                    for p in paths:
                        os.remove(p)
            """,
        )

    def test_quiet_on_non_lock_with(self):
        assert not _findings(
            "SZ002",
            """
            class C:
                def ok(self):
                    with self._guard:
                        open("f", "rb")
            """,
        )


# -- SZ003: tmp writes clean up on failure -------------------------------------


class TestSZ003:
    def test_fires_on_unguarded_tmp_write(self):
        found = _findings(
            "SZ003",
            """
            def w(path):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write("x")
                os.replace(tmp, path)
            """,
        )
        assert len(found) == 1

    def test_quiet_with_cleanup_handler(self):
        assert not _findings(
            "SZ003",
            """
            def w(path):
                tmp = path + ".tmp"
                try:
                    with open(tmp, "w") as fh:
                        fh.write("x")
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
                    raise
            """,
        )

    def test_quiet_on_non_tmp_write(self):
        assert not _findings(
            "SZ003",
            """
            def w(path):
                with open(path, "w") as fh:
                    fh.write("x")
            """,
        )


# -- SZ004: storage never leaks raw OSError ------------------------------------


class TestSZ004:
    def test_fires_on_unwrapped_open(self):
        found = _findings(
            "SZ004",
            """
            def load(path):
                with open(path, "rb") as fh:
                    return fh.read()
            """,
            relpath="storage/x.py",
        )
        assert len(found) == 1

    def test_quiet_when_wrapped_in_storage_error(self):
        assert not _findings(
            "SZ004",
            """
            def load(path):
                try:
                    with open(path, "rb") as fh:
                        return fh.read()
                except OSError as exc:
                    raise StorageError(str(exc)) from exc
            """,
            relpath="storage/x.py",
        )

    def test_quiet_when_deliberately_swallowed(self):
        assert not _findings(
            "SZ004",
            """
            def probe(path):
                try:
                    return os.path.getsize(path)
                except OSError:
                    return 0
            """,
            relpath="storage/x.py",
        )

    def test_fires_when_handler_only_reraises_raw(self):
        found = _findings(
            "SZ004",
            """
            def load(path):
                try:
                    with open(path, "rb") as fh:
                        return fh.read()
                except OSError:
                    raise
            """,
            relpath="storage/x.py",
        )
        assert len(found) == 1


# -- SZ005: locks come from the factory ----------------------------------------


class TestSZ005:
    def test_fires_on_raw_threading_lock(self):
        found = _findings(
            "SZ005",
            """
            import threading
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
        )
        assert len(found) == 1
        assert "make_lock" in found[0].message

    def test_fires_on_bare_imported_rlock(self):
        found = _findings(
            "SZ005",
            """
            from threading import RLock
            lock = RLock()
            """,
        )
        assert len(found) == 1
        assert "make_rlock" in found[0].message

    def test_quiet_on_factory_locks(self):
        assert not _findings(
            "SZ005",
            """
            from repro.analysis import lockcheck
            class C:
                def __init__(self):
                    self._lock = lockcheck.make_lock("c")
                    self._rlock = lockcheck.make_rlock("c.r")
            """,
        )


# -- SZ006: public mutators hold the owning lock -------------------------------


class TestSZ006:
    SRC_BAD = """
    class C:
        def __init__(self):
            self._lock = make_lock("c")
            self._items = []
        def add(self, x):
            self._items.append(x)
    """

    def test_fires_on_unlocked_public_mutator(self):
        found = _findings("SZ006", self.SRC_BAD)
        assert len(found) == 1
        assert "C.add" in found[0].message

    def test_quiet_when_mutation_is_locked(self):
        assert not _findings(
            "SZ006",
            """
            class C:
                def __init__(self):
                    self._lock = make_lock("c")
                    self._items = []
                def add(self, x):
                    with self._lock:
                        self._items.append(x)
            """,
        )

    def test_quiet_on_private_methods_and_lockless_classes(self):
        assert not _findings(
            "SZ006",
            """
            class C:
                def __init__(self):
                    self._lock = make_lock("c")
                    self._items = []
                def _add_locked(self, x):
                    self._items.append(x)
            class NoLock:
                def add(self, x):
                    self._items.append(x)
            """,
        )


# -- suppressions ---------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression_with_reason(self):
        assert not _findings(
            "SZ005",
            """
            import threading
            lock = threading.Lock()  # szlint: ignore[SZ005] -- test fixture
            """,
        )

    def test_comment_line_above_covers_next_line(self):
        assert not _findings(
            "SZ005",
            """
            import threading
            # szlint: ignore[SZ005] -- test fixture
            lock = threading.Lock()
            """,
        )

    def test_suppression_for_other_rule_does_not_silence(self):
        found = _findings(
            "SZ005",
            """
            import threading
            lock = threading.Lock()  # szlint: ignore[SZ001] -- wrong rule
            """,
        )
        assert len(found) == 1

    def test_missing_reason_is_a_finding_and_does_not_suppress(self):
        ctx = _ctx(
            """
            import threading
            lock = threading.Lock()  # szlint: ignore[SZ005]
            """
        )
        meta = ctx.suppression_findings()
        assert len(meta) == 1 and meta[0].rule == "SZ000"
        rule = rule_by_id("SZ005")
        found = [f for f in rule.check(ctx) if not ctx.is_suppressed(f)]
        assert len(found) == 1  # reason-less suppressions are inert

    def test_docstring_mention_is_inert(self):
        ctx = _ctx(
            '''
            def f():
                """Write `# szlint: ignore[SZ001] -- reason` to suppress."""
            '''
        )
        assert not ctx.suppressions
        assert not ctx.suppression_findings()


# -- engine + baseline -----------------------------------------------------------


class TestEngineAndBaseline:
    def _write(self, tmp_path, relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return str(path)

    def test_run_reports_and_baseline_round_trip(self, tmp_path):
        self._write(
            tmp_path,
            "core/x.py",
            """
            import threading
            lock = threading.Lock()
            """,
        )
        report = run([str(tmp_path)])
        assert not report.ok
        assert [f.rule for f in report.findings] == ["SZ005"]

        # round-trip: write the baseline, justify it, re-run — clean
        baseline = Baseline.from_findings(report.findings)
        for key in baseline.entries:
            baseline.entries[key] = "fixture"
        bpath = str(tmp_path / "baseline.json")
        baseline.save(bpath)
        loaded = Baseline.load(bpath)
        report2 = run([str(tmp_path)], baseline=loaded)
        assert report2.ok
        assert len(report2.baselined) == 1
        assert not report2.stale_baseline

    def test_baseline_rejects_missing_justification(self, tmp_path):
        bpath = tmp_path / "baseline.json"
        bpath.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "SZ005", "path": "core/x.py", "symbol": "<module>"}
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(bpath))

    def test_stale_baseline_entries_are_reported(self, tmp_path):
        self._write(tmp_path, "core/x.py", "x = 1\n")
        baseline = Baseline(
            {("SZ005", "core/x.py", "<module>"): "fixed long ago"}
        )
        report = run([str(tmp_path)], baseline=baseline)
        assert report.ok
        assert report.stale_baseline == [("SZ005", "core/x.py", "<module>")]

    def test_parse_error_fails_the_run(self, tmp_path):
        self._write(tmp_path, "broken.py", "def f(:\n")
        report = run([str(tmp_path)])
        assert not report.ok and report.errors

    def test_output_formats(self, tmp_path):
        self._write(
            tmp_path,
            "core/x.py",
            """
            import threading
            lock = threading.Lock()
            """,
        )
        report = run([str(tmp_path)])
        text = format_report(report, "text")
        assert "SZ005" in text and "FAIL" in text
        gh = format_report(report, "github")
        assert "::error file=core/x.py" in gh and "title=SZ005" in gh
        payload = json.loads(format_report(report, "json"))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "SZ005"

    def test_repo_is_clean_under_committed_baseline(self):
        """The CI gate, as a test: the package passes its own linter."""
        baseline = Baseline.load(os.path.join(REPO_ROOT, "analysis-baseline.json"))
        report = run(
            [os.path.join(REPO_ROOT, "src", "repro")], baseline=baseline
        )
        assert report.ok, format_report(report, "text")
        assert not report.stale_baseline

    def test_every_rule_has_id_title_rationale(self):
        ids = [rule.id for rule in ALL_RULES]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for rule in ALL_RULES:
            assert rule.id and rule.title and rule.rationale


# -- lockcheck: the runtime half -------------------------------------------------


@pytest.fixture
def checking():
    """Enable instrumentation for the test, restore prior state after."""
    was_enabled = lockcheck.enabled()
    lockcheck.reset()
    lockcheck.enable()
    try:
        yield
    finally:
        if was_enabled:
            lockcheck.enable()  # restore raise-on-cycle default
        else:
            lockcheck.disable()
        lockcheck.reset()


class TestLockCheck:
    def test_disabled_factory_returns_plain_locks(self):
        if lockcheck.enabled():
            pytest.skip("REPRO_LOCKCHECK is on for this run")
        assert isinstance(lockcheck.make_lock("t.plain"), type(threading.Lock()))
        assert not isinstance(
            lockcheck.make_rlock("t.plain.r"), lockcheck.CheckedLock
        )

    def test_inverted_lock_pair_raises(self, checking):
        a = lockcheck.make_lock("t.a")
        b = lockcheck.make_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(lockcheck.LockOrderError, match="t.a -> t.b"):
                a.acquire()
        assert lockcheck.stats()["lockcheck_cycles"] == 1
        # the failed acquisition must not leave the lock held
        assert a.acquire(blocking=False)
        a.release()

    def test_consistent_order_is_quiet(self, checking):
        a = lockcheck.make_lock("t.a")
        b = lockcheck.make_lock("t.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        lockcheck.registry.check()  # no cycles
        stats = lockcheck.stats()
        assert stats["lockcheck_cycles"] == 0
        assert stats["lockcheck_max_held"] == 2
        assert stats["lockcheck_locks"] == 2

    def test_record_only_mode_collects_without_raising(self, checking):
        lockcheck.enable(record_only=True)
        a = lockcheck.make_lock("t.a")
        b = lockcheck.make_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with a:  # inverted: recorded, not raised
                pass
        cycles = lockcheck.registry.cycles()
        assert cycles and set(cycles[0]) == {"t.a", "t.b"}
        with pytest.raises(lockcheck.LockOrderError):
            lockcheck.registry.check()

    def test_same_name_two_instances_is_a_cycle(self, checking):
        # two locks sharing a role name taken nested = instance-order hazard
        first = lockcheck.make_lock("t.same")
        second = lockcheck.make_lock("t.same")
        with first:
            with pytest.raises(lockcheck.LockOrderError):
                second.acquire()

    def test_rlock_reentry_records_no_edge(self, checking):
        r = lockcheck.make_rlock("t.r")
        with r:
            with r:
                assert lockcheck.held_locks() == ("t.r",)
            assert lockcheck.held_locks() == ("t.r",)
        assert lockcheck.held_locks() == ()
        assert ("t.r", "t.r") not in lockcheck.registry.edges()

    def test_note_io_records_held_locks(self, checking):
        a = lockcheck.make_lock("t.io")
        lockcheck.note_io("outside")  # no lock held: not an event
        with a:
            lockcheck.note_io("inside")
        events = lockcheck.registry.held_io_events()
        assert events == [("inside", ("t.io",))]
        assert lockcheck.stats()["lockcheck_held_io"] == 1

    def test_serving_stats_exposes_lockcheck_counters(self):
        from repro.core.runtime import LineageRuntime

        stats = LineageRuntime().serving_stats()
        for key in (
            "lockcheck_locks",
            "lockcheck_max_held",
            "lockcheck_cycles",
            "lockcheck_held_io",
        ):
            assert key in stats
