"""Unit tests for workflow specs, execution, instances, and the WAL hookup."""

import numpy as np
import pytest

from repro import SciArray, WorkflowSpec, ops
from repro.core.runtime import LineageRuntime
from repro.errors import QueryError, WorkflowError
from repro.core.model import QueryStep
from repro.storage.wal import WriteAheadLog
from repro.workflow.executor import execute_workflow


def tiny_spec():
    spec = WorkflowSpec(name="tiny")
    spec.add_source("a")
    spec.add_node("double", ops.Scale(2.0), ["a"])
    spec.add_node("mean", ops.GlobalMean(), ["double"])
    spec.add_node("centered", ops.BroadcastSubtract(), [["double"], ["mean"]][0] + ["mean"])
    return spec


class TestSpecBuilder:
    def test_duplicate_names_rejected(self):
        spec = WorkflowSpec()
        spec.add_source("a")
        with pytest.raises(WorkflowError):
            spec.add_source("a")
        spec.add_node("n", ops.Scale(1.0), ["a"])
        with pytest.raises(WorkflowError):
            spec.add_node("n", ops.Scale(1.0), ["a"])
        with pytest.raises(WorkflowError):
            spec.add_source("n")

    def test_unknown_input_rejected(self):
        spec = WorkflowSpec()
        spec.add_source("a")
        with pytest.raises(WorkflowError):
            spec.add_node("n", ops.Scale(1.0), ["missing"])

    def test_arity_checked(self):
        spec = WorkflowSpec()
        spec.add_source("a")
        with pytest.raises(WorkflowError):
            spec.add_node("n", ops.Add(), ["a"])

    def test_operator_instance_reuse_rejected(self):
        spec = WorkflowSpec()
        spec.add_source("a")
        op = ops.Scale(1.0)
        spec.add_node("n1", op, ["a"])
        with pytest.raises(WorkflowError):
            spec.add_node("n2", op, ["a"])

    def test_topo_order_and_sinks(self):
        spec = tiny_spec()
        order = spec.topo_order()
        assert order.index("double") < order.index("mean") < order.index("centered")
        assert spec.sinks() == ["centered"]

    def test_producer_and_consumers(self):
        spec = tiny_spec()
        assert spec.producer("centered", 1) == "mean"
        assert ("mean", 0) in spec.consumers("double")
        with pytest.raises(WorkflowError):
            spec.producer("centered", 5)

    def test_validate_empty(self):
        with pytest.raises(WorkflowError):
            WorkflowSpec().validate()

    def test_string_input_shorthand(self):
        spec = WorkflowSpec()
        spec.add_source("a")
        spec.add_node("n", ops.Scale(1.0), "a")
        assert spec.node("n").inputs == ("a",)


class TestExecution:
    def test_end_to_end_values(self):
        spec = tiny_spec()
        data = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        instance = execute_workflow(spec, {"a": SciArray.from_numpy(data)})
        doubled = data * 2
        expected = doubled - doubled.mean()
        assert np.allclose(instance.output_array("centered").values(), expected)

    def test_missing_input(self):
        with pytest.raises(WorkflowError):
            execute_workflow(tiny_spec(), {})

    def test_extra_input(self):
        spec = tiny_spec()
        arrays = {
            "a": SciArray.from_numpy(np.ones((2, 2))),
            "zzz": SciArray.from_numpy(np.ones((2, 2))),
        }
        with pytest.raises(WorkflowError):
            execute_workflow(spec, arrays)

    def test_versions_are_persisted(self):
        spec = tiny_spec()
        instance = execute_workflow(spec, {"a": SciArray.from_numpy(np.ones((2, 2)))})
        # 1 source + 3 operator outputs
        assert len(instance.versions) == 4
        execution = instance.executions["centered"]
        assert len(execution.input_versions) == 2

    def test_wal_written_per_node(self):
        spec = tiny_spec()
        wal = WriteAheadLog()
        execute_workflow(spec, {"a": SciArray.from_numpy(np.ones((2, 2)))}, wal=wal)
        assert [r.node for r in wal] == spec.topo_order()

    def test_stats_recorded(self):
        spec = tiny_spec()
        runtime = LineageRuntime()
        execute_workflow(
            spec, {"a": SciArray.from_numpy(np.ones((2, 2)))}, runtime=runtime
        )
        stats = runtime.stats.get("double")
        assert stats.output_size == 4
        assert stats.input_sizes == (4,)

    def test_input_arrays_accessible(self):
        spec = tiny_spec()
        instance = execute_workflow(spec, {"a": SciArray.from_numpy(np.ones((2, 2)))})
        arrays = instance.input_arrays("centered")
        assert arrays[0].shape == (2, 2)
        assert arrays[1].shape == (1,)

    def test_array_of_source_or_node(self):
        spec = tiny_spec()
        instance = execute_workflow(spec, {"a": SciArray.from_numpy(np.ones((2, 2)))})
        assert instance.array_of("a").shape == (2, 2)
        assert instance.array_of("mean").shape == (1,)
        with pytest.raises(WorkflowError):
            instance.array_of("nope")


class TestPathValidation:
    @pytest.fixture
    def instance(self):
        return execute_workflow(
            tiny_spec(), {"a": SciArray.from_numpy(np.ones((2, 2)))}
        )

    def test_backward_path_ok(self, instance):
        instance.validate_backward_path(
            [QueryStep("centered", 0), QueryStep("double", 0)]
        )

    def test_backward_path_broken(self, instance):
        with pytest.raises(QueryError):
            instance.validate_backward_path(
                [QueryStep("centered", 0), QueryStep("mean", 0)]
            )

    def test_backward_path_via_input_index(self, instance):
        instance.validate_backward_path(
            [QueryStep("centered", 1), QueryStep("mean", 0), QueryStep("double", 0)]
        )

    def test_forward_path_ok(self, instance):
        instance.validate_forward_path(
            [QueryStep("double", 0), QueryStep("mean", 0), QueryStep("centered", 1)]
        )

    def test_forward_path_broken(self, instance):
        with pytest.raises(QueryError):
            instance.validate_forward_path(
                [QueryStep("mean", 0), QueryStep("double", 0)]
            )

    def test_unknown_node(self, instance):
        with pytest.raises(QueryError):
            instance.validate_backward_path([QueryStep("ghost", 0)])

    def test_bad_input_index(self, instance):
        with pytest.raises(QueryError):
            instance.validate_backward_path([QueryStep("centered", 7)])
