"""Unit + property tests for the lineage codec subsystem.

Covers: per-codec round-trips and exact size prediction, smallest-codec
selection (including the legacy-stable singleton/empty layouts), the
decode-free probes (``contains_any`` / ``intersect`` / ``decoded_bounds`` /
``skip_cells``) against decode-based references, old-format compatibility
with byte strings captured from the pre-codec encoder, and adversarial
inputs (duplicates, negatives, full-int64 spans, truncation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import codecs
from repro.storage.codecs import BITMAP, DELTA, INTERVAL, RAW

ALL_CODECS = (DELTA, INTERVAL, BITMAP, RAW)

int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def arr_of(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


@st.composite
def cell_sets(draw):
    """Mixed workload: scattered, run-heavy, dense-ragged, and extreme sets."""
    kind = draw(st.sampled_from(["scattered", "runs", "dense", "extreme"]))
    if kind == "scattered":
        values = draw(st.lists(st.integers(-(2**40), 2**40), max_size=120))
        return arr_of(values)
    if kind == "runs":
        n_runs = draw(st.integers(1, 6))
        parts, cursor = [], draw(st.integers(-(2**30), 2**30))
        for _ in range(n_runs):
            cursor += draw(st.integers(2, 50))
            length = draw(st.integers(1, 60))
            parts.append(np.arange(cursor, cursor + length, dtype=np.int64))
            cursor += length
        return np.concatenate(parts)
    if kind == "dense":
        # ragged dense mask: ~half the positions of a short span, ascending
        base = draw(st.integers(-(2**40), 2**40))
        span = draw(st.integers(2, 400))
        offsets = draw(
            st.lists(st.integers(0, span - 1), min_size=1, max_size=span, unique=True)
        )
        return base + np.sort(arr_of(offsets))
    values = draw(st.lists(int64s, max_size=10))
    return arr_of(values)


class TestSelection:
    def test_empty_and_singleton_keep_legacy_layout(self):
        # the 3-byte empty and 12-byte singleton delta layouts are relied
        # upon by encode_singleton_int_arrays and old store files
        assert codecs.encode_cells(arr_of([])) == bytes.fromhex("490000")
        assert (
            codecs.encode_cells(arr_of([12345]))
            == bytes.fromhex("490101013930000000000000")
        )

    def test_contiguous_selects_interval(self):
        buf = codecs.encode_cells(np.arange(500, dtype=np.int64))
        assert buf[0] == codecs.TAG_INTERVAL
        assert len(buf) < 20

    def test_scattered_sorted_selects_delta(self):
        # wide gaps: one delta byte per cell beats a span-proportional bitmap
        buf = codecs.encode_cells(np.arange(100, dtype=np.int64) * 200)
        assert buf[0] == codecs.TAG_DELTA

    def test_dense_strided_selects_bitmap(self):
        # stride 3 fragments the interval run table and costs a delta byte
        # per cell; the bitmap pays one *bit* per position instead
        arr = np.arange(100, dtype=np.int64) * 3
        buf = codecs.encode_cells(arr)
        assert buf[0] == codecs.TAG_BITMAP
        assert len(buf) < codecs.DELTA.nbytes(arr)
        assert len(buf) < codecs.INTERVAL.nbytes(arr)

    def test_overflowing_span_selects_raw(self):
        buf = codecs.encode_cells(arr_of([-(2**63), 2**63 - 1]))
        assert buf[0] == codecs.TAG_RAW

    def test_descending_extreme_pair_not_mistaken_for_run(self):
        """np.diff of [2**63-1, -2**63] wraps to +1; interval eligibility
        must check real sortedness, not infer it from the diffs."""
        for values in ([2**63 - 1, -(2**63)], [2**63 - 1, -(2**63) + 5]):
            arr = arr_of(values)
            assert INTERVAL.nbytes(arr) is None
            assert BITMAP.nbytes(arr) is None
            buf = codecs.encode_cells(arr)
            assert buf[0] == codecs.TAG_RAW
            out, pos = codecs.decode_cells(buf)
            assert (out == arr).all() and pos == len(buf)
            lo, hi, n = codecs.decoded_bounds(buf)
            assert (lo, hi, n) == (int(arr.min()), int(arr.max()), arr.size)
            assert codecs.contains_any(buf, np.sort(arr)[:1])

    @given(cell_sets())
    @settings(max_examples=150, deadline=None)
    def test_selection_is_smallest_eligible(self, arr):
        buf = codecs.encode_cells(arr)
        chosen = len(buf)
        for codec in ALL_CODECS:
            size = codec.nbytes(arr)
            if size is not None and arr.size > 1:
                assert chosen <= size

    @given(cell_sets())
    @settings(max_examples=150, deadline=None)
    def test_nbytes_prediction_exact(self, arr):
        assert codecs.cells_nbytes(arr) == len(codecs.encode_cells(arr))


class TestRoundtrip:
    @given(cell_sets())
    @settings(max_examples=200, deadline=None)
    def test_encode_cells_roundtrip(self, arr):
        buf = codecs.encode_cells(arr)
        out, pos = codecs.decode_cells(buf)
        assert (out == arr).all()
        assert pos == len(buf)
        assert codecs.skip_cells(buf) == len(buf)

    @given(cell_sets())
    @settings(max_examples=100, deadline=None)
    def test_per_codec_roundtrip_where_eligible(self, arr):
        for codec in ALL_CODECS:
            if codec.nbytes(arr) is None:
                with pytest.raises(StorageError):
                    codec.encode(arr)
                continue
            buf = codec.encode(arr)
            assert buf[0] == codec.tag
            assert len(buf) == codec.nbytes(arr)
            out, pos = codec.decode(buf)
            assert (out == arr).all()
            assert pos == len(buf)

    def test_duplicates_and_negatives(self):
        for values in ([5, 5, 5, 6, 7], [-9, -9, 0, 3], [0, -1, -2], [7] * 40):
            arr = arr_of(values)
            out, _ = codecs.decode_cells(codecs.encode_cells(arr))
            assert (out == arr).all()

    def test_interval_requires_strictly_increasing(self):
        assert INTERVAL.nbytes(arr_of([1, 2, 2, 3])) is None
        assert INTERVAL.nbytes(arr_of([3, 2, 1])) is None
        assert INTERVAL.nbytes(arr_of([4])) is None
        assert INTERVAL.nbytes(arr_of([1, 2, 4, 5])) is not None

    def test_mixed_codec_value_chaining(self):
        parts = [
            np.arange(30, dtype=np.int64),  # interval
            arr_of([9, -3, 14]),  # delta (unsorted)
            np.arange(40, dtype=np.int64) * 3 + 100,  # bitmap (dense strided)
            arr_of([-(2**63), 2**63 - 1]),  # raw
        ]
        buf = b"".join(codecs.encode_cells(p) for p in parts)
        pos = 0
        for expected in parts:
            out, pos = codecs.decode_cells(buf, pos)
            assert (out == expected).all()
        assert pos == len(buf)
        # skip-based traversal reaches the same offsets without decoding
        pos = 0
        for _ in parts:
            pos = codecs.skip_cells(buf, pos)
        assert pos == len(buf)


class TestInSituProbes:
    @given(cell_sets(), st.lists(st.integers(-(2**41), 2**41), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_probes_match_decoded_reference(self, arr, query):
        sorted_query = np.sort(arr_of(query))
        for codec in ALL_CODECS:
            if codec.nbytes(arr) is None:
                continue
            buf = codec.encode(arr)
            present = np.isin(sorted_query, arr)
            assert codec.contains_any(buf, 0, sorted_query) == bool(present.any())
            assert (codec.intersect(buf, 0, sorted_query) == sorted_query[present]).all()

    @given(cell_sets())
    @settings(max_examples=150, deadline=None)
    def test_bounds_match_decoded_reference(self, arr):
        buf = codecs.encode_cells(arr)
        lo, hi, n = codecs.decoded_bounds(buf)
        assert n == arr.size
        if arr.size:
            assert lo == int(arr.min()) and hi == int(arr.max())
        else:
            assert lo > hi

    def test_probe_hits_at_value_offset(self):
        prefix = codecs.encode_cells(arr_of([1, 2, 3]))
        target = codecs.encode_cells(np.arange(100, 200, dtype=np.int64))
        buf = prefix + target
        offset = codecs.skip_cells(buf, 0)
        assert codecs.contains_any(buf, arr_of([150]), offset)
        assert not codecs.contains_any(buf, arr_of([50]), offset)
        assert codecs.decoded_bounds(buf, offset) == (100, 199, 100)

    def test_empty_query(self):
        buf = codecs.encode_cells(np.arange(10, dtype=np.int64))
        empty = np.empty(0, dtype=np.int64)
        assert not codecs.contains_any(buf, empty)
        assert codecs.intersect(buf, empty).size == 0

    def test_interval_probes_with_8_byte_lengths_stay_integer(self):
        """A hand-crafted value with lw=8 (only reachable for >2**32-cell
        runs in practice): int64 + uint64 must not promote the run-end
        table to float64 and round the comparisons."""
        import struct

        buf = (
            bytes([codecs.TAG_INTERVAL])
            + codecs.encode_uvarint(4)  # n
            + codecs.encode_uvarint(2)  # r
            + bytes([1, 8])  # gap width 1, length width 8
            + struct.pack("<q", 10)  # base
            + bytes([5])  # gap: next run starts at 11 + 5 = 16
            + struct.pack("<QQ", 1, 1)  # lens - 1
        )
        out, pos = codecs.decode_cells(buf)
        assert out.tolist() == [10, 11, 16, 17] and pos == len(buf)
        assert codecs.contains_any(buf, arr_of([11]))
        assert codecs.contains_any(buf, arr_of([17]))
        assert not codecs.contains_any(buf, arr_of([12, 15, 18]))
        assert codecs.intersect(buf, arr_of([10, 12, 16])).tolist() == [10, 16]


class TestBitmap:
    """Wire-format and eligibility specifics of the dense-mask codec."""

    def test_wire_format_golden_bytes(self):
        # {10, 12, 13, 17}: base 10, span 8, one mask byte 0b10001101
        buf = BITMAP.encode(arr_of([10, 12, 13, 17]))
        assert buf == bytes.fromhex("42" "04" "01" "0a00000000000000" "8d")
        out, pos = BITMAP.decode(buf)
        assert out.tolist() == [10, 12, 13, 17] and pos == len(buf)
        assert BITMAP.skip(buf) == len(buf)
        assert BITMAP.bounds(buf) == (10, 17, 4)

    def test_requires_strictly_increasing(self):
        assert BITMAP.nbytes(arr_of([1, 2, 2, 3])) is None
        assert BITMAP.nbytes(arr_of([3, 2, 1])) is None
        assert BITMAP.nbytes(arr_of([4])) is None
        assert BITMAP.nbytes(arr_of([1, 2, 4, 5])) is not None

    def test_span_cap_makes_wide_sets_ineligible(self):
        wide = arr_of([0, codecs._BITMAP_MAX_SPAN])
        assert BITMAP.nbytes(wide) is None
        with pytest.raises(StorageError):
            BITMAP.encode(wide)
        assert BITMAP.nbytes(arr_of([0, codecs._BITMAP_MAX_SPAN - 1])) is not None

    def test_probes_are_byte_masking_on_window_edges(self):
        arr = arr_of([100, 103, 104, 110])
        buf = BITMAP.encode(arr)
        # below, between, above, and exact hits — no decode needed
        assert not BITMAP.contains_any(buf, 0, arr_of([0, 99, 101, 102, 105, 111]))
        assert BITMAP.contains_any(buf, 0, arr_of([99, 104]))
        assert BITMAP.intersect(buf, 0, arr_of([99, 100, 104, 110, 200])).tolist() == [
            100,
            104,
            110,
        ]
        # duplicates in the query are preserved, like every other codec
        assert BITMAP.intersect(buf, 0, arr_of([103, 103])).tolist() == [103, 103]

    def test_base_near_int64_max(self):
        """The last mask byte's pad bits address past int64 for a set
        ending at 2**63 - 1; probes must clamp, not overflow."""
        arr = arr_of([2**63 - 4, 2**63 - 2, 2**63 - 1])
        buf = codecs.encode_cells(arr)
        assert buf[0] == codecs.TAG_BITMAP
        out, _ = codecs.decode_cells(buf)
        assert out.tolist() == arr.tolist()
        assert BITMAP.bounds(buf) == (2**63 - 4, 2**63 - 1, 3)
        assert BITMAP.intersect(buf, 0, arr_of([2**63 - 3, 2**63 - 1])).tolist() == [
            2**63 - 1
        ]
        assert not BITMAP.contains_any(buf, 0, arr_of([2**63 - 3]))
        probe = codecs.BatchProbe(buf, arr_of([0]))
        assert probe.contains_any(arr_of([2**63 - 2])).tolist() == [True]
        hit_ids, parts = probe.intersect(arr_of([2**63 - 4, 2**63 - 3]))
        assert hit_ids.tolist() == [0] and parts[0].tolist() == [2**63 - 4]

    def test_negative_base(self):
        arr = arr_of([-20, -18, -15])
        buf = BITMAP.encode(arr)
        out, _ = BITMAP.decode(buf)
        assert out.tolist() == arr.tolist()
        assert BITMAP.bounds(buf) == (-20, -15, 3)
        assert BITMAP.intersect(buf, 0, arr_of([-18, -17])).tolist() == [-18]

    def test_truncation_raises(self):
        buf = BITMAP.encode(np.arange(50, dtype=np.int64) * 2)
        with pytest.raises(StorageError):
            codecs.decode_cells(buf[:-1])

    def test_popcount_mismatch_raises(self):
        buf = bytearray(BITMAP.encode(arr_of([5, 7, 9])))
        buf[1] = 7  # inflate the cell count past the mask's popcount
        with pytest.raises(StorageError):
            codecs.decode_cells(bytes(buf))

    def test_ragged_dense_mask_beats_interval_and_delta(self):
        rng = np.random.default_rng(3)
        span = 4096
        mask = rng.random(span) < 0.5
        mask[0] = mask[-1] = True
        arr = np.flatnonzero(mask).astype(np.int64)
        bitmap = BITMAP.nbytes(arr)
        assert bitmap is not None
        assert 2 * bitmap <= INTERVAL.nbytes(arr)
        assert 2 * bitmap <= DELTA.nbytes(arr)
        assert codecs.encode_cells(arr)[0] == codecs.TAG_BITMAP


class TestOldFormatCompatibility:
    # byte strings captured from the pre-codec encoder (seed commit)
    LEGACY = {
        "sorted_dense": (
            "49013201e803000000000000" + "01" * 49,
            np.arange(50, dtype=np.int64) + 1000,
        ),
        "unsorted": ("49000501fdffffffffffffff0c0011030a", arr_of([9, -3, 14, 0, 7])),
        "single": ("490101013930000000000000", arr_of([12345])),
        "empty": ("490000", arr_of([])),
        "wide_sorted": (
            "490103080000000000ffffff00000000000100000000000000010000",
            arr_of([-(2**40), 0, 2**40]),
        ),
    }

    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_legacy_bytes_decode(self, name):
        hx, expected = self.LEGACY[name]
        buf = bytes.fromhex(hx)
        out, pos = codecs.decode_cells(buf)
        assert (out == expected).all()
        assert pos == len(buf)

    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_legacy_bytes_support_probes(self, name):
        hx, expected = self.LEGACY[name]
        buf = bytes.fromhex(hx)
        if expected.size:
            probe = np.sort(expected[:1])
            assert codecs.contains_any(buf, probe)
            lo, hi, n = codecs.decoded_bounds(buf)
            assert (lo, hi, n) == (int(expected.min()), int(expected.max()), expected.size)


class TestErrors:
    def test_bad_tag(self):
        with pytest.raises(StorageError):
            codecs.decode_cells(b"\x00\x01\x02")

    def test_empty_buffer(self):
        with pytest.raises(StorageError):
            codecs.decode_cells(b"")

    @pytest.mark.parametrize(
        "arr",
        [np.arange(64, dtype=np.int64), arr_of([5, 1, 9]), arr_of([-(2**63), 2**63 - 1])],
        ids=["interval", "delta", "raw"],
    )
    def test_truncation_raises(self, arr):
        buf = codecs.encode_cells(arr)
        with pytest.raises(StorageError):
            codecs.decode_cells(buf[:-1])

    def test_interval_corrupt_run_count(self):
        buf = bytearray(INTERVAL.encode(np.arange(10, dtype=np.int64)))
        assert buf[0] == codecs.TAG_INTERVAL
        buf[1] = 200  # inflate the cell count past what the runs cover
        with pytest.raises(StorageError):
            codecs.decode_cells(bytes(buf))
