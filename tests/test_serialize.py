"""Unit + property tests for the binary serialization layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import serialize as ser


class TestUvarint:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        buf = ser.encode_uvarint(value)
        out, pos = ser.decode_uvarint(buf)
        assert out == value
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            ser.encode_uvarint(-1)

    def test_truncated(self):
        buf = ser.encode_uvarint(300)[:-1]
        with pytest.raises(StorageError):
            ser.decode_uvarint(buf)

    def test_small_values_one_byte(self):
        for v in (0, 1, 127):
            assert len(ser.encode_uvarint(v)) == 1


class TestBytes:
    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, data):
        buf = ser.encode_bytes(data)
        out, pos = ser.decode_bytes(buf)
        assert out == data
        assert pos == len(buf)

    def test_truncated(self):
        buf = ser.encode_bytes(b"hello")[:-1]
        with pytest.raises(StorageError):
            ser.decode_bytes(buf)


class TestIntArray:
    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        buf = ser.encode_int_array(arr)
        out, pos = ser.decode_int_array(buf)
        assert (out == arr).all()
        assert pos == len(buf)

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_nbytes_prediction_exact(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert ser.int_array_nbytes(arr) == len(ser.encode_int_array(arr))

    def test_sorted_arrays_compress(self):
        dense_sorted = np.arange(1000, dtype=np.int64) + 10**9
        shuffled = dense_sorted.copy()
        np.random.default_rng(0).shuffle(shuffled)
        assert len(ser.encode_int_array(dense_sorted)) < len(
            ser.encode_int_array(shuffled)
        )

    def test_sorted_deltas_use_fixed_width_residuals(self):
        # wide stride: span-proportional bitmaps lose, delta still wins
        arr = np.arange(100, dtype=np.int64) * 300
        # header: tag+flags+count(1)+width(1)+base(8) = 12, then 99 deltas
        assert len(ser.encode_int_array(arr)) == 12 + 99 * 2

    def test_dense_strided_arrays_bitmap_code(self):
        arr = np.arange(100, dtype=np.int64) * 2  # stride 2: one bit per slot
        buf = ser.encode_int_array(arr)
        # tag+count(1)+mask-bytes(1)+base(8)+25-byte mask = 36 bytes
        assert len(buf) == 36
        out, pos = ser.decode_int_array(buf)
        assert (out == arr).all() and pos == len(buf)

    def test_contiguous_arrays_interval_code(self):
        arr = np.arange(100, dtype=np.int64)
        buf = ser.encode_int_array(arr)
        # one run: tag+count(1)+runs(1)+widths(2)+base(8)+len(1) = 14 bytes
        assert len(buf) == 14
        out, pos = ser.decode_int_array(buf)
        assert (out == arr).all() and pos == len(buf)

    def test_int64_span_overflow_falls_back_to_raw(self):
        # np.diff wraps negative across the full int64 span; the encoder
        # used to raise StorageError mid-workflow, now it raw-codes.
        for arr in (
            np.asarray([-(2**63), 2**63 - 1], dtype=np.int64),
            np.asarray([2**63 - 1, -(2**63), 17], dtype=np.int64),
        ):
            buf = ser.encode_int_array(arr)
            out, pos = ser.decode_int_array(buf)
            assert (out == arr).all() and pos == len(buf)
            assert ser.int_array_nbytes(arr) == len(buf)

    def test_decode_offset_chaining(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        b = np.asarray([9], dtype=np.int64)
        buf = ser.encode_int_array(a) + ser.encode_int_array(b)
        out_a, pos = ser.decode_int_array(buf)
        out_b, end = ser.decode_int_array(buf, pos)
        assert (out_a == a).all() and (out_b == b).all()
        assert end == len(buf)

    def test_bad_magic(self):
        with pytest.raises(StorageError):
            ser.decode_int_array(b"\x00\x00\x00")

    def test_truncated_payload(self):
        buf = ser.encode_int_array(np.asarray([1, 5, 9]))
        with pytest.raises(StorageError):
            ser.decode_int_array(buf[:-1])

    def test_empty(self):
        buf = ser.encode_int_array(np.empty(0, dtype=np.int64))
        out, pos = ser.decode_int_array(buf)
        assert out.size == 0
        assert pos == len(buf)

    def test_singleton_is_twelve_bytes(self):
        # the vectorised singleton encoder in lineage_store relies on this
        assert len(ser.encode_int_array(np.asarray([12345]))) == 12
