"""Unit tests for schemas, dense arrays, and the version store."""

import numpy as np
import pytest

from repro.arrays import ArraySchema, Attribute, Dimension, SciArray, VersionStore
from repro.errors import CoordinateError, SchemaError, VersionError


class TestDimension:
    def test_valid(self):
        d = Dimension("x", 5)
        assert d.length == 5

    @pytest.mark.parametrize("length", [0, -1])
    def test_bad_length(self, length):
        with pytest.raises(SchemaError):
            Dimension("x", length)

    @pytest.mark.parametrize("name", ["", "1x", "a b", None])
    def test_bad_name(self, name):
        with pytest.raises(SchemaError):
            Dimension(name, 5)


class TestAttribute:
    def test_dtype_coerced(self):
        assert Attribute("v", "float32").dtype == np.dtype(np.float32)

    def test_bad_dtype(self):
        with pytest.raises(SchemaError):
            Attribute("v", "not_a_dtype")


class TestArraySchema:
    def test_dense_factory(self):
        schema = ArraySchema.dense((4, 6), np.float32, name="img")
        assert schema.shape == (4, 6)
        assert schema.ndim == 2
        assert schema.size == 24
        assert schema.default_attr.dtype == np.dtype(np.float32)

    def test_duplicate_dims_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema(
                dims=(Dimension("x", 2), Dimension("x", 3)),
                attrs=(Attribute("v"),),
            )

    def test_needs_dims_and_attrs(self):
        with pytest.raises(SchemaError):
            ArraySchema(dims=(), attrs=(Attribute("v"),))
        with pytest.raises(SchemaError):
            ArraySchema(dims=(Dimension("x", 2),), attrs=())

    def test_with_shape_same_rank_keeps_names(self):
        schema = ArraySchema.dense((4, 6), dim_names=["row", "col"])
        out = schema.with_shape((2, 3))
        assert out.dim_names == ("row", "col")
        assert out.shape == (2, 3)

    def test_with_shape_rank_change(self):
        schema = ArraySchema.dense((4, 6))
        assert schema.with_shape((24,)).ndim == 1

    def test_nbytes(self):
        schema = ArraySchema.dense((4, 6), np.float64)
        assert schema.nbytes() == 24 * 8

    def test_attr_lookup(self):
        schema = ArraySchema.dense((2,), attr_name="flux")
        assert schema.attr("flux").name == "flux"
        with pytest.raises(SchemaError):
            schema.attr("missing")

    def test_require_same_shape(self):
        a = ArraySchema.dense((2, 2))
        b = ArraySchema.dense((2, 3))
        with pytest.raises(SchemaError):
            a.require_same_shape(b)

    def test_str(self):
        assert "img" in str(ArraySchema.dense((2, 2), name="img"))


class TestSciArray:
    def test_from_numpy(self):
        arr = SciArray.from_numpy(np.ones((3, 4)))
        assert arr.shape == (3, 4)
        assert arr.size == 12
        assert arr.nbytes == 12 * 8

    def test_zeros_and_full(self):
        schema = ArraySchema.dense((2, 2))
        assert SciArray.zeros(schema).values().sum() == 0
        assert SciArray.full(schema, 3.0).values().sum() == 12.0

    def test_buffer_shape_validated(self):
        schema = ArraySchema.dense((2, 2))
        with pytest.raises(SchemaError):
            SciArray(schema, {"value": np.zeros((3, 3))})

    def test_missing_attr_buffer(self):
        schema = ArraySchema(
            dims=(Dimension("x", 2),),
            attrs=(Attribute("a"), Attribute("b")),
        )
        with pytest.raises(SchemaError):
            SciArray(schema, {"a": np.zeros(2)})

    def test_cell_access(self):
        arr = SciArray.from_numpy(np.arange(6).reshape(2, 3).astype(float))
        assert arr.cell((1, 2)) == 5.0
        with pytest.raises(CoordinateError):
            arr.cell((2, 0))

    def test_cells_at(self):
        arr = SciArray.from_numpy(np.arange(6).reshape(2, 3).astype(float))
        got = arr.cells_at(np.asarray([[0, 0], [1, 1]]))
        assert got.tolist() == [0.0, 4.0]

    def test_coords_where(self):
        arr = SciArray.from_numpy(np.eye(3))
        coords = arr.coords_where(lambda v: v > 0)
        assert {tuple(c) for c in coords} == {(0, 0), (1, 1), (2, 2)}

    def test_coords_where_bad_predicate(self):
        arr = SciArray.from_numpy(np.eye(3))
        with pytest.raises(CoordinateError):
            arr.coords_where(lambda v: np.asarray([True]))

    def test_multi_attribute(self):
        schema = ArraySchema(
            dims=(Dimension("x", 2),),
            attrs=(Attribute("a", np.float64), Attribute("b", np.int32)),
        )
        arr = SciArray(schema, {"a": np.ones(2), "b": np.asarray([1, 2])})
        assert arr.values("b").dtype == np.dtype(np.int32)
        assert arr.nbytes == 2 * 8 + 2 * 4

    def test_set_values_casts(self):
        arr = SciArray.from_numpy(np.zeros((2, 2), dtype=np.float32))
        arr.set_values(np.ones((2, 2), dtype=np.float64))
        assert arr.values().dtype == np.dtype(np.float32)

    def test_copy_is_deep(self):
        arr = SciArray.from_numpy(np.zeros((2, 2)))
        clone = arr.copy()
        clone.values()[0, 0] = 9
        assert arr.values()[0, 0] == 0

    def test_allclose(self):
        a = SciArray.from_numpy(np.ones((2, 2)))
        b = SciArray.from_numpy(np.ones((2, 2)) + 1e-12)
        assert a.allclose(b)
        assert not a.allclose(SciArray.from_numpy(np.zeros((2, 2))))


class TestVersionStore:
    def test_put_get_latest(self):
        store = VersionStore()
        a = SciArray.from_numpy(np.zeros((2, 2)))
        v0 = store.put("img", a)
        v1 = store.put("img", a)
        assert store.latest("img").version_id == v1.version_id
        assert store.get(v0.version_id).sequence == 0
        assert len(store.history("img")) == 2

    def test_no_overwrite_semantics(self):
        store = VersionStore()
        a = SciArray.from_numpy(np.zeros((2, 2)))
        v0 = store.put("img", a)
        store.put("img", SciArray.from_numpy(np.ones((2, 2))))
        # the first version is untouched
        assert store.get(v0.version_id).array.values().sum() == 0

    def test_parents_validated(self):
        store = VersionStore()
        with pytest.raises(VersionError):
            store.put("x", SciArray.from_numpy(np.zeros(2)), parents=(42,))

    def test_unknown_lookups(self):
        store = VersionStore()
        with pytest.raises(VersionError):
            store.get(0)
        with pytest.raises(VersionError):
            store.latest("nope")

    def test_accounting(self):
        store = VersionStore()
        raw = SciArray.from_numpy(np.zeros((4, 4)))
        v = store.put("in", raw)
        store.put("out", raw, parents=(v.version_id,), producer="op")
        assert store.input_bytes() == raw.nbytes
        assert store.total_bytes() == 2 * raw.nbytes

    def test_spill(self, tmp_path):
        store = VersionStore(spill_dir=str(tmp_path))
        store.put("img", SciArray.from_numpy(np.zeros((2, 2))))
        spilled = list(tmp_path.glob("*.npy"))
        assert len(spilled) == 1

    def test_contains(self):
        store = VersionStore()
        v = store.put("img", SciArray.from_numpy(np.zeros(2)))
        assert v.version_id in store
        assert 999 not in store
