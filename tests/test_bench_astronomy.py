"""Integration tests for the astronomy (LSST) benchmark workload."""

import numpy as np
import pytest

from repro import (
    BLACKBOX,
    COMP_ONE_B,
    FULL_ONE_B,
    QueryRequest,
    SubZero,
)
from repro.bench.astronomy import (
    BUILTIN_NODES,
    UDF_NODES,
    AstronomyBenchmark,
    CosmicRayDetect,
    generate_images,
)
from repro.core.modes import LineageMode

SHAPE = (64, 96)


@pytest.fixture(scope="module")
def bench():
    return AstronomyBenchmark(shape=SHAPE, seed=3, n_stars=12, n_cosmic=8)


@pytest.fixture(scope="module")
def subzero(bench):
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    for udf in UDF_NODES:
        sz.set_strategy(udf, COMP_ONE_B)
    sz.run(bench.inputs())
    return sz


class TestWorkflowShape:
    def test_node_census(self, bench):
        spec = bench.build_spec()
        assert len(spec) == 26  # 22 built-ins + 4 UDFs, as in Figure 1
        assert set(UDF_NODES) <= set(spec.nodes)
        assert set(BUILTIN_NODES) <= set(spec.nodes)
        assert len(BUILTIN_NODES) == 22

    def test_builtins_are_mapping_operators(self, bench):
        spec = bench.build_spec()
        for name in BUILTIN_NODES:
            assert LineageMode.MAP in spec.node(name).operator.supported_modes()

    def test_udfs_are_not_mapping_operators(self, bench):
        spec = bench.build_spec()
        for name in UDF_NODES:
            modes = spec.node(name).operator.supported_modes()
            assert LineageMode.MAP not in modes
            assert LineageMode.PAY in modes


class TestDataGenerator:
    def test_images_share_stars_not_cosmic_rays(self):
        img1, img2 = generate_images(SHAPE, n_stars=10, n_cosmic=6, seed=1)
        diff = np.abs(img1.values() - img2.values())
        # cosmic rays differ between exposures: a few very large differences
        assert (diff > 500).sum() >= 6
        # but the bulk of the sky is nearly identical
        assert np.median(diff) < 10

    def test_deterministic(self):
        a1, _ = generate_images(SHAPE, seed=5)
        a2, _ = generate_images(SHAPE, seed=5)
        assert a1.allclose(a2)


class TestPipelineQuality:
    def test_cosmic_rays_detected(self, subzero):
        mask = subzero.instance.output_array("crd_1").values()
        assert mask.sum() >= 1  # found at least some cosmic rays

    def test_stars_detected(self, subzero):
        labels = subzero.instance.output_array("star_detect").values()
        assert labels.max() >= 3  # several distinct stars

    def test_compositing_removes_cosmic_rays(self, subzero):
        cleaned = subzero.instance.output_array("cr_remove").values()
        # repaired image should not retain the >2000-count cosmic spikes
        assert cleaned.max() < 2000


class TestQueries:
    def test_all_benchmark_queries_run(self, bench, subzero):
        queries = bench.queries(subzero.instance)
        assert set(queries) == {"BQ0", "BQ1", "BQ2", "BQ3", "BQ4", "FQ0"}
        for name, query in queries.items():
            result = subzero.execute_query(query)
            assert result.count > 0, name

    def test_bq0_stays_local(self, bench, subzero):
        """A star's lineage is a compact neighbourhood, not the whole image."""
        queries = bench.queries(subzero.instance)
        result = subzero.execute_query(queries["BQ0"])
        assert 0 < result.count < subzero.instance.source_array("img_1").size / 4
        coords = result.coords
        span = coords.max(axis=0) - coords.min(axis=0)
        assert (span < np.asarray(SHAPE)).all()

    def test_fq0_entire_array_vs_slow_agree(self, bench, subzero):
        queries = bench.queries(subzero.instance)
        fast = subzero.execute_query(queries["FQ0"])
        slow = subzero.execute_query(
            QueryRequest.from_query(queries["FQ0"], entire_array=False)
        )
        assert {tuple(c) for c in fast.coords} == {tuple(c) for c in slow.coords}
        assert fast.seconds <= slow.seconds

    def test_strategies_agree_on_star_query(self, bench):
        results = {}
        for strategy in (BLACKBOX, FULL_ONE_B, COMP_ONE_B):
            sz = SubZero(bench.build_spec(), enable_query_opt=False)
            sz.use_mapping_where_possible()
            if strategy is not BLACKBOX:
                for udf in UDF_NODES:
                    sz.set_strategy(udf, strategy)
            instance = sz.run(bench.inputs())
            query = bench.queries(instance)["BQ0"]
            results[strategy.label] = {
                tuple(c) for c in sz.execute_query(query).coords
            }
        assert results["Blackbox"] == results["<-FullOne"] == results["<-CompOne"]


class TestUdfLineageShapes:
    def test_crd_hot_cells_have_radius_neighbourhood(self, subzero):
        op: CosmicRayDetect = subzero.instance.operator("crd_1")
        mask = subzero.instance.output_array("crd_1").values()
        hot = np.stack(np.nonzero(mask > 0.5), axis=1)
        if hot.shape[0] == 0:
            pytest.skip("no cosmic rays at this seed")
        cell = tuple(hot[0])
        result = subzero.backward_query([cell], [("crd_1", 0)])
        assert result.count <= (2 * op.radius + 1) ** 2
        assert result.count > 1

    def test_crd_cold_cells_map_identity(self, subzero):
        mask = subzero.instance.output_array("crd_1").values()
        cold = np.stack(np.nonzero(mask < 0.5), axis=1)
        cell = tuple(cold[0])
        result = subzero.backward_query([cell], [("crd_1", 0)])
        assert {tuple(c) for c in result.coords} == {cell}

    def test_star_cells_share_lineage(self, subzero):
        """All pixels of one star have the same (region) lineage."""
        labels = subzero.instance.output_array("star_detect").values().astype(int)
        star_ids, counts = np.unique(labels[labels > 0], return_counts=True)
        multi = star_ids[counts > 1]
        if multi.size == 0:
            pytest.skip("no multi-pixel star at this seed")
        cells = np.stack(np.nonzero(labels == multi[0]), axis=1)
        lineages = [
            {tuple(c) for c in subzero.backward_query([tuple(cell)], [("star_detect", 0)]).coords}
            for cell in cells[:3]
        ]
        assert all(lin == lineages[0] for lin in lineages)
        assert lineages[0] == {tuple(c) for c in cells}
