"""The system's core correctness property: every storage strategy answers
every lineage query identically to black-box re-execution.

This is the cross-module integration test — workflow executor, runtime,
encoders, stores, query executor, and re-executor all have to agree.
"""

import numpy as np
import pytest

from repro import (
    BLACKBOX,
    COMP_MANY_B,
    COMP_ONE_B,
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    MAP,
    PAY_MANY_B,
    PAY_ONE_B,
    QueryRequest,
    SciArray,
    SubZero,
)
from tests.conftest import build_spot_spec

ALL = [
    BLACKBOX,
    FULL_ONE_B,
    FULL_ONE_F,
    FULL_MANY_B,
    FULL_MANY_F,
    PAY_ONE_B,
    PAY_MANY_B,
    COMP_ONE_B,
    COMP_MANY_B,
]

BACKWARD_PATH = (("scale", 0), ("spot", 0), ("smooth", 0))
FORWARD_PATH = (("smooth", 0), ("spot", 0), ("scale", 0))


def run_with(strategy, image, query_opt=False):
    spec = build_spot_spec()
    sz = SubZero(spec, enable_query_opt=query_opt)
    sz.set_strategy("smooth", MAP)
    sz.set_strategy("scale", MAP)
    if strategy is not BLACKBOX:
        sz.set_strategy("spot", strategy)
    sz.run({"img": image})
    return sz


def coord_set(result):
    return {tuple(c) for c in result.coords.tolist()}


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(77)
    return SciArray.from_numpy(rng.random((18, 22)))


@pytest.fixture(scope="module")
def reference(image):
    sz = run_with(BLACKBOX, image)
    out_cells = [(4, 4), (9, 12), (17, 21), (0, 0)]
    in_cells = [(5, 5), (10, 11), (0, 1)]
    return {
        "out_cells": out_cells,
        "in_cells": in_cells,
        "backward": coord_set(sz.backward_query(out_cells, BACKWARD_PATH)),
        "forward": coord_set(sz.forward_query(in_cells, FORWARD_PATH)),
    }


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.label)
def test_backward_equivalence(strategy, image, reference):
    sz = run_with(strategy, image)
    got = coord_set(sz.backward_query(reference["out_cells"], BACKWARD_PATH))
    assert got == reference["backward"]


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.label)
def test_forward_equivalence(strategy, image, reference):
    sz = run_with(strategy, image)
    got = coord_set(sz.forward_query(reference["in_cells"], FORWARD_PATH))
    assert got == reference["forward"]


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.label)
def test_equivalence_with_query_time_optimizer(strategy, image, reference):
    """The optimizer may pick different access paths; answers must not change."""
    sz = run_with(strategy, image, query_opt=True)
    back = coord_set(sz.backward_query(reference["out_cells"], BACKWARD_PATH))
    fwd = coord_set(sz.forward_query(reference["in_cells"], FORWARD_PATH))
    assert back == reference["backward"]
    assert fwd == reference["forward"]


@pytest.mark.parametrize("strategy", ALL, ids=lambda s: s.label)
def test_equivalence_without_entire_array_opt(strategy, image, reference):
    sz = run_with(strategy, image)
    back = coord_set(
        sz.query(
            QueryRequest.backward(
                reference["out_cells"], BACKWARD_PATH, entire_array=False
            )
        )
    )
    assert back == reference["backward"]


def test_single_cell_queries_agree(image):
    """Exhaustive single-cell agreement between Full and Comp on bright cells."""
    sz_full = run_with(FULL_ONE_B, image)
    sz_comp = run_with(COMP_ONE_B, image)
    spot_out = sz_full.instance.output_array("spot")
    bright = spot_out.coords_where(lambda v: v > 0.5)
    targets = bright[:5] if bright.shape[0] else np.asarray([[1, 1]])
    for cell in targets:
        a = coord_set(sz_full.backward_query([tuple(cell)], [("spot", 0)]))
        b = coord_set(sz_comp.backward_query([tuple(cell)], [("spot", 0)]))
        assert a == b


def test_multi_strategy_store_agrees(image, reference):
    """A node holding several strategies still answers identically."""
    spec = build_spot_spec()
    sz = SubZero(spec, enable_query_opt=False)
    sz.set_strategy("smooth", MAP)
    sz.set_strategy("scale", MAP)
    sz.set_strategy("spot", PAY_ONE_B, FULL_ONE_F)
    sz.run({"img": image})
    back = coord_set(sz.backward_query(reference["out_cells"], BACKWARD_PATH))
    fwd = coord_set(sz.forward_query(reference["in_cells"], FORWARD_PATH))
    assert back == reference["backward"]
    assert fwd == reference["forward"]
