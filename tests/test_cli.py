"""Tests for the ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench import __main__ as cli


class TestArgumentHandling:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_requires_a_figure(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_all_expands_to_every_figure(self, monkeypatch):
        called = []
        monkeypatch.setitem(cli.FIGURES, "fig5", lambda full, csv: called.append("fig5"))
        monkeypatch.setitem(cli.FIGURES, "fig6", lambda full, csv: called.append("fig6"))
        monkeypatch.setitem(cli.FIGURES, "fig7", lambda full, csv: called.append("fig7"))
        monkeypatch.setitem(cli.FIGURES, "fig8", lambda full, csv: called.append("fig8"))
        monkeypatch.setitem(cli.FIGURES, "fig9", lambda full, csv: called.append("fig9"))
        assert cli.main(["all"]) == 0
        assert called == ["fig5", "fig6", "fig7", "fig8", "fig9"]

    def test_flags_forwarded(self, monkeypatch, tmp_path):
        seen = {}

        def fake(full, csv):
            seen["full"] = full
            seen["csv"] = csv

        monkeypatch.setitem(cli.FIGURES, "fig5", fake)
        csv_dir = str(tmp_path / "out")
        assert cli.main(["fig5", "--full", "--csv", csv_dir]) == 0
        assert seen == {"full": True, "csv": csv_dir}
        import os

        assert os.path.isdir(csv_dir)

    def test_duplicate_selection_runs_once_each(self, monkeypatch):
        called = []
        monkeypatch.setitem(cli.FIGURES, "fig8", lambda full, csv: called.append("fig8"))
        monkeypatch.setitem(cli.FIGURES, "fig9", lambda full, csv: called.append("fig9"))
        assert cli.main(["fig9", "fig8"]) == 0
        assert called == ["fig9", "fig8"]
