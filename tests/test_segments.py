"""The segmented store format and the lazy-open catalog serving path.

Four layers under test:

* :mod:`repro.storage.segment` — the single-file, manifest-led container
  (header, section table, checksums, lazy mmap-backed access);
* store round-trips through segments — a Hypothesis property asserts that a
  store flushed to a segment and reloaded in a fresh object answers
  *byte-identical* matched and mismatched queries, for all four Full
  strategies, with the lowered batch-scan tables served from the file;
* corruption — truncated and bit-flipped segments fail checksum
  verification loudly, and :func:`repro.workflow.recovery.recover_lineage`
  quarantines them instead of serving garbage;
* the batch convergence riders — R-tree multi-point descent and the
  columnar payload scan equal their per-entry references, and the
  BatchProbe lowering walk ticks per codec-tag batch, not per entry.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    PAY_MANY_B,
    PAY_ONE_B,
    SciArray,
)
from repro.arrays import coords as C
from repro.arrays.versions import VersionStore
from repro.core.catalog import StoreCatalog
from repro.core.lineage_store import RegionEntryTable, make_store
from repro.core.model import BufferSink, ElementwiseBatch, RegionPair
from repro.core.runtime import LineageRuntime
from repro.core.subzero import SubZero
from repro.errors import StorageError
from repro.storage import codecs
from repro.storage.rtree import RTree
from repro.storage.segment import Segment, SegmentWriter, is_segment_file
from repro.workflow.executor import execute_workflow
from repro.workflow.recovery import recover_lineage
from tests.conftest import build_spot_spec

SHAPE = (9, 11)
SIZE = SHAPE[0] * SHAPE[1]
ALL_FULL = [FULL_ONE_B, FULL_MANY_B, FULL_ONE_F, FULL_MANY_F]


# -- the segment container ---------------------------------------------------


class TestSegmentContainer:
    def test_roundtrip_all_section_kinds(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_array("vec", np.arange(10, dtype=np.int64))
        writer.add_array("mat", np.arange(12, dtype=np.int64).reshape(3, 4))
        writer.add_array("empty", np.empty((0, 2), dtype=np.int64))
        writer.add_bytes("heap", b"\x00opaque bytes\xff")
        writer.add_json("meta", {"n": 3, "fields": [0, 1]})
        assert writer.write(path) == os.path.getsize(path)
        assert is_segment_file(path)
        seg = Segment.open(path, verify=True)
        assert (seg.array("vec") == np.arange(10)).all()
        assert seg.array("mat").shape == (3, 4)
        assert seg.array("empty").shape == (0, 2)
        assert bytes(seg.view("heap")) == b"\x00opaque bytes\xff"
        assert seg.json("meta") == {"n": 3, "fields": [0, 1]}

    def test_array_sections_are_zero_copy_views(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_array("vec", np.arange(1000, dtype=np.int64))
        writer.write(path)
        arr = Segment.open(path).array("vec")
        assert not arr.flags.owndata  # a view over the mapping, not a copy
        assert not arr.flags.writeable

    def test_duplicate_and_missing_sections(self, tmp_path):
        writer = SegmentWriter()
        writer.add_bytes("x", b"a")
        with pytest.raises(StorageError, match="duplicate"):
            writer.add_bytes("x", b"b")
        path = str(tmp_path / "t.seg")
        writer.write(path)
        seg = Segment.open(path)
        with pytest.raises(StorageError, match="no section"):
            seg.array("nope")

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.seg")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\x00" * 64)
        assert not is_segment_file(path)
        with pytest.raises(StorageError, match="bad magic"):
            Segment.open(path)

    def test_newer_version_rejected(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_bytes("x", b"abc")
        writer.write(path)
        raw = bytearray(open(path, "rb").read())
        raw[4:6] = (99).to_bytes(2, "little")  # version field
        open(path, "wb").write(bytes(raw))
        with pytest.raises(StorageError, match="newer than supported"):
            Segment.open(path)

    def test_truncated_file_rejected_structurally(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_array("vec", np.arange(64, dtype=np.int64))
        writer.write(path)
        raw = open(path, "rb").read()
        for cut in (3, 10, len(raw) // 2):
            trunc = str(tmp_path / f"cut{cut}.seg")
            open(trunc, "wb").write(raw[:cut])
            with pytest.raises(StorageError):
                Segment.open(trunc, verify=True)

    def test_checksum_catches_payload_bitflips(self, tmp_path):
        path = str(tmp_path / "t.seg")
        writer = SegmentWriter()
        writer.add_array("vec", np.arange(64, dtype=np.int64))
        writer.write(path)
        seg = Segment.open(path)
        offset = seg._sections["vec"]["offset"]
        seg.close()
        raw = bytearray(open(path, "rb").read())
        raw[offset + 5] ^= 0x40
        open(path, "wb").write(bytes(raw))
        assert Segment.open(path) is not None  # structure still parses
        with pytest.raises(StorageError, match="checksum"):
            Segment.open(path, verify=True)


# -- store round-trips through segments (Hypothesis property) -----------------


@st.composite
def sinks(draw):
    """A random mix of general region pairs and an elementwise batch."""
    sink = BufferSink()
    for _ in range(draw(st.integers(0, 5))):
        n_out = draw(st.integers(1, 4))
        n_in = draw(st.integers(1, 6))
        outs = np.unique(
            np.asarray(
                draw(st.lists(st.integers(0, SIZE - 1), min_size=n_out, max_size=n_out)),
                dtype=np.int64,
            )
        )
        ins = np.unique(
            np.asarray(
                draw(st.lists(st.integers(0, SIZE - 1), min_size=n_in, max_size=n_in)),
                dtype=np.int64,
            )
        )
        sink.add_pair(
            RegionPair(
                outcells=C.unpack_coords(outs, SHAPE),
                incells=(C.unpack_coords(ins, SHAPE),),
            )
        )
    n_elem = draw(st.integers(0, 8))
    if n_elem:
        eouts = np.asarray(
            draw(st.lists(st.integers(0, SIZE - 1), min_size=n_elem, max_size=n_elem)),
            dtype=np.int64,
        )
        eins = np.asarray(
            draw(st.lists(st.integers(0, SIZE - 1), min_size=n_elem, max_size=n_elem)),
            dtype=np.int64,
        )
        sink.add_elementwise(
            ElementwiseBatch(
                outcells=C.unpack_coords(eouts, SHAPE),
                incells=(C.unpack_coords(eins, SHAPE),),
            )
        )
    query = draw(st.lists(st.integers(0, SIZE - 1), min_size=1, max_size=10))
    return sink, np.unique(np.asarray(query, dtype=np.int64))


def _answers(store, strategy, query):
    """Matched + mismatched answers of one store, as comparable tuples."""
    if strategy.orientation.value == "backward":
        matched, per_input = store.backward_full(query)
        scan = store.scan_forward_full(query, 0)
        return (
            matched.tolist(),
            [sorted(p.tolist()) for p in per_input],
            sorted(scan.tolist()),
        )
    fwd = store.forward_full(query, 0)
    matched, per_input = store.scan_backward_full(query)
    return (
        matched.tolist(),
        [sorted(p.tolist()) for p in per_input],
        sorted(fwd.tolist()),
    )


class TestSegmentRoundtripProperty:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case=sinks())
    @settings(max_examples=25, deadline=None)
    def test_reloaded_store_answers_identically(self, strategy, case, tmp_path_factory):
        sink, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        before = _answers(store, strategy, query)

        path = str(tmp_path_factory.mktemp("seg") / "store.seg")
        store.flush_segment(path)
        clone = make_store("n", strategy, SHAPE, (SHAPE,))
        clone.load_segment(path)
        # the lowered tables came from the file: the clone is warm before
        # any scan ran on it
        assert clone.lowered_ready()
        after = _answers(clone, strategy, query)
        assert before == after

    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case=sinks())
    @settings(max_examples=10, deadline=None)
    def test_double_roundtrip_is_stable(self, strategy, case, tmp_path_factory):
        """Flush(load(flush(store))) produces identical answers again —
        loaded mmap-backed state re-flushes correctly."""
        sink, query = case
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        base = tmp_path_factory.mktemp("seg2")
        store.flush_segment(str(base / "a.seg"))
        clone = make_store("n", strategy, SHAPE, (SHAPE,))
        clone.load_segment(str(base / "a.seg"))
        clone.flush_segment(str(base / "b.seg"))
        clone2 = make_store("n", strategy, SHAPE, (SHAPE,))
        clone2.load_segment(str(base / "b.seg"))
        assert _answers(store, strategy, query) == _answers(clone2, strategy, query)


class TestStoreSegmentCorruption:
    @pytest.mark.parametrize("strategy", [FULL_ONE_B, FULL_MANY_B], ids=lambda s: s.label)
    def test_truncated_store_segment_fails_loudly(self, tmp_path, strategy):
        store = make_store("n", strategy, SHAPE, (SHAPE,))
        sink = BufferSink()
        sink.add_pair(
            RegionPair(
                outcells=np.asarray([(0, 0), (0, 1)], dtype=np.int64),
                incells=(np.asarray([(2, 2), (3, 3)], dtype=np.int64),),
            )
        )
        store.ingest(sink)
        path = str(tmp_path / "store.seg")
        store.flush_segment(path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) - len(raw) // 3])
        clone = make_store("n", strategy, SHAPE, (SHAPE,))
        with pytest.raises(StorageError):
            clone.load_segment(path)


# -- recovery: checksum-verify + quarantine -----------------------------------


def _flushed_runtime(tmp_path, rng):
    image = SciArray.from_numpy(rng.random((16, 18)))
    runtime = LineageRuntime()
    runtime.set_strategies("spot", [FULL_ONE_B, PAY_ONE_B])
    instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
    runtime.flush_all(str(tmp_path))
    return runtime, instance


class TestRecoverLineage:
    def test_healthy_catalog_recovers_clean(self, tmp_path, rng):
        _flushed_runtime(tmp_path, rng)
        fresh = LineageRuntime()
        report = recover_lineage(str(tmp_path), runtime=fresh)
        assert report.ok and not report.quarantined
        assert len(report.catalog) == 2
        assert fresh.store_for("spot", FULL_ONE_B) is not None

    def test_corrupt_segment_is_quarantined(self, tmp_path, rng):
        runtime, instance = _flushed_runtime(tmp_path, rng)
        catalog = StoreCatalog.open(str(tmp_path))
        entry = catalog.entry("spot", FULL_ONE_B)
        victim = tmp_path / entry.file
        raw = bytearray(victim.read_bytes())
        raw[-20] ^= 0xFF  # flip a payload byte
        victim.write_bytes(bytes(raw))

        fresh = LineageRuntime()
        report = recover_lineage(str(tmp_path), runtime=fresh)
        assert not report.ok
        [(fname, error)] = report.quarantined
        assert fname == entry.file
        assert isinstance(error, StorageError)
        assert "quarantined" in str(error)
        # the corrupt file was moved aside, not served
        assert not victim.exists()
        assert (tmp_path / (entry.file + ".quarantined")).exists()
        assert fresh.store_for("spot", FULL_ONE_B) is None
        # the healthy payload store still serves
        out_shape = instance.output_shape("spot")
        q = C.pack_coords(np.asarray([(3, 3)], dtype=np.int64), out_shape)
        healthy = fresh.store_for("spot", PAY_ONE_B)
        assert healthy is not None
        matched, _ = healthy.backward_payload(q)
        assert matched.shape == (1,)

    def test_quarantine_is_persisted_to_the_manifest(self, tmp_path, rng):
        """After a quarantine, a later plain load_all of the same directory
        must not re-register the dead store."""
        _flushed_runtime(tmp_path, rng)
        entry = StoreCatalog.open(str(tmp_path)).entry("spot", FULL_ONE_B)
        victim = tmp_path / entry.file
        raw = bytearray(victim.read_bytes())
        raw[-20] ^= 0xFF
        victim.write_bytes(bytes(raw))
        recover_lineage(str(tmp_path))

        later = LineageRuntime()
        assert later.load_all(str(tmp_path)) == 1  # only the healthy store
        assert FULL_ONE_B not in later.strategies_for("spot")
        assert PAY_ONE_B in later.strategies_for("spot")

    def test_strict_mode_raises(self, tmp_path, rng):
        _flushed_runtime(tmp_path, rng)
        catalog = StoreCatalog.open(str(tmp_path))
        entry = catalog.entry("spot", FULL_ONE_B)
        victim = tmp_path / entry.file
        raw = bytearray(victim.read_bytes())
        raw[-20] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="failed verification"):
            recover_lineage(str(tmp_path), strict=True)
        assert victim.exists()  # strict mode reports; it does not rename


# -- fresh-engine serving straight off disk -----------------------------------


class TestFreshProcessServing:
    def test_subzero_resume_serves_queries_off_disk(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        spec = build_spot_spec()
        sz = SubZero(spec)
        sz.set_strategy("spot", FULL_ONE_B)
        versions = VersionStore()
        sz.run({"img": image}, version_store=versions)
        want = sz.backward_query([(3, 3), (7, 7)], ["spot"])
        sz.flush_lineage(str(tmp_path))

        fresh = SubZero(spec)
        fresh.resume(versions, wal=sz.wal, lineage_dir=str(tmp_path))
        got = fresh.backward_query([(3, 3), (7, 7)], ["spot"])
        assert sorted(map(tuple, want.coords.tolist())) == sorted(
            map(tuple, got.coords.tolist())
        )
        # the catalog's lowered flag priced the store as warm without opening
        assert fresh.runtime.lowered_ready("spot", FULL_ONE_B)

    def test_lazy_load_then_flush_is_lossless(self, tmp_path, rng):
        """Regression: flush_all after a lazy load_all must re-persist the
        catalog stores no query opened — not silently write an empty
        manifest over them."""
        _flushed_runtime(tmp_path, rng)
        middle = LineageRuntime()
        assert middle.load_all(str(tmp_path)) == 2
        assert middle._catalog.open_count() == 0
        middle.flush_all(str(tmp_path))  # nothing was ever queried

        final = LineageRuntime()
        assert final.load_all(str(tmp_path)) == 2  # both stores survive
        assert final.store_for("spot", FULL_ONE_B) is not None
        assert final.store_for("spot", PAY_ONE_B) is not None

    def test_mismatched_scan_off_segment_needs_no_lowering_walk(self, tmp_path, rng):
        """A forward query against a backward-oriented store reloaded from a
        segment must not re-walk codec headers: the probe's lowered tables
        come back pre-built."""
        image = SciArray.from_numpy(rng.random((16, 18)))
        runtime = LineageRuntime()
        runtime.set_strategies("spot", FULL_MANY_B)
        instance = execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime)
        runtime.flush_all(str(tmp_path))

        fresh = LineageRuntime()
        fresh.load_all(str(tmp_path))
        store = fresh.store_for("spot", FULL_MANY_B)
        probe = store._table.batch_probe(field=0)
        assert probe._lowered is not None  # warm before any scan ran
        in_shape = instance.operator("spot").input_shapes[0]
        q = np.sort(C.pack_coords(np.asarray([(5, 5), (2, 2)], dtype=np.int64), in_shape))
        rebuilt = make_store(
            "spot", FULL_MANY_B, instance.output_shape("spot"), (in_shape,)
        )
        # equivalence against the in-memory store of a re-run
        runtime2 = LineageRuntime()
        runtime2.set_strategies("spot", FULL_MANY_B)
        execute_workflow(build_spot_spec(), {"img": image}, runtime=runtime2)
        live = runtime2.store_for("spot", FULL_MANY_B)
        assert sorted(store.scan_forward_full(q, 0).tolist()) == sorted(
            live.scan_forward_full(q, 0).tolist()
        )
        assert rebuilt is not None


class TestSegmentIdentityCheck:
    def test_wrong_store_segment_refused(self, tmp_path):
        """A segment holding a different (node, strategy) must not silently
        hydrate — crc checks cannot catch a consistent-but-wrong file."""
        sink = BufferSink()
        sink.add_elementwise(
            ElementwiseBatch(
                outcells=np.asarray([(1, 1)], dtype=np.int64),
                incells=(np.asarray([(2, 2)], dtype=np.int64),),
            )
        )
        store = make_store("a", FULL_ONE_B, SHAPE, (SHAPE,))
        store.ingest(sink)
        path = str(tmp_path / "a.seg")
        store.flush_segment(path)
        wrong_node = make_store("b", FULL_ONE_B, SHAPE, (SHAPE,))
        with pytest.raises(StorageError, match="refusing to load"):
            wrong_node.load_segment(path)
        wrong_strategy = make_store("a", FULL_MANY_B, SHAPE, (SHAPE,))
        with pytest.raises(StorageError, match="refusing to load"):
            wrong_strategy.load_segment(path)


class TestLegacyManifestFallback:
    def test_pre_segment_flush_directory_still_loads(self, tmp_path):
        """A directory flushed before the segmented format — manifest.json
        plus per-component bare .bin files — still serves eagerly."""
        import json
        import struct

        from repro.storage import serialize as ser

        sink = BufferSink()
        sink.add_elementwise(
            ElementwiseBatch(
                outcells=np.asarray([(1, 1), (2, 3)], dtype=np.int64),
                incells=(np.asarray([(4, 4), (5, 5)], dtype=np.int64),),
            )
        )
        live = make_store("n", FULL_ONE_B, SHAPE, (SHAPE,))
        live.ingest(sink)
        q = C.pack_coords(np.asarray([(1, 1), (2, 3)], dtype=np.int64), SHAPE)
        want = _answers(live, FULL_ONE_B, np.sort(q))

        # write the OLD layout by hand: bare-format component files
        sub = tmp_path / "n__Full__One__backward"
        sub.mkdir()
        for name, comp in live._components().items():
            with open(sub / f"{name}.bin", "wb") as fh:
                if hasattr(comp, "columns"):  # HashStore
                    keys, offsets, buf = comp.columns()
                    fh.write(struct.pack("<q", keys.size))
                    if keys.size:
                        fh.write(keys.astype("<i8").tobytes())
                        fh.write(offsets.astype("<i8").tobytes())
                        fh.write(bytes(buf))
                else:  # BlobStore
                    fh.write(struct.pack("<q", len(comp)))
                    for i in range(len(comp)):
                        fh.write(ser.encode_bytes(comp.get(i)))
        manifest = [
            {
                "node": "n", "mode": "Full", "encoding": "One",
                "orientation": "backward", "out_shape": list(SHAPE),
                "in_shapes": [list(SHAPE)], "dir": "n__Full__One__backward",
            }
        ]
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))

        runtime = LineageRuntime()
        assert runtime.load_all(str(tmp_path)) == 1
        loaded = runtime.store_for("n", FULL_ONE_B)
        assert _answers(loaded, FULL_ONE_B, np.sort(q)) == want


# -- batch convergence riders -------------------------------------------------


class TestRTreeBatchDescent:
    @given(
        n_boxes=st.integers(1, 60),
        n_points=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_points_equals_per_point_union(self, n_boxes, n_points, seed):
        rng = np.random.default_rng(seed)
        lo = rng.integers(0, 40, size=(n_boxes, 2))
        hi = lo + rng.integers(0, 6, size=(n_boxes, 2))
        tree = RTree.build(lo, hi, leaf_capacity=4)
        points = rng.integers(-2, 44, size=(n_points, 2))
        want = np.unique(
            np.concatenate([tree.query_point(p) for p in points])
        ) if n_points else np.empty(0, dtype=np.int64)
        got = tree.query_points(points)
        assert got.tolist() == want.tolist()

    def test_query_points_empty_cases(self):
        tree = RTree.build(
            np.asarray([[0, 0]], dtype=np.int64), np.asarray([[1, 1]], dtype=np.int64)
        )
        assert tree.query_points(np.empty((0, 2), dtype=np.int64)).size == 0
        empty = RTree.build(
            np.empty((0, 2), dtype=np.int64), np.empty((0, 2), dtype=np.int64)
        )
        assert empty.query_points(np.asarray([[0, 0]], dtype=np.int64)).size == 0

    def test_candidate_entries_has_no_per_cell_descent(self, monkeypatch):
        """The small-query path descends once for the whole batch."""
        table = RegionEntryTable(SHAPE)
        for j in range(8):
            table.add_entry(
                C.pack_coords(np.asarray([(j, j), (j, j + 1)], dtype=np.int64), SHAPE),
                b"v",
            )
        table.finalize()
        calls = {"point": 0}
        original = RTree.query_point

        def counting(self, point):
            calls["point"] += 1
            return original(self, point)

        monkeypatch.setattr(RTree, "query_point", counting)
        coords = np.asarray([(j, j) for j in range(8)], dtype=np.int64)
        hits = table.candidate_entries(coords)
        assert calls["point"] == 0  # batched descent, no per-cell probes
        assert hits.size == 8


class TestLoweringTicksPerBatch:
    def test_ticker_fires_per_codec_tag_batch(self):
        """Regression: the cold lowering walk used to tick once per entry,
        so a budget could abort a nearly-finished (cacheable) build.  Now it
        ticks once per codec-tag batch — bounded by the tag count, however
        large the heap."""
        values = []
        for j in range(300):
            kind = j % 4
            if kind == 0:
                values.append(np.arange(j, j + 40, dtype=np.int64))  # interval
            elif kind == 1:
                base = 8 * j
                values.append(  # bitmap
                    base + np.flatnonzero(np.arange(64) % 3 != 1).astype(np.int64)
                )
            elif kind == 2:
                values.append(np.asarray([j, j + 5, j + 9000], dtype=np.int64))  # delta
            else:
                values.append(np.asarray([5 * j + 1, 2 * j], dtype=np.int64))  # unsorted
        bufs = [codecs.encode_cells(v) for v in values]
        tags = {b[0] for b in bufs}
        heap = b"".join(bufs)
        ends = np.cumsum([len(b) for b in bufs]).astype(np.int64)
        probe = codecs.BatchProbe(heap, ends - np.asarray([len(b) for b in bufs]), ends)
        ticks = {"n": 0}

        def ticker():
            ticks["n"] += 1

        verdict = probe.contains_any(np.asarray([1], dtype=np.int64), ticker)
        assert verdict.size == 300
        assert 0 < ticks["n"] <= len(tags)  # not 300

    def test_lowered_tables_roundtrip_through_from_lowered(self):
        values = [
            np.arange(10, 20, dtype=np.int64),
            np.asarray([3, 99, 4000], dtype=np.int64),
            5 + np.flatnonzero(np.arange(40) % 2 == 0).astype(np.int64),
        ]
        bufs = [codecs.encode_cells(v) for v in values]
        heap = b"".join(bufs)
        lens = np.asarray([len(b) for b in bufs], dtype=np.int64)
        ends = np.cumsum(lens)
        probe = codecs.BatchProbe(heap, ends - lens, ends)
        query = np.unique(np.concatenate(values))[::3]
        want = probe.contains_any(query)
        tables = probe.lowered_tables()
        clone = codecs.BatchProbe.from_lowered(heap, len(values), tables)
        assert (clone.contains_any(query) == want).all()
        h1, i1 = probe.intersect(query)
        h2, i2 = clone.intersect(query)
        assert h1.tolist() == h2.tolist()
        assert [a.tolist() for a in i1] == [a.tolist() for a in i2]


class TestPayloadColumnarScan:
    @pytest.mark.parametrize("strategy", [PAY_ONE_B, PAY_MANY_B], ids=lambda s: s.label)
    def test_columns_reconstruct_every_entry(self, strategy, rng):
        from repro.core.model import PayloadBatch

        store = make_store("n", strategy, SHAPE, (SHAPE,))
        sink = BufferSink()
        sink.add_pair(
            RegionPair(
                outcells=np.asarray([(1, 1), (1, 2)], dtype=np.int64), payload=b"PP"
            )
        )
        sink.add_payload_batch(
            PayloadBatch(
                outcells=np.asarray([(4, 4), (5, 5)], dtype=np.int64),
                payloads=np.asarray([[7], [9]], dtype=np.uint8),
            )
        )
        store.ingest(sink)
        keys, koff, vbuf, voff = store.payload_entries()
        rebuilt = []
        for e in range(koff.size - 1):
            rebuilt.append(
                (
                    tuple(np.asarray(keys[koff[e]: koff[e + 1]]).tolist()),
                    bytes(vbuf[voff[e]: voff[e + 1]]),
                )
            )
        flat = sorted(rebuilt)
        expected_payloads = sorted([b"PP", b"PP", b"\x07", b"\x09"])
        if strategy is PAY_ONE_B:
            # one entry per cell, payload duplicated
            assert sorted(p for _, p in flat) == expected_payloads
            assert all(len(cells) == 1 for cells, _ in flat)
        else:
            assert sum(len(cells) for cells, _ in flat) == 4
