"""Unit + property tests for the log-structured hash store and blob store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.kvstore import BlobStore, HashStore


class TestHashStoreBasics:
    def test_fixed_values_roundtrip(self):
        store = HashStore()
        store.put_many_fixed(np.asarray([5, 9, 5]), np.asarray([100, 200, 300]))
        qidx, refs = store.lookup_refs(np.asarray([9, 5, 7]))
        by_query = {}
        for qi, ref in zip(qidx, refs):
            by_query.setdefault(int(qi), []).append(int(ref))
        assert by_query[0] == [200]
        assert sorted(by_query[1]) == [100, 300]  # multimap: both kept
        assert 2 not in by_query

    def test_shared_value_duplicated(self):
        store = HashStore()
        store.put_many_shared(np.asarray([1, 2, 3]), b"abc")
        _, values = store.lookup_many(np.asarray([2]))
        assert values == [b"abc"]
        # duplication is physical: 3 keys * (8 + 3) bytes
        assert store.disk_bytes() == 3 * 8 + 9

    def test_put_one_and_variable_values(self):
        store = HashStore()
        store.put_one(7, b"xyz")
        store.put_one(7, b"ab")
        qidx, values = store.lookup_many(np.asarray([7]))
        assert sorted(values) == [b"ab", b"xyz"]

    def test_empty_lookup(self):
        store = HashStore()
        qidx, values = store.lookup_many(np.asarray([1, 2]))
        assert qidx.size == 0 and values == []

    def test_lookup_refs_rejects_variable_width(self):
        store = HashStore()
        store.put_one(1, b"abc")
        with pytest.raises(StorageError):
            store.lookup_refs(np.asarray([1]))

    def test_offsets_validation(self):
        store = HashStore()
        with pytest.raises(StorageError):
            store.put_many(np.asarray([1]), b"ab", np.asarray([0, 1, 2]))
        with pytest.raises(StorageError):
            store.put_many(np.asarray([1]), b"ab", np.asarray([0, 1]))  # does not span

    def test_scan_order_and_content(self):
        store = HashStore()
        store.put_many_fixed(np.asarray([3, 1, 2]), np.asarray([30, 10, 20]))
        entries = list(store.scan())
        assert [k for k, _ in entries] == [1, 2, 3]  # sorted segment
        assert np.frombuffer(entries[0][1], dtype="<i8")[0] == 10

    def test_incremental_puts_refinalize(self):
        store = HashStore()
        store.put_many_fixed(np.asarray([1]), np.asarray([10]))
        assert store.lookup_refs(np.asarray([1]))[1].tolist() == [10]
        store.put_many_fixed(np.asarray([2]), np.asarray([20]))
        qidx, refs = store.lookup_refs(np.asarray([1, 2]))
        assert sorted(refs.tolist()) == [10, 20]

    def test_keys_array_sorted_with_duplicates(self):
        store = HashStore()
        store.put_many_fixed(np.asarray([4, 4, 1]), np.asarray([0, 1, 2]))
        assert store.keys_array().tolist() == [1, 4, 4]

    def test_clear(self):
        store = HashStore()
        store.put_one(1, b"x")
        store.clear()
        assert store.n_entries == 0
        assert store.disk_bytes() == 0


class TestHashStorePersistence:
    def test_flush_and_load(self, tmp_path):
        store = HashStore()
        keys = np.asarray([10, 20, 30])
        store.put_many_fixed(keys, keys * 7)
        path = str(tmp_path / "seg.bin")
        written = store.flush(path)
        assert written > 0
        loaded = HashStore.load(path)
        qidx, refs = loaded.lookup_refs(keys)
        assert sorted(refs.tolist()) == [70, 140, 210]

    def test_flush_empty(self, tmp_path):
        store = HashStore()
        path = str(tmp_path / "empty.bin")
        store.flush(path)
        loaded = HashStore.load(path)
        assert loaded.n_entries == 0


@st.composite
def key_value_batches(draw):
    n = draw(st.integers(1, 80))
    keys = draw(
        st.lists(st.integers(0, 50), min_size=n, max_size=n)
    )
    values = draw(st.lists(st.integers(-1000, 1000), min_size=n, max_size=n))
    return np.asarray(keys, dtype=np.int64), np.asarray(values, dtype=np.int64)


class TestHashStoreProperties:
    @given(key_value_batches(), st.lists(st.integers(0, 60), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_lookup_matches_reference_multimap(self, batch, query):
        keys, values = batch
        store = HashStore()
        store.put_many_fixed(keys, values)
        reference: dict[int, list[int]] = {}
        for k, v in zip(keys, values):
            reference.setdefault(int(k), []).append(int(v))
        query_arr = np.asarray(query, dtype=np.int64)
        qidx, refs = store.lookup_refs(query_arr)
        got: dict[int, list[int]] = {}
        for qi, ref in zip(qidx, refs):
            got.setdefault(int(qi), []).append(int(ref))
        # every query *position* independently sees the full multimap bucket
        for pos, key in enumerate(query):
            assert sorted(got.get(pos, [])) == sorted(reference.get(key, []))

    @given(key_value_batches())
    @settings(max_examples=50, deadline=None)
    def test_disk_bytes_accounts_keys_and_values(self, batch):
        keys, values = batch
        store = HashStore()
        store.put_many_fixed(keys, values)
        store.finalize()
        assert store.disk_bytes() == keys.size * 8 + values.size * 8


class TestBlobStore:
    def test_append_get(self):
        blobs = BlobStore()
        a = blobs.append(b"hello")
        b = blobs.append(b"world!")
        assert blobs.get(a) == b"hello"
        assert blobs.get(b) == b"world!"
        assert len(blobs) == 2

    def test_append_many(self):
        blobs = BlobStore()
        ids = blobs.append_many([b"a", b"bb", b"ccc"])
        assert ids.tolist() == [0, 1, 2]
        assert blobs.get_many(ids) == [b"a", b"bb", b"ccc"]

    def test_unknown_id(self):
        blobs = BlobStore()
        with pytest.raises(StorageError):
            blobs.get(3)

    def test_disk_accounting(self):
        blobs = BlobStore()
        blobs.append(b"12345")
        assert blobs.disk_bytes() == 5 + 8

    def test_flush(self, tmp_path):
        blobs = BlobStore()
        blobs.append(b"payload")
        written = blobs.flush(str(tmp_path / "blobs.bin"))
        assert written > 7

    def test_clear(self):
        blobs = BlobStore()
        blobs.append(b"x")
        blobs.clear()
        assert len(blobs) == 0 and blobs.disk_bytes() == 0
