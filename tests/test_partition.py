"""Partitioned catalog + scatter-gather serving (:mod:`repro.storage.partition`).

Five contracts under test:

* equivalence — a Hypothesis property asserts a partitioned catalog
  answers every backward/forward/matched/mismatched query *identically*
  to the monolithic flush of the same stores, for all four Full
  strategies and both hash and explicit node assignment (the partition
  merge rides the same :class:`~repro.core.overlay.OverlayStore` union as
  generations, so equality is structural, not approximate);
* targeted routing — a mapped node's read probes only its owning
  partition (counter-asserted against every other partition's open
  count), while unmapped nodes broadcast;
* failure isolation — a torn partition (corrupt child manifest) degrades
  only its own nodes; recovery quarantines it in the root manifest and
  every other partition keeps serving;
* per-partition compaction — parallel compaction across partitions
  reclaims the same bytes and leaves the same answers as sequential,
  and a node-targeted sweep touches only the owning partition;
* facade threading — ``flush_lineage(partitions=N)`` →
  ``load_lineage`` auto-detection → scatter-planned queries round-trip
  through the :class:`~repro.core.subzero.SubZero` API.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings

from repro import FULL_ONE_B, PAY_ONE_B, SciArray
from repro.core.catalog import StoreCatalog
from repro.core.lineage_store import make_store
from repro.core.overlay import OverlayStore
from repro.core.query import QueryRequest
from repro.core.runtime import LineageRuntime
from repro.core.subzero import SubZero
from repro.errors import LineageError, StorageError
from repro.storage.partition import (
    PARTITIONS_MANIFEST,
    PartitionedCatalog,
    assign_partition,
    is_partitioned_root,
)
from repro.workflow.executor import execute_workflow
from repro.workflow.recovery import recover_lineage
from tests.conftest import build_spot_spec
from tests.test_segments import ALL_FULL, SHAPE, _answers, sinks

NODES = ["alpha", "beta", "gamma", "delta"]


def _fixed_sink(seed=0):
    """A small deterministic sink + query for the non-property tests
    (the Hypothesis property owns the randomised coverage)."""
    from repro.arrays import coords as C
    from repro.core.model import BufferSink, RegionPair

    gen = np.random.default_rng(seed)
    sink = BufferSink()
    size = SHAPE[0] * SHAPE[1]
    for _ in range(3):
        outs = np.unique(gen.integers(0, size, 3).astype(np.int64))
        ins = np.unique(gen.integers(0, size, 5).astype(np.int64))
        sink.add_pair(
            RegionPair(
                outcells=C.unpack_coords(outs, SHAPE),
                incells=(C.unpack_coords(ins, SHAPE),),
            )
        )
    query = np.unique(gen.integers(0, size, 6).astype(np.int64))
    return sink, query


def _filled_stores(strategy, sink):
    """The same sink ingested under every test node — distinct store
    objects (stores are single-owner), identical lineage."""
    stores = {}
    for node in NODES:
        store = make_store(node, strategy, SHAPE, (SHAPE,))
        store.ingest(sink)
        stores[(node, strategy)] = store
    return stores


# -- partitioned ≡ monolithic (Hypothesis property) ---------------------------


class TestEquivalenceProperty:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(case=sinks())
    @settings(max_examples=10, deadline=None)
    def test_partitioned_answers_equal_monolith(
        self, strategy, case, tmp_path_factory
    ):
        sink, query = case
        base = tmp_path_factory.mktemp("equiv")
        mono_dir, part_dir = str(base / "mono"), str(base / "part")

        mono, _ = StoreCatalog.write(mono_dir, _filled_stores(strategy, sink))
        part, _ = PartitionedCatalog.write(
            part_dir, _filled_stores(strategy, sink), partitions=3
        )
        try:
            assert is_partitioned_root(part_dir)
            assert sorted(part.keys()) == sorted(mono.keys())
            for node in NODES:
                m = mono.borrow(node, strategy)
                p = part.borrow(node, strategy)
                try:
                    assert _answers(p.store, strategy, query) == _answers(
                        m.store, strategy, query
                    )
                finally:
                    mono.release(m)
                    part.release(p)
        finally:
            mono.close()
            part.close()

    @given(case=sinks())
    @settings(max_examples=10, deadline=None)
    def test_explicit_assignment_equals_hash(self, case, tmp_path_factory):
        sink, query = case
        strategy = ALL_FULL[0]
        base = tmp_path_factory.mktemp("explicit")
        mapping = {"alpha": "hot", "beta": "hot", "gamma": "cold", "delta": "cold"}
        part, _ = PartitionedCatalog.write(
            str(base / "p"), _filled_stores(strategy, sink), partitions=mapping
        )
        mono, _ = StoreCatalog.write(
            str(base / "m"), _filled_stores(strategy, sink)
        )
        try:
            assert sorted(part.partition_ids()) == ["cold", "hot"]
            assert part.partition_for_node("beta") == "hot"
            for node in NODES:
                p = part.borrow(node, strategy)
                m = mono.borrow(node, strategy)
                try:
                    assert _answers(p.store, strategy, query) == _answers(
                        m.store, strategy, query
                    )
                finally:
                    part.release(p)
                    mono.release(m)
        finally:
            part.close()
            mono.close()


# -- targeted routing (counter-asserted) --------------------------------------


class TestScatterRouting:
    def _four_way(self, tmp_path, strategy=FULL_ONE_B):
        sink, _ = _fixed_sink()
        mapping = {node: f"p{i}" for i, node in enumerate(NODES)}
        part, _ = PartitionedCatalog.write(
            str(tmp_path / "part"),
            _filled_stores(strategy, sink),
            partitions=mapping,
        )
        return part

    def test_targeted_read_probes_only_owner(self, tmp_path):
        part = self._four_way(tmp_path)
        try:
            assert len(part.partition_ids()) == 4
            owner = part.partition_for_node("beta")
            record = part.borrow("beta", FULL_ONE_B)
            assert record is not None
            part.release(record)
            probes = part.probes_by_partition()
            assert probes[owner] == 1
            for pid in part.partition_ids():
                if pid != owner:
                    assert probes[pid] == 0, f"partition {pid} was probed"
                    # the decisive counter: no store was ever opened there
                    assert part.partition(pid).open_count() == 0
            stats = part.stats()
            assert stats["targeted_probes"] == 1
            assert stats["broadcast_probes"] == 0
        finally:
            part.close()

    def test_unmapped_node_broadcasts(self, tmp_path):
        part = self._four_way(tmp_path)
        try:
            assert part.partition_for_node("nope") is None
            assert part.partition_fanout("nope") == 4
            assert part.borrow("nope", FULL_ONE_B) is None
            assert part.stats()["broadcast_probes"] == 4
        finally:
            part.close()

    def test_multi_partition_key_merges_via_overlay(self, tmp_path):
        # force one key into two partitions by writing it under both
        # explicit ids, then borrowing through a map that no longer
        # covers it — the union must be a kind="partition" overlay
        sink, query = _fixed_sink()
        strategy = FULL_ONE_B
        stores = {}
        for node in ("dup", "other"):
            store = make_store(node, strategy, SHAPE, (SHAPE,))
            store.ingest(sink)
            stores[(node, strategy)] = store
        part, _ = PartitionedCatalog.write(
            str(tmp_path / "p"), stores, partitions={"dup": "a", "other": "b"}
        )
        part.close()
        # graft dup's segment into partition b as well, then drop the map
        # entry so reads broadcast and see both copies
        dup_store = make_store("dup", strategy, SHAPE, (SHAPE,))
        dup_store.ingest(sink)
        child = StoreCatalog.open(str(tmp_path / "p" / "b"))
        child.append_stores({("dup", strategy): dup_store})
        child.close()
        part = PartitionedCatalog.open(str(tmp_path / "p"))
        try:
            part._node_map.pop("dup")
            record = part.borrow("dup", strategy)
            assert isinstance(record.store, OverlayStore)
            assert record.store.kind == "partition"
            assert record.store.sources == 2
            # duplicated lineage unions to the same *set* answer as one
            # copy (the union concatenates cell lists, so exact-duplicate
            # members repeat their cells — same contract as generations)
            solo = make_store("dup", strategy, SHAPE, (SHAPE,))
            solo.ingest(sink)
            got = _answers(record.store, strategy, query)
            want = _answers(solo, strategy, query)
            assert got[0] == want[0]  # verdicts OR-merge exactly
            assert [sorted(set(p)) for p in got[1]] == [
                sorted(set(p)) for p in want[1]
            ]
            assert sorted(set(got[2])) == sorted(set(want[2]))
            part.release(record)
        finally:
            part.close()

    def test_query_level_scatter_plan(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        d = str(tmp_path / "cat")
        sz.flush_lineage(d, partitions=4)
        sz.load_lineage(d)
        try:
            # single-node path on a mapped node: targeted plan
            sz.query(QueryRequest.backward([(0, 0)], ["spot"]))
            stats = sz.runtime.serving_stats()
            assert stats["scatter_queries"] == 1
            assert stats["scatter_broadcasts"] == 0
            assert stats["scatter_partitions_matched"] == 1
            # path through an unflushed node: broadcast plan
            sz.query(QueryRequest.backward([(0, 0)], ["spot", "smooth"]))
            stats = sz.runtime.serving_stats()
            assert stats["scatter_queries"] == 2
            assert stats["scatter_broadcasts"] == 1
        finally:
            sz.close()


# -- failure isolation ---------------------------------------------------------


class TestTornPartition:
    def _flushed(self, tmp_path, partitions=3):
        sink, query = _fixed_sink()
        strategy = FULL_ONE_B
        part, _ = PartitionedCatalog.write(
            str(tmp_path / "part"),
            _filled_stores(strategy, sink),
            partitions={node: f"p{i % partitions}" for i, node in enumerate(NODES)},
        )
        part.close()
        return str(tmp_path / "part"), strategy, query

    def test_torn_partition_degrades_only_its_nodes(self, tmp_path):
        directory, strategy, query = self._flushed(tmp_path)
        with open(os.path.join(directory, "p1", "catalog.json"), "w") as fh:
            fh.write("{ torn")
        part = PartitionedCatalog.open(directory)
        try:
            assert [pid for pid, _ in part.degraded] == ["p1"]
            assert part.stats()["partitions_degraded"] == 1
            for node in NODES:
                record = part.borrow(node, strategy)
                if part.partition_for_node(node) == "p1":
                    assert record is None  # degraded: no materialised lineage
                else:
                    assert record is not None  # everything else keeps serving
                    assert _answers(record.store, strategy, query) is not None
                    part.release(record)
        finally:
            part.close()

    def test_recovery_quarantines_torn_partition_persistently(self, tmp_path):
        directory, strategy, _query = self._flushed(tmp_path)
        with open(os.path.join(directory, "p2", "catalog.json"), "w") as fh:
            fh.write("not json")
        runtime = LineageRuntime()
        report = recover_lineage(directory, runtime=runtime)
        try:
            assert not report.ok
            assert report.quarantined_partitions == ["p2"]
            assert any(name.startswith("p2/") for name, _ in report.quarantined)
        finally:
            runtime.close()
        # the verdict persisted: a later plain load skips p2 silently
        fresh = LineageRuntime()
        fresh.load_all(directory)
        try:
            assert fresh.catalog.degraded == []
            assert fresh.catalog.stats()["partitions_degraded"] == 1
            assert fresh.catalog.partition("p2") is None
        finally:
            fresh.close()

    def test_corrupt_segment_quarantines_inside_its_partition(self, tmp_path):
        directory, strategy, _query = self._flushed(tmp_path)
        part = PartitionedCatalog.open(directory)
        victim_node = NODES[0]
        pid = part.partition_for_node(victim_node)
        entry = part.partition(pid).entry(victim_node, strategy)
        part.close()
        seg_path = os.path.join(directory, pid, entry.file)
        raw = bytearray(open(seg_path, "rb").read())
        raw[-10] ^= 0xFF
        open(seg_path, "wb").write(bytes(raw))

        report = recover_lineage(directory)
        try:
            assert report.quarantined_partitions == []  # partition survives
            assert [name for name, _ in report.quarantined] == [
                f"{pid}/{entry.file}"
            ]
            # the partition itself still serves its other nodes
            for node in NODES[1:]:
                if report.catalog.partition_for_node(node) == pid:
                    assert report.catalog.generation_count(node, strategy) >= 0
        finally:
            report.catalog.close()

    def test_append_to_quarantined_partition_rejected(self, tmp_path):
        directory, strategy, _query = self._flushed(tmp_path)
        part = PartitionedCatalog.open(directory)
        part.mark_quarantined("p0")
        victim = next(
            n for n in NODES if part.partition_for_node(n) == "p0"
        )
        store = make_store(victim, strategy, SHAPE, (SHAPE,))
        with pytest.raises(StorageError, match="quarantined"):
            part.append_stores({(victim, strategy): store})
        part.close()


# -- per-partition compaction ---------------------------------------------------


class TestPartitionCompaction:
    def _with_generations(self, tmp_path, n_appends=2):
        strategy = FULL_ONE_B
        first, query = _fixed_sink()
        directory = str(tmp_path / "part")
        part, _ = PartitionedCatalog.write(
            directory, _filled_stores(strategy, first), partitions=2
        )
        for _ in range(n_appends):
            delta, _ = _fixed_sink(seed=1 + _)
            part.append_stores(_filled_stores(strategy, delta))
        return part, directory, strategy, query

    def test_parallel_equals_sequential(self, tmp_path):
        part, directory, strategy, query = self._with_generations(tmp_path)
        try:
            gens_before = {
                n: part.generation_count(n, strategy) for n in NODES
            }
            assert all(g == 3 for g in gens_before.values())
            before = {}
            for node in NODES:
                record = part.borrow(node, strategy)
                before[node] = _answers(record.store, strategy, query)
                part.release(record)

            report = part.compact(parallel=2)
            assert len(report.compacted) == len(NODES)
            assert report.bytes_reclaimed > 0
            for node in NODES:
                assert part.generation_count(node, strategy) == 1
                record = part.borrow(node, strategy)
                assert _answers(record.store, strategy, query) == before[node]
                part.release(record)
        finally:
            part.close()

    def test_node_targeted_compaction_stays_in_owner(self, tmp_path):
        part, directory, strategy, _query = self._with_generations(tmp_path)
        try:
            node = NODES[0]
            owner = part.partition_for_node(node)
            report = part.compact(node=node)
            assert [key[0] for key in report.compacted] == [node]
            # only the owner merged; every other node still has its deltas
            for other in NODES[1:]:
                if part.partition_for_node(other) != owner:
                    assert part.generation_count(other, strategy) == 3
        finally:
            part.close()


# -- facade threading -----------------------------------------------------------


class TestSubZeroPartitioned:
    def test_flush_load_roundtrip(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B, PAY_ONE_B)
        sz.run({"img": image})
        mono_dir, part_dir = str(tmp_path / "mono"), str(tmp_path / "part")
        sz.flush_lineage(mono_dir)
        sz.flush_lineage(part_dir, partitions=2)
        req = QueryRequest.backward([(2, 2), (3, 3)], ["spot", "smooth"])
        want = sz.query(req).coords.tolist()

        loaded = SubZero(build_spot_spec())
        loaded.run({"img": image})
        loaded.runtime.clear_stores()  # serve from the catalog, not memory
        loaded.load_lineage(part_dir)
        try:
            assert isinstance(loaded.runtime.catalog, PartitionedCatalog)
            assert loaded.query(req).coords.tolist() == want
            report = loaded.compact_lineage(parallel=2)
            assert report.compacted == []  # single-generation: nothing to merge
        finally:
            loaded.close()

    def test_append_then_partitions_rejected(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        d = str(tmp_path / "cat")
        sz.flush_lineage(d, partitions=2)
        with pytest.raises(LineageError, match="re-partition"):
            sz.flush_lineage(d, append=True, partitions=4)
        sz.close()

    def test_incremental_append_routes_to_partitions(self, tmp_path, rng):
        image = SciArray.from_numpy(rng.random((16, 18)))
        sz = SubZero(build_spot_spec())
        sz.set_strategy("spot", FULL_ONE_B)
        sz.run({"img": image})
        d = str(tmp_path / "cat")
        sz.flush_lineage(d, partitions=2)
        sz.flush_lineage(d, append=True)  # cold append to a partitioned root
        sz.close()
        runtime = LineageRuntime()
        runtime.load_all(d)
        try:
            assert runtime.catalog.generation_count("spot", FULL_ONE_B) == 2
        finally:
            runtime.close()


# -- manifest hygiene ------------------------------------------------------------


class TestRootManifest:
    def test_stable_hash_assignment(self):
        ids = ["p0", "p1", "p2"]
        for node in NODES:
            assert assign_partition(node, ids) == assign_partition(node, ids)
        with pytest.raises(StorageError):
            assign_partition("x", [])

    def test_newer_version_rejected(self, tmp_path):
        sink, _ = _fixed_sink()
        part, _ = PartitionedCatalog.write(
            str(tmp_path / "p"), _filled_stores(FULL_ONE_B, sink), partitions=2
        )
        part.close()
        import json

        path = os.path.join(str(tmp_path / "p"), PARTITIONS_MANIFEST)
        manifest = json.load(open(path))
        manifest["version"] = 99
        json.dump(manifest, open(path, "w"))
        with pytest.raises(StorageError, match="newer than supported"):
            PartitionedCatalog.open(str(tmp_path / "p"))

    def test_bad_partition_count_rejected(self, tmp_path):
        with pytest.raises(StorageError, match=">= 1 partition"):
            PartitionedCatalog.write(str(tmp_path / "p"), {}, partitions=0)
        with pytest.raises(StorageError, match="non-empty"):
            PartitionedCatalog.write(str(tmp_path / "p"), {}, partitions={})


@pytest.fixture
def rng():
    return np.random.default_rng(7)
