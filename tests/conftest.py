"""Shared fixtures and test operators.

``SpotUDF`` is a miniature cosmic-ray-detector used across the suite: it
supports every lineage mode (Full, Pay, Comp, Blackbox), has data-dependent
region pairs (bright cells depend on a neighbourhood, others map one-to-one),
and is cheap enough for property tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SciArray, WorkflowSpec, ops
from repro.arrays import coords as C
from repro.core.modes import LineageMode
from repro.ops.base import Operator


class SpotUDF(Operator):
    """Threshold detector: bright output cells depend on a (2r+1)^2
    neighbourhood, everything else maps one-to-one."""

    arity = 1
    payload_uniform = False
    entire_array_safe = True

    def __init__(self, thresh: float = 0.8, radius: int = 1, name: str | None = None):
        super().__init__(name)
        self.thresh = float(thresh)
        self.radius = int(radius)
        r = self.radius
        grid = np.meshgrid(np.arange(-r, r + 1), np.arange(-r, r + 1), indexing="ij")
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    def compute(self, inputs):
        values = inputs[0].values()
        return SciArray.from_numpy((values > self.thresh).astype(np.float64), name=self.name)

    def supported_modes(self):
        return frozenset(
            {LineageMode.FULL, LineageMode.PAY, LineageMode.COMP, LineageMode.BLACKBOX}
        )

    def write_lineage(self, inputs, output, ctx):
        mask = output.values() > 0.5
        hot = np.stack(np.nonzero(mask), axis=1).astype(np.int64)
        cold = np.stack(np.nonzero(~mask), axis=1).astype(np.int64)
        if ctx.wants_full:
            for cell in hot:
                neighbours = C.clip_coords(cell + self._offsets, self.input_shapes[0])
                ctx.lwrite(cell.reshape(1, -1), neighbours)
            if cold.shape[0]:
                ctx.lwrite_elementwise(cold, cold)
        if LineageMode.PAY in ctx.cur_modes:
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )
            ctx.lwrite_payload_batch(cold, np.zeros((cold.shape[0], 1), dtype=np.uint8))
        elif LineageMode.COMP in ctx.cur_modes:
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )

    def map_b_many(self, out_coords, input_idx):
        return C.as_coord_array(out_coords, ndim=2)

    def map_f_many(self, in_coords, input_idx):
        return C.as_coord_array(in_coords, ndim=2)

    def map_p_many(self, out_coords, payload, input_idx):
        radius = payload[0]
        if radius == 0:
            return C.as_coord_array(out_coords, ndim=2)
        grid = np.meshgrid(
            np.arange(-radius, radius + 1), np.arange(-radius, radius + 1), indexing="ij"
        )
        offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)
        return ops.dilate_coords(out_coords, offsets, self.input_shapes[0])


def build_spot_spec(thresh: float = 0.6, radius: int = 1) -> WorkflowSpec:
    """smooth -> SpotUDF -> scale, over one image source."""
    spec = WorkflowSpec(name="spot")
    spec.add_source("img")
    spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3)), ["img"])
    spec.add_node("spot", SpotUDF(thresh=thresh, radius=radius), ["smooth"])
    spec.add_node("scale", ops.Scale(2.0), ["spot"])
    return spec


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_image(rng):
    return SciArray.from_numpy(rng.random((20, 26)))


@pytest.fixture
def spot_spec():
    return build_spot_spec()
