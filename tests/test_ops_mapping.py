"""Mapping-function correctness for every built-in operator.

Two layers: hand-computed cases per operator, and the *duality property* —
``c in map_b(o)`` iff ``o in map_f(c)`` — checked by brute force over whole
(small) arrays for every operator in the catalogue.  The duality is exactly
what makes backward and forward queries consistent with each other.
"""

import numpy as np
import pytest

from repro import SciArray, ops
from repro.arrays import coords as C
from repro.arrays.schema import ArraySchema
from repro.core.modes import LineageMode


def bind(op, *shapes):
    op.bind(tuple(ArraySchema.dense(s) for s in shapes))
    return op


def brute_force_duality(op, tolerate_superset=False):
    """Check map_b/map_f agree cell-by-cell across all inputs."""
    out_shape = op.output_shape
    for idx in range(op.arity):
        in_shape = op.input_shapes[idx]
        forward: dict[tuple, set] = {}
        for in_cell in C.all_coords(in_shape):
            outs = op.map_f_many(in_cell.reshape(1, -1), idx)
            forward[tuple(in_cell)] = {tuple(o) for o in outs}
        for out_cell in C.all_coords(out_shape):
            ins = op.map_b_many(out_cell.reshape(1, -1), idx)
            for in_cell in ins:
                assert tuple(out_cell) in forward[tuple(in_cell)], (
                    f"{op.name}: {tuple(in_cell)} in map_b({tuple(out_cell)}) but "
                    f"{tuple(out_cell)} not in map_f({tuple(in_cell)})"
                )
        # and the reverse inclusion
        backward: dict[tuple, set] = {}
        for out_cell in C.all_coords(out_shape):
            ins = op.map_b_many(out_cell.reshape(1, -1), idx)
            backward[tuple(out_cell)] = {tuple(i) for i in ins}
        for in_cell, outs in forward.items():
            for out_cell in outs:
                assert in_cell in backward[out_cell], (
                    f"{op.name}: {tuple(out_cell)} in map_f({tuple(in_cell)}) but "
                    f"{tuple(in_cell)} not in map_b({tuple(out_cell)})"
                )


DUALITY_CASES = [
    (lambda: bind(ops.Scale(2.0), (4, 5)), None),
    (lambda: bind(ops.Threshold(0.5), (3, 3)), None),
    (lambda: bind(ops.Add(), (3, 4), (3, 4)), None),
    (lambda: bind(ops.BroadcastSubtract(), (3, 4), (1,)), None),
    (lambda: bind(ops.Transpose(), (3, 5)), None),
    (lambda: bind(ops.MatMul(), (3, 4), (4, 2)), None),
    (lambda: bind(ops.MatrixInverse(), (3, 3)), None),
    (lambda: bind(ops.Convolve2D(ops.gaussian_kernel(3)), (5, 6)), None),
    (lambda: bind(ops.SliceOp((1, 1), (3, 4)), (5, 6)), None),
    (lambda: bind(ops.Concat(axis=0), (2, 3), (4, 3)), None),
    (lambda: bind(ops.Concat(axis=1, arity=3), (2, 2), (2, 3), (2, 1)), None),
    (lambda: bind(ops.Subsample((2, 3)), (6, 9)), None),
    (lambda: bind(ops.Reshape((2, 6)), (3, 4)), None),
    (lambda: bind(ops.Pad((1, 0), (0, 2)), (3, 3)), None),
    (lambda: bind(ops.Reduce(axis=0), (4, 3)), None),
    (lambda: bind(ops.Reduce(axis=1), (4, 3)), None),
    (lambda: bind(ops.Reduce(axis=0), (5,)), None),
    (lambda: bind(ops.GlobalMean(), (3, 4)), None),
    (lambda: bind(ops.Standardize(), (3, 3)), None),
    (lambda: bind(ops.CumulativeSum(axis=0), (4, 3)), None),
    (lambda: bind(ops.CumulativeSum(axis=1), (3, 4)), None),
    (lambda: bind(ops.AttributeJoin(), (3, 3), (3, 3)), None),
    (lambda: bind(ops.CrossProduct(), (3,), (4,)), None),
    (lambda: bind(ops.Shift((1, -2)), (5, 6)), None),
    (lambda: bind(ops.Flip(axis=0), (4, 5)), None),
    (lambda: bind(ops.Flip(axis=1), (4, 5)), None),
    (lambda: bind(ops.Rotate90(), (3, 5)), None),
    (lambda: bind(ops.WindowReduce(3, "median"), (5, 6)), None),
]


@pytest.mark.parametrize(
    "factory", [case[0] for case in DUALITY_CASES],
    ids=[case[0]().name for case in DUALITY_CASES],
)
def test_map_duality(factory):
    brute_force_duality(factory())


class TestElementwiseCompute:
    def test_scale(self):
        op = bind(ops.Scale(3.0), (2, 2))
        out = op.compute([SciArray.from_numpy(np.ones((2, 2)))])
        assert (out.values() == 3.0).all()

    def test_threshold_binary_output(self):
        op = bind(ops.Threshold(0.5), (2, 2))
        out = op.compute([SciArray.from_numpy(np.asarray([[0.1, 0.9], [0.5, 0.6]]))])
        assert out.values().tolist() == [[0.0, 1.0], [0.0, 1.0]]

    def test_clip_bounds_validated(self):
        with pytest.raises(Exception):
            ops.Clip(2.0, 1.0)

    def test_divide_by_zero_guarded(self):
        op = bind(ops.Divide(), (1, 2), (1, 2))
        out = op.compute(
            [
                SciArray.from_numpy(np.asarray([[4.0, 6.0]])),
                SciArray.from_numpy(np.asarray([[2.0, 0.0]])),
            ]
        )
        assert np.isfinite(out.values()).all()

    def test_divide_constant_zero_rejected(self):
        with pytest.raises(Exception):
            ops.DivideConstant(0.0)

    def test_binary_shape_mismatch(self):
        op = ops.Add()
        with pytest.raises(Exception):
            op.bind((ArraySchema.dense((2, 2)), ArraySchema.dense((3, 3))))

    def test_broadcast_needs_scalar(self):
        op = ops.BroadcastSubtract()
        with pytest.raises(Exception):
            op.bind((ArraySchema.dense((2, 2)), ArraySchema.dense((2, 2))))

    def test_broadcast_compute(self):
        op = bind(ops.BroadcastSubtract(), (2, 2), (1,))
        out = op.compute(
            [
                SciArray.from_numpy(np.full((2, 2), 5.0)),
                SciArray.from_numpy(np.asarray([2.0])),
            ]
        )
        assert (out.values() == 3.0).all()


class TestLinalgCompute:
    def test_transpose(self):
        op = bind(ops.Transpose(), (2, 3))
        out = op.compute([SciArray.from_numpy(np.arange(6).reshape(2, 3).astype(float))])
        assert out.shape == (3, 2)
        assert out.values()[2, 1] == 5.0

    def test_transpose_requires_2d(self):
        with pytest.raises(Exception):
            ops.Transpose().bind((ArraySchema.dense((2, 2, 2)),))

    def test_matmul(self):
        op = bind(ops.MatMul(), (2, 3), (3, 2))
        a = np.arange(6).reshape(2, 3).astype(float)
        b = np.arange(6).reshape(3, 2).astype(float)
        out = op.compute([SciArray.from_numpy(a), SciArray.from_numpy(b)])
        assert np.allclose(out.values(), a @ b)

    def test_matmul_inner_dim_checked(self):
        with pytest.raises(Exception):
            ops.MatMul().bind((ArraySchema.dense((2, 3)), ArraySchema.dense((2, 3))))

    def test_matmul_map_b_is_row_and_column(self):
        op = bind(ops.MatMul(), (3, 4), (4, 2))
        ins_a = op.map_b((1, 0), 0)
        assert {tuple(c) for c in ins_a} == {(1, k) for k in range(4)}
        ins_b = op.map_b((1, 0), 1)
        assert {tuple(c) for c in ins_b} == {(k, 0) for k in range(4)}

    def test_inverse_all_to_all(self):
        op = bind(ops.MatrixInverse(), (3, 3))
        assert op.all_to_all
        ins = op.map_b((0, 0), 0)
        assert ins.shape[0] == 9

    def test_inverse_requires_square(self):
        with pytest.raises(Exception):
            ops.MatrixInverse().bind((ArraySchema.dense((2, 3)),))


class TestConvolution:
    def test_kernel_must_be_odd(self):
        with pytest.raises(Exception):
            ops.Convolve2D(np.ones((2, 2)))

    def test_gaussian_kernel_normalised(self):
        k = ops.gaussian_kernel(5, 1.5)
        assert k.shape == (5, 5)
        assert abs(k.sum() - 1.0) < 1e-12

    def test_gaussian_kernel_odd_size_required(self):
        with pytest.raises(Exception):
            ops.gaussian_kernel(4)

    def test_map_b_interior(self):
        op = bind(ops.Convolve2D(ops.gaussian_kernel(3)), (10, 10))
        ins = op.map_b((5, 5), 0)
        assert ins.shape[0] == 9

    def test_map_b_corner_clipped(self):
        op = bind(ops.Convolve2D(ops.gaussian_kernel(3)), (10, 10))
        ins = op.map_b((0, 0), 0)
        assert ins.shape[0] == 4

    def test_compute_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(0)
        img = rng.random((8, 8))
        kernel = ops.gaussian_kernel(3)
        op = bind(ops.Convolve2D(kernel), (8, 8))
        out = op.compute([SciArray.from_numpy(img)])
        assert np.allclose(out.values(), ndimage.convolve(img, kernel, mode="constant"))


class TestReshapeOps:
    def test_slice_bounds_checked(self):
        with pytest.raises(Exception):
            bind(ops.SliceOp((0, 0), (9, 9)), (5, 5))

    def test_slice_compute(self):
        op = bind(ops.SliceOp((1, 1), (3, 3)), (4, 4))
        out = op.compute([SciArray.from_numpy(np.arange(16).reshape(4, 4).astype(float))])
        assert out.shape == (2, 2)
        assert out.values()[0, 0] == 5.0

    def test_concat_compute_and_offsets(self):
        op = bind(ops.Concat(axis=0), (2, 3), (1, 3))
        a = SciArray.from_numpy(np.zeros((2, 3)))
        b = SciArray.from_numpy(np.ones((1, 3)))
        out = op.compute([a, b])
        assert out.shape == (3, 3)
        assert op.map_b((2, 1), 1).tolist() == [[0, 1]]
        assert op.map_b((0, 1), 1).shape[0] == 0  # outside input 1

    def test_concat_mismatched_extents(self):
        with pytest.raises(Exception):
            bind(ops.Concat(axis=0), (2, 3), (1, 4))

    def test_subsample(self):
        op = bind(ops.Subsample((2, 2)), (4, 4))
        out = op.compute([SciArray.from_numpy(np.arange(16).reshape(4, 4).astype(float))])
        assert out.shape == (2, 2)
        assert out.values()[1, 1] == 10.0

    def test_reshape_size_checked(self):
        with pytest.raises(Exception):
            bind(ops.Reshape((5, 5)), (3, 4))

    def test_pad(self):
        op = bind(ops.Pad((1, 1), (1, 1)), (2, 2))
        out = op.compute([SciArray.from_numpy(np.ones((2, 2)))])
        assert out.shape == (4, 4)
        assert out.values()[0, 0] == 0.0
        # border cells have empty backward lineage
        assert op.map_b((0, 0), 0).shape[0] == 0


class TestAggregates:
    def test_reduce_axis0(self):
        op = bind(ops.Reduce(axis=0, fn=np.sum), (3, 2))
        out = op.compute([SciArray.from_numpy(np.ones((3, 2)))])
        assert out.shape == (2,)
        assert (out.values() == 3.0).all()

    def test_reduce_1d_to_cell(self):
        op = bind(ops.Reduce(axis=0, fn=np.sum), (5,))
        out = op.compute([SciArray.from_numpy(np.ones(5))])
        assert out.shape == (1,)
        assert out.values()[0] == 5.0

    def test_global_mean(self):
        op = bind(ops.GlobalMean(), (2, 2))
        out = op.compute([SciArray.from_numpy(np.asarray([[1.0, 2.0], [3.0, 4.0]]))])
        assert out.values()[0] == 2.5
        assert op.all_to_all

    def test_standardize(self):
        op = bind(ops.Standardize(), (2, 2))
        out = op.compute([SciArray.from_numpy(np.asarray([[1.0, 2.0], [3.0, 4.0]]))])
        assert abs(out.values().mean()) < 1e-12

    def test_standardize_constant_input(self):
        op = bind(ops.Standardize(), (2, 2))
        out = op.compute([SciArray.from_numpy(np.ones((2, 2)))])
        assert np.isfinite(out.values()).all()

    def test_cumsum_map_b(self):
        op = bind(ops.CumulativeSum(axis=1), (2, 4))
        ins = op.map_b((0, 2), 0)
        assert {tuple(c) for c in ins} == {(0, 0), (0, 1), (0, 2)}

    def test_cumsum_compute(self):
        op = bind(ops.CumulativeSum(axis=0), (3, 1))
        out = op.compute([SciArray.from_numpy(np.ones((3, 1)))])
        assert out.values()[:, 0].tolist() == [1.0, 2.0, 3.0]


class TestJoinOps:
    def test_attribute_join_schema(self):
        op = bind(ops.AttributeJoin(), (2, 2), (2, 2))
        assert op.output_schema.attr_names == ("left", "right")
        out = op.compute(
            [SciArray.from_numpy(np.zeros((2, 2))), SciArray.from_numpy(np.ones((2, 2)))]
        )
        assert out.values("right").sum() == 4.0

    def test_cross_product(self):
        op = bind(ops.CrossProduct(), (2,), (3,))
        out = op.compute(
            [SciArray.from_numpy(np.asarray([1.0, 2.0])), SciArray.from_numpy(np.asarray([3.0, 4.0, 5.0]))]
        )
        assert out.shape == (2, 3)
        assert out.values()[1, 2] == 10.0


class TestOperatorDefaults:
    def test_unbound_access_raises(self):
        op = ops.Scale(1.0)
        with pytest.raises(Exception):
            _ = op.output_shape

    def test_supported_modes_default_blackbox(self):
        class Opaque(ops.Operator):
            def compute(self, inputs):
                return inputs[0]

        assert Opaque().supported_modes() == frozenset({LineageMode.BLACKBOX})

    def test_mapping_ops_declare_map(self):
        assert LineageMode.MAP in ops.Scale(1.0).supported_modes()
        assert LineageMode.MAP in ops.MatMul().supported_modes()

    def test_scalar_map_wrappers(self):
        op = bind(ops.Transpose(), (3, 5))
        assert op.map_b((1, 2)).tolist() == [[2, 1]]
        assert op.map_f((1, 2)).tolist() == [[2, 1]]
