"""Deferred capture correctness: the background encode pipeline.

Three properties of the interactive-speed capture path:

* **deferred == eager** — parking descriptors and lowering them on the
  background worker must answer every query identically to inline
  encoding, across all four Full layouts, matched and mismatched
  orientation (the Hypothesis property).
* **crash containment** — a failure on the background worker (an encode
  job, or a pipelined ``flush_lineage(wait=False)``) surfaces loudly at
  the next join and leaves no torn on-disk state: a previously committed
  generation keeps serving.
* **batch-only capture** — no built-in operator emits lineage through a
  per-pair Python loop; everything arrives at the sink as whole-array
  batch calls (``lwrite_batch`` / ``lwrite_elementwise`` /
  ``lwrite_payload_regions`` / ``lwrite_payload_batch``).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    MAP,
    PAY_ONE_B,
    SciArray,
    SubZero,
)
from repro.arrays import coords as C
from repro.core import lineage_store
from repro.core.capture import CapturePipeline, DeferredSink
from repro.core.model import BufferSink
from repro.core.runtime import LineageRuntime
from repro.errors import StorageError
from repro.storage import segment as segment_mod
from repro.workflow.executor import execute_workflow
from tests.conftest import build_spot_spec
from tests.test_strategy_equivalence import BACKWARD_PATH, FORWARD_PATH, coord_set

ALL_FULL = [FULL_ONE_B, FULL_ONE_F, FULL_MANY_B, FULL_MANY_F]

SHAPE = (12, 15)


def _spot_engine(strategy, image, capture):
    sz = SubZero(build_spot_spec(), enable_query_opt=False, capture=capture)
    sz.set_strategy("smooth", MAP)
    sz.set_strategy("scale", MAP)
    sz.set_strategy("spot", strategy)
    sz.run({"img": image})
    return sz


# -- deferred == eager ---------------------------------------------------------


class TestDeferredEagerEquivalence:
    @pytest.mark.parametrize("strategy", ALL_FULL, ids=lambda s: s.label)
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_same_answers_both_orientations(self, strategy, seed):
        """Backward AND forward queries against every Full layout — each
        strategy therefore serves one matched and one mismatched
        orientation — agree between deferred and eager capture."""
        rng = np.random.default_rng(seed)
        image = SciArray.from_numpy(rng.random(SHAPE))
        out_cells = [
            (int(r), int(c))
            for r, c in zip(
                rng.integers(0, SHAPE[0], size=4), rng.integers(0, SHAPE[1], size=4)
            )
        ]
        in_cells = [
            (int(r), int(c))
            for r, c in zip(
                rng.integers(0, SHAPE[0], size=3), rng.integers(0, SHAPE[1], size=3)
            )
        ]
        answers = {}
        for capture in ("eager", "deferred"):
            sz = _spot_engine(strategy, image, capture)
            back = coord_set(sz.backward_query(out_cells, BACKWARD_PATH))
            fwd = coord_set(sz.forward_query(in_cells, FORWARD_PATH))
            answers[capture] = (back, fwd)
            sz.close()
        assert answers["deferred"] == answers["eager"]

    def test_deferred_runs_use_deferred_sinks(self, rng):
        """The executor hands out DeferredSink (descriptor parking) in the
        default capture mode and plain BufferSink in eager mode."""
        runtime = LineageRuntime(deferred=True)
        assert isinstance(runtime.make_sink(), DeferredSink)
        eager = LineageRuntime(deferred=False)
        sink = eager.make_sink()
        assert isinstance(sink, BufferSink)
        assert not isinstance(sink, DeferredSink)

    def test_capture_counters_populate(self, rng):
        image = SciArray.from_numpy(rng.random(SHAPE))
        sz = _spot_engine(FULL_MANY_B, image, "deferred")
        c = sz.stats.capture
        assert c["deferred_pairs"] > 0
        assert c["deferred_bytes"] > 0
        assert c["capture_seconds"] > 0.0
        assert c["encode_thread_seconds"] > 0.0
        # ...and they surface through the runtime's serving stats
        merged = sz.runtime.serving_stats()
        assert merged["deferred_pairs"] == c["deferred_pairs"]
        sz.close()


# -- crash containment ---------------------------------------------------------


class TestCrashDuringBackgroundEncode:
    def test_encode_failure_surfaces_at_drain(self, monkeypatch, rng):
        """A store that crashes while lowering on the background worker
        fails the run loudly (the end-of-run drain), and close() stays
        safe afterwards."""
        image = SciArray.from_numpy(rng.random(SHAPE))

        def boom(self, sink):
            raise StorageError("simulated encode crash")

        monkeypatch.setattr(lineage_store._FullBackwardMany, "ingest", boom)
        sz = SubZero(build_spot_spec(), enable_query_opt=False, capture="deferred")
        sz.set_strategy("spot", FULL_MANY_B)
        with pytest.raises(StorageError, match="simulated encode crash"):
            sz.run({"img": image})
        sz.close()  # the failure was delivered once; close must not hang

    def test_flush_crash_keeps_prior_generation_serving(
        self, monkeypatch, rng, tmp_path
    ):
        """A pipelined flush that dies on the worker surfaces at close()
        and leaves the directory exactly as the last committed generation
        wrote it (segment writes are write-then-rename)."""
        directory = str(tmp_path)
        image = SciArray.from_numpy(rng.random(SHAPE))

        # generation 0: a clean deferred run, flushed synchronously
        runtime = LineageRuntime(deferred=True)
        runtime.set_strategies("spot", FULL_MANY_B)
        instance = execute_workflow(
            build_spot_spec(), {"img": image}, runtime=runtime
        )
        out_shape = instance.output_shape("spot")
        q = C.pack_coords(
            np.asarray([(3, 3), (7, 7)], dtype=np.int64), out_shape
        )
        baseline = runtime.store_for("spot", FULL_MANY_B).backward_full(q)
        assert runtime.flush_all(directory) > 0
        runtime.close()
        files_before = sorted(os.listdir(directory))

        # generation 1: the background flush crashes mid-write
        def boom(self, path, stale_sink=None):
            raise StorageError("simulated flush crash")

        sz = SubZero(build_spot_spec(), enable_query_opt=False, capture="deferred")
        sz.set_strategy("spot", FULL_MANY_B)
        sz.run({"img": image})
        monkeypatch.setattr(segment_mod.SegmentWriter, "write", boom)
        future = sz.flush_lineage(directory, append=True, wait=False)
        with pytest.raises(StorageError, match="simulated flush crash"):
            sz.close()
        assert isinstance(future.exception(), StorageError)

        # nothing torn: same file set, catalog loads, answers unchanged
        monkeypatch.undo()
        assert sorted(os.listdir(directory)) == files_before
        fresh = LineageRuntime()
        assert fresh.load_all(directory) == 1
        restored = fresh.store_for("spot", FULL_MANY_B).backward_full(q)
        assert (baseline[0] == restored[0]).all()
        assert set(baseline[1][0].tolist()) == set(restored[1][0].tolist())
        fresh.close()

    def test_pipeline_failure_delivered_exactly_once(self):
        """CapturePipeline.drain re-raises the first failure, joins the
        rest, and a later drain/close is clean."""
        pipeline = CapturePipeline()
        ran = []

        def bad():
            raise StorageError("first")

        def good():
            ran.append(True)

        pipeline.submit(bad)
        pipeline.submit(good)
        with pytest.raises(StorageError, match="first"):
            pipeline.drain()
        assert ran == [True]  # later jobs still joined, not abandoned
        pipeline.drain()  # already delivered: clean
        pipeline.close()
        pipeline.close()  # idempotent


# -- batch-only capture --------------------------------------------------------


class TestBatchOnlyCapture:
    @pytest.fixture
    def pair_counter(self, monkeypatch):
        """Counts per-pair vs batch sink calls across every sink type."""
        calls = {"add_pair": 0, "batch": 0}
        orig_pair = BufferSink.add_pair
        orig_region = BufferSink.add_region_batch
        orig_elem = BufferSink.add_elementwise
        orig_payload = BufferSink.add_payload_batch

        def counting_pair(self, pair):
            calls["add_pair"] += 1
            return orig_pair(self, pair)

        def counting_region(self, batch):
            calls["batch"] += 1
            return orig_region(self, batch)

        def counting_elem(self, batch):
            calls["batch"] += 1
            return orig_elem(self, batch)

        def counting_payload(self, batch):
            calls["batch"] += 1
            return orig_payload(self, batch)

        monkeypatch.setattr(BufferSink, "add_pair", counting_pair)
        monkeypatch.setattr(BufferSink, "add_region_batch", counting_region)
        monkeypatch.setattr(BufferSink, "add_elementwise", counting_elem)
        monkeypatch.setattr(BufferSink, "add_payload_batch", counting_payload)
        return calls

    def test_astronomy_udfs_emit_no_per_pair_calls(self, pair_counter):
        from repro.bench.astronomy import UDF_NODES, AstronomyBenchmark

        bench = AstronomyBenchmark(shape=(48, 64), seed=3, n_stars=8, n_cosmic=6)
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        for udf in UDF_NODES:
            sz.set_strategy(udf, FULL_MANY_B, PAY_ONE_B)
        sz.run(bench.inputs())
        assert pair_counter["add_pair"] == 0, (
            "a built-in operator fell back to per-pair emission"
        )
        assert pair_counter["batch"] > 0
        sz.close()

    def test_genomics_udfs_emit_no_per_pair_calls(self, pair_counter):
        from repro.bench.genomics import UDF_NODES, GenomicsBenchmark

        bench = GenomicsBenchmark(scale=25, seed=5)
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        sz.use_mapping_where_possible()
        for udf in UDF_NODES:
            sz.set_strategy(udf, FULL_MANY_B, PAY_ONE_B)
        sz.run(bench.inputs())
        assert pair_counter["add_pair"] == 0, (
            "a built-in operator fell back to per-pair emission"
        )
        assert pair_counter["batch"] > 0
        sz.close()

    def test_micro_synthetic_op_emits_no_per_pair_calls(self, pair_counter):
        from repro.bench.micro import MicroBenchmark

        bench = MicroBenchmark(fanin=9, fanout=2, shape=(40, 40), query_cells=16, seed=0)
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        sz.set_strategy("synthetic", FULL_MANY_B)
        sz.run(bench.inputs())
        assert pair_counter["add_pair"] == 0
        assert pair_counter["batch"] > 0
        sz.close()
