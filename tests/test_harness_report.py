"""Tests for the benchmark harness configs and the result-table renderer."""

import pytest

from repro.bench.harness import (
    ASTRONOMY_CONFIGS,
    GENOMICS_CONFIGS,
    MICRO_CONFIGS,
    micro_overhead_table,
    micro_query_table,
    run_micro,
)
from repro.bench.report import ResultTable


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("t", ["name", "value"])
        table.add_row("a", 1.5)
        table.add_row("bbbb", 123456.0)
        text = table.render()
        assert "== t ==" in text
        assert "123,456" in text

    def test_row_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_small_floats(self):
        table = ResultTable("t", ["v"])
        table.add_row(0.00123)
        assert "0.0012" in table.render()

    def test_notes(self):
        table = ResultTable("t", ["v"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_csv(self, tmp_path):
        table = ResultTable("t", ["a", "b"])
        table.add_row("x", 2.0)
        path = tmp_path / "out.csv"
        table.to_csv(str(path))
        assert path.read_text().splitlines() == ["a,b", "x,2.00"]


class TestConfigs:
    def test_astronomy_matches_table2(self):
        assert set(ASTRONOMY_CONFIGS) == {
            "BlackBox", "BlackBoxOpt", "FullOne", "FullMany", "SubZero",
        }
        assert ASTRONOMY_CONFIGS["BlackBox"]["map_builtins"] is False
        assert ASTRONOMY_CONFIGS["SubZero"]["udf"][0].label == "<-CompOne"

    def test_genomics_matches_table2(self):
        assert set(GENOMICS_CONFIGS) == {
            "BlackBox", "FullOne", "FullMany", "FullForw",
            "FullBoth", "PayOne", "PayMany", "PayBoth",
        }
        labels = [s.label for s in GENOMICS_CONFIGS["PayBoth"]]
        assert labels == ["<-PayOne", "->FullOne"]

    def test_micro_strategies(self):
        assert set(MICRO_CONFIGS) == {
            "<-PayMany", "<-PayOne", "<-FullMany", "<-FullOne", "->FullOne", "BlackBox",
        }
        assert MICRO_CONFIGS["BlackBox"] is None


class TestMicroHarness:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_micro(
            fanins=(1, 4),
            fanouts=(1,),
            configs=["BlackBox", "<-FullOne", "<-PayOne"],
            shape=(60, 60),
            coverage=0.05,
            query_cells=30,
            seed=0,
        )

    def test_row_schema(self, rows):
        assert len(rows) == 2 * 3
        for row in rows:
            assert {"fanin", "fanout", "strategy", "disk_mb", "runtime_s",
                    "overhead_s", "bq_s", "fq_s"} <= set(row)

    def test_blackbox_baseline_subtracted(self, rows):
        blackbox = [r for r in rows if r["strategy"] == "BlackBox"]
        assert all(r["overhead_s"] == 0 for r in blackbox)

    def test_tables_render(self, rows):
        assert "Figure 8" in micro_overhead_table(rows).render()
        fig9 = micro_query_table(rows)
        assert all(r[2] != "BlackBox" for r in fig9.rows)
