"""Unit + property tests for region pairs, sinks, frontiers, query objects."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    BufferSink,
    Direction,
    ElementwiseBatch,
    Frontier,
    LineageQuery,
    PayloadBatch,
    QueryStep,
    RegionPair,
)
from repro.core.modes import (
    BLACKBOX,
    FULL_ONE_B,
    MAP,
    EncodingKind,
    LineageMode,
    Orientation,
    StorageStrategy,
)
from repro.errors import LineageError, QueryError


def cells(*coords):
    return np.asarray(coords, dtype=np.int64)


class TestRegionPair:
    def test_full_pair(self):
        pair = RegionPair(outcells=cells((0, 0), (0, 1)), incells=(cells((1, 1)),))
        assert pair.fanout == 2
        assert pair.fanin(0) == 1
        assert not pair.is_payload

    def test_payload_pair(self):
        pair = RegionPair(outcells=cells((0, 0)), payload=b"x")
        assert pair.is_payload
        with pytest.raises(LineageError):
            pair.fanin(0)

    def test_exactly_one_of_incells_payload(self):
        with pytest.raises(LineageError):
            RegionPair(outcells=cells((0, 0)))
        with pytest.raises(LineageError):
            RegionPair(outcells=cells((0, 0)), incells=(cells((0, 0)),), payload=b"x")

    def test_needs_outcells(self):
        with pytest.raises(LineageError):
            RegionPair(outcells=np.empty((0, 2), dtype=np.int64), payload=b"x")


class TestBatches:
    def test_elementwise_alignment(self):
        with pytest.raises(LineageError):
            ElementwiseBatch(outcells=cells((0, 0)), incells=(cells((0, 0), (1, 1)),))

    def test_payload_batch_ndarray(self):
        batch = PayloadBatch(
            outcells=cells((0, 0), (1, 1)),
            payloads=np.zeros((2, 4), dtype=np.uint8),
        )
        assert batch.count == 2
        assert batch.payload_at(0) == b"\x00" * 4

    def test_payload_batch_list(self):
        batch = PayloadBatch(outcells=cells((0, 0)), payloads=[b"ab"])
        assert batch.payload_at(0) == b"ab"

    def test_payload_batch_misaligned(self):
        with pytest.raises(LineageError):
            PayloadBatch(outcells=cells((0, 0)), payloads=[b"a", b"b"])


class TestBufferSink:
    def test_counts(self):
        sink = BufferSink()
        sink.add_pair(RegionPair(outcells=cells((0, 0)), incells=(cells((1, 1)),)))
        sink.add_elementwise(
            ElementwiseBatch(outcells=cells((0, 0), (1, 1)), incells=(cells((0, 0), (1, 1)),))
        )
        sink.add_payload_batch(
            PayloadBatch(outcells=cells((2, 2)), payloads=[b"p"])
        )
        assert sink.n_pairs == 4
        sink.clear()
        assert sink.n_pairs == 0


class TestFrontier:
    def test_add_and_count(self):
        f = Frontier((3, 3))
        f.add_coords(cells((0, 0), (2, 2), (0, 0)))
        assert f.count == 2
        assert (0, 0) in f
        assert (1, 1) not in f

    def test_packed_roundtrip(self):
        f = Frontier((3, 4))
        f.add_packed(np.asarray([0, 5, 11]))
        assert sorted(f.packed().tolist()) == [0, 5, 11]

    def test_full_and_empty(self):
        f = Frontier((2, 2))
        assert f.is_empty
        f.set_all()
        assert f.is_full
        assert Frontier.full((2, 2)).is_full

    def test_mask_shape_checked(self):
        with pytest.raises(QueryError):
            Frontier((2, 2), mask=np.zeros((3, 3), dtype=bool))

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 9)), max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_frontier_is_a_set(self, points):
        f = Frontier((8, 10))
        if points:
            f.add_coords(np.asarray(points, dtype=np.int64))
        assert f.count == len(set(points))
        assert {tuple(c) for c in f.coords()} == set(points)


class TestLineageQuery:
    def test_path_coercion(self):
        q = LineageQuery(
            cells=cells((0, 0)),
            path=(("n1", 0), QueryStep("n2", 1)),
            direction=Direction.BACKWARD,
        )
        assert q.path[0] == QueryStep("n1", 0)
        assert q.path[1].input_idx == 1

    def test_empty_path_rejected(self):
        with pytest.raises(QueryError):
            LineageQuery(cells=cells((0, 0)), path=(), direction=Direction.FORWARD)


class TestStorageStrategy:
    def test_labels(self):
        assert FULL_ONE_B.label == "<-FullOne"
        assert MAP.label == "Map"
        assert BLACKBOX.label == "Blackbox"

    def test_stored_modes_need_encoding(self):
        with pytest.raises(LineageError):
            StorageStrategy(LineageMode.FULL)

    def test_unstored_modes_reject_encoding(self):
        with pytest.raises(LineageError):
            StorageStrategy(LineageMode.MAP, EncodingKind.ONE, Orientation.BACKWARD)

    def test_payload_cannot_be_forward(self):
        with pytest.raises(LineageError):
            StorageStrategy(LineageMode.PAY, EncodingKind.ONE, Orientation.FORWARD)

    def test_forward_label(self):
        s = StorageStrategy(LineageMode.FULL, EncodingKind.MANY, Orientation.FORWARD)
        assert s.label == "->FullMany"
