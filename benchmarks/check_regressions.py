#!/usr/bin/env python
"""Compare a bench run's ``BENCH_<name>.json`` files against committed
baselines, so perf trajectory is a diff CI reads — not a text table a
human has to.

Usage::

    python benchmarks/check_regressions.py [--require] [BENCH_*.json ...]

With no file arguments, every ``BENCH_*.json`` in the working directory is
checked.  ``--require`` makes a *missing* produced file a failure — used
by jobs whose bench step is continue-on-error, where a bench that crashed
before publishing its metrics must not slip through as green.  For each produced file, the committed baseline
``benchmarks/baselines/BENCH_<name>.json`` declares acceptable ranges::

    {"metrics": {"append_bytes_ratio": {"min": 4.0},
                 "read_amp_compacted": {"max": 1.6},
                 "generations_after":  {"min": 1, "max": 1}}}

Rules, tuned to be *non-flaky* on shared CI runners:

* Only metrics named in the baseline are compared (extra produced metrics
  are informational — absolute wall-clock numbers live there).
* Baseline bounds should be ratios and counters with generous slack, never
  tight absolute timings.
* A produced file missing a baselined metric FAILS (the bench silently
  stopped measuring something).
* A produced file with no committed baseline is reported and skipped; a
  missing produced file is reported and skipped (the bench itself failing
  is surfaced by its own CI step).

Exit status 0 when every compared metric is in range, 1 otherwise.
"""

from __future__ import annotations

import glob
import json
import os
import sys

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines")


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def check_file(produced_path: str, require: bool = False) -> tuple[int, int]:
    """Check one produced file; returns (compared, failures)."""
    name = os.path.basename(produced_path)
    baseline_path = os.path.join(BASELINE_DIR, name)
    if not os.path.exists(produced_path):
        if require:
            print(f"FAIL {name}: required but not produced by this run")
            return 1, 1
        print(f"SKIP {name}: not produced by this run")
        return 0, 0
    if not os.path.exists(baseline_path):
        print(f"SKIP {name}: no committed baseline (add one under benchmarks/baselines/)")
        return 0, 0
    produced = _load(produced_path).get("metrics", {})
    baseline = _load(baseline_path).get("metrics", {})
    compared = failures = 0
    for metric, bounds in sorted(baseline.items()):
        compared += 1
        if metric not in produced:
            print(f"FAIL {name}: metric {metric!r} missing from this run")
            failures += 1
            continue
        value = produced[metric]
        lo = bounds.get("min")
        hi = bounds.get("max")
        ok = (lo is None or value >= lo) and (hi is None or value <= hi)
        bound_str = "[{}, {}]".format(
            "-inf" if lo is None else lo, "inf" if hi is None else hi
        )
        status = "ok  " if ok else "FAIL"
        print(f"{status} {name}: {metric} = {value:g}  expected {bound_str}")
        if not ok:
            failures += 1
    return compared, failures


def main(argv: list[str]) -> int:
    require = "--require" in argv
    paths = [a for a in argv if a != "--require"] or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files to check")
        return 1 if require else 0
    total = bad = 0
    for path in paths:
        compared, failures = check_file(path, require=require)
        total += compared
        bad += failures
    print(f"\nchecked {total} baselined metrics, {bad} out of range")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
