"""Figure 9: microbenchmark backward-query cost vs fanin.

Backward queries over 1000 output cells against the backward-optimized
strategies.  Expected shape (paper): the *One layouts answer with direct
hash lookups and beat the *Many layouts, which pay a spatial-index probe
per query cell; payload query cost stays flat as fanin grows.
"""

import pytest

from repro import SubZero
from repro.bench.harness import MICRO_CONFIGS, micro_query_table, run_micro
from repro.bench.micro import MicroBenchmark

from conftest import MICRO_FANINS, MICRO_FANOUTS, MICRO_QUERY_CELLS, MICRO_SHAPE

BACKWARD_STRATEGIES = ["<-PayMany", "<-PayOne", "<-FullMany", "<-FullOne"]


@pytest.fixture(scope="module")
def micro_rows():
    rows = run_micro(
        fanins=MICRO_FANINS,
        fanouts=MICRO_FANOUTS,
        configs=BACKWARD_STRATEGIES + ["BlackBox"],
        shape=MICRO_SHAPE,
        query_cells=MICRO_QUERY_CELLS,
        seed=0,
    )
    micro_query_table(rows).print()
    return rows


def by_key(rows, strategy, fanin, fanout):
    for row in rows:
        if (
            row["strategy"] == strategy
            and row["fanin"] == fanin
            and row["fanout"] == fanout
        ):
            return row
    raise KeyError((strategy, fanin, fanout))


@pytest.fixture(scope="module")
def live_engines():
    """One engine per backward strategy at the top fanin, kept for live
    query benchmarking."""
    engines = {}
    bench = MicroBenchmark(
        fanin=MICRO_FANINS[-1],
        fanout=1,
        shape=MICRO_SHAPE,
        query_cells=MICRO_QUERY_CELLS,
        seed=0,
    )
    for label in BACKWARD_STRATEGIES:
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        sz.set_strategy("synthetic", MICRO_CONFIGS[label])
        instance = sz.run(bench.inputs())
        engines[label] = (sz, bench.queries(instance)["BQ"])
    return engines


@pytest.mark.benchmark(group="fig9-backward-queries")
@pytest.mark.parametrize("strategy", BACKWARD_STRATEGIES)
def test_fig9_backward_query_cost(benchmark, live_engines, strategy):
    sz, query = live_engines[strategy]
    result = benchmark.pedantic(
        lambda: sz.execute_query(query), rounds=3, iterations=1
    )
    assert result.count > 0


@pytest.mark.benchmark(group="fig9-shape")
def test_fig9_one_beats_many(benchmark, micro_rows):
    """Hash lookups beat spatial-index probes at every fanin (fanout 1)."""
    def check():
        for fanin in MICRO_FANINS:
            one = by_key(micro_rows, "<-FullOne", fanin, 1)["bq_s"]
            many = by_key(micro_rows, "<-FullMany", fanin, 1)["bq_s"]
            assert one < many, (fanin, one, many)
            pay_one = by_key(micro_rows, "<-PayOne", fanin, 1)["bq_s"]
            pay_many = by_key(micro_rows, "<-PayMany", fanin, 1)["bq_s"]
            assert pay_one < pay_many, (fanin, pay_one, pay_many)

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig9-shape")
def test_fig9_payload_flat_in_fanin(benchmark, micro_rows):
    """Payload query cost is constant-ish in fanin (the paper's plot)."""
    def check():
        lo = by_key(micro_rows, "<-PayOne", MICRO_FANINS[0], 1)["bq_s"]
        hi = by_key(micro_rows, "<-PayOne", MICRO_FANINS[-1], 1)["bq_s"]
        assert hi < lo * 10 + 5e-3

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig9-shape")
def test_fig9_one_layouts_beat_blackbox(benchmark, micro_rows):
    """Materialised backward lineage answers faster than re-execution for
    the hash layouts (the paper reports BlackBox at 0.7-20 s against
    25-100 ms for the materialised strategies; we assert the ordering at
    fanout 1, where the pair count makes the re-execution join heaviest)."""
    def check():
        for strategy in ("<-FullOne", "<-PayOne"):
            for fanin in (MICRO_FANINS[0], MICRO_FANINS[-1]):
                mat = by_key(micro_rows, strategy, fanin, 1)["bq_s"]
                bb = by_key(micro_rows, "BlackBox", fanin, 1)["bq_s"]
                assert mat < bb, (strategy, fanin, mat, bb)

    benchmark.pedantic(check, rounds=1, iterations=1)
