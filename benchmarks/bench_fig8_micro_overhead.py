"""Figure 8: microbenchmark disk and runtime overhead vs fanin and fanout.

The synthetic operator emits region lineage for 10% of a (default
1000x1000) array with tunable fanin/fanout.  Strategies compared:
<-PayMany, <-PayOne, <-FullMany, <-FullOne, ->FullOne, BlackBox.

Expected shape (paper): payload overhead is nearly flat in fanin (the
payload is 4*fanin bytes, no coordinates to encode); Full overheads grow
with fanin; FullOne beats FullMany at fanout 1 but the ordering flips by
fanout 100 (FullMany amortises keys per pair); ->FullOne grows with fanin
(one hash entry per distinct input cell); BlackBox is free.
"""

import pytest

from repro import SubZero
from repro.bench.harness import MICRO_CONFIGS, micro_overhead_table, run_micro
from repro.bench.micro import MicroBenchmark

from conftest import MICRO_FANINS, MICRO_FANOUTS, MICRO_QUERY_CELLS, MICRO_SHAPE


@pytest.fixture(scope="module")
def micro_rows():
    rows = run_micro(
        fanins=MICRO_FANINS,
        fanouts=MICRO_FANOUTS,
        shape=MICRO_SHAPE,
        query_cells=MICRO_QUERY_CELLS,
        seed=0,
    )
    micro_overhead_table(rows).print()
    return rows


def by_key(rows, strategy, fanin, fanout):
    for row in rows:
        if (
            row["strategy"] == strategy
            and row["fanin"] == fanin
            and row["fanout"] == fanout
        ):
            return row
    raise KeyError((strategy, fanin, fanout))


@pytest.mark.benchmark(group="fig8-write-overhead")
@pytest.mark.parametrize(
    "strategy", ["<-PayOne", "<-FullOne", "<-FullMany", "->FullOne", "BlackBox"]
)
def test_fig8_workflow_runtime(benchmark, strategy):
    """Live workflow execution at the highest fanin, fanout 1."""
    bench = MicroBenchmark(
        fanin=MICRO_FANINS[-1],
        fanout=1,
        shape=MICRO_SHAPE,
        query_cells=MICRO_QUERY_CELLS,
        seed=0,
    )

    def run_once():
        sz = SubZero(bench.build_spec(), enable_query_opt=False)
        if MICRO_CONFIGS[strategy] is not None:
            sz.set_strategy("synthetic", MICRO_CONFIGS[strategy])
        sz.run(bench.inputs())
        return sz.lineage_disk_bytes()

    disk = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["disk_mb"] = disk / 1e6


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_blackbox_free(benchmark, micro_rows):
    def check():
        for fanout in MICRO_FANOUTS:
            for fanin in MICRO_FANINS:
                assert by_key(micro_rows, "BlackBox", fanin, fanout)["disk_mb"] == 0

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_payload_disk_is_exactly_keys_plus_payload(benchmark, micro_rows):
    """PayOne stores nothing but keys and the 4*fanin-byte payloads — no
    coordinate encoding at all.  (Note a deviation from the paper recorded
    in EXPERIMENTS.md: our delta-compressed Full encoding packs clustered
    cells below 4 bytes each, so at high fanin FullOne disk can undercut
    the 4-byte-per-cell payload the paper's setup prescribes.)"""
    def check():
        for fanin in MICRO_FANINS:
            disk = by_key(micro_rows, "<-PayOne", fanin, 1)["disk_mb"] * 1e6
            per_entry = 8 + 4 * fanin  # 8-byte key + 4*fanin payload
            n_entries = disk / per_entry
            assert abs(n_entries - round(n_entries)) < 1e-6, (fanin, disk, per_entry)

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_payload_write_overhead_flat_in_fanin(benchmark, micro_rows):
    """The paper's claim that *is* about flatness: payload lineage 'does
    not need to be encoded', so its runtime overhead barely moves with
    fanin, while Full's encoding work grows."""
    def check():
        pay_lo = by_key(micro_rows, "<-PayOne", MICRO_FANINS[0], 1)["overhead_s"]
        pay_hi = by_key(micro_rows, "<-PayOne", MICRO_FANINS[-1], 1)["overhead_s"]
        full_hi = by_key(micro_rows, "<-FullOne", MICRO_FANINS[-1], 1)["overhead_s"]
        assert pay_hi < full_hi
        assert pay_hi < max(4 * pay_lo, pay_lo + 0.5)

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_full_disk_grows_with_fanin(benchmark, micro_rows):
    def check():
        lo = by_key(micro_rows, "<-FullOne", MICRO_FANINS[0], 1)["disk_mb"]
        hi = by_key(micro_rows, "<-FullOne", MICRO_FANINS[-1], 1)["disk_mb"]
        assert hi > 2 * lo

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_fullone_vs_fullmany_crossover(benchmark, micro_rows):
    """FullOne wins at fanout 1 (no spatial index); by fanout 100 FullMany
    stores keys once per pair and pulls ahead."""
    def check():
        fanin = MICRO_FANINS[-1]
        one_lofo = by_key(micro_rows, "<-FullOne", fanin, 1)["disk_mb"]
        many_lofo = by_key(micro_rows, "<-FullMany", fanin, 1)["disk_mb"]
        one_hifo = by_key(micro_rows, "<-FullOne", fanin, 100)["disk_mb"]
        many_hifo = by_key(micro_rows, "<-FullMany", fanin, 100)["disk_mb"]
        assert one_lofo <= many_lofo
        assert many_hifo <= one_hifo

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_forward_one_grows_with_fanin(benchmark, micro_rows):
    """->FullOne needs a hash entry per distinct input cell."""
    def check():
        lo = by_key(micro_rows, "->FullOne", MICRO_FANINS[0], 100)["disk_mb"]
        hi = by_key(micro_rows, "->FullOne", MICRO_FANINS[-1], 100)["disk_mb"]
        assert hi > lo

    benchmark.pedantic(check, rounds=1, iterations=1)
