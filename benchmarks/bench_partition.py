"""Partitioned catalog benchmark: scatter-gather overhead and parallel
per-partition compaction.

Not a paper figure — this validates :mod:`repro.storage.partition` against
its acceptance bars:

* **scatter overhead**: a *targeted* read (the node→partition map routes
  the key to one partition) through a 4-partition catalog must stay within
  a small constant factor of the same read through a monolithic catalog —
  the root facade adds one dict lookup and one counter tick, not an extra
  I/O pass — and must probe exactly one partition (counter-asserted, the
  ISSUE's 4-partition acceptance criterion).
* **parallel compaction**: compacting four partitions on the scatter
  thread pool must not be slower than sweeping them sequentially (their
  maintenance locks are independent, so the pool genuinely overlaps
  merge work), and both orders must converge every key to one generation.

Both tables publish machine-readably to ``BENCH_partition.json`` (metric →
value) for ``benchmarks/check_regressions.py``.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_partition.py --benchmark-only -s
"""

import shutil
import time

import numpy as np
import pytest

from repro import FULL_ONE_B
from repro.bench.report import ResultTable, write_bench_json
from repro.core.catalog import StoreCatalog
from repro.core.lineage_store import make_store
from repro.core.model import BufferSink, ElementwiseBatch
from repro.storage.partition import PartitionedCatalog

from conftest import FULL

SHAPE = (256, 256)
N_ENTRIES = 20_000 if FULL else 6_000
N_PARTITIONS = 4
NODES = [f"node{i}" for i in range(N_PARTITIONS)]
STRATEGY = FULL_ONE_B
N_QUERY = 64


def _store(node: str, seed: int, n: int = N_ENTRIES):
    rng = np.random.default_rng(seed)
    store = make_store(node, STRATEGY, SHAPE, (SHAPE,))
    sink = BufferSink()
    outs = rng.integers(0, SHAPE[0], size=(n, 2))
    ins = rng.integers(0, SHAPE[0], size=(n, 2))
    sink.add_elementwise(ElementwiseBatch(outcells=outs, incells=(ins,)))
    store.ingest(sink)
    store.finalize_if_possible()
    return store


def _stores(seed0: int):
    return {
        (node, STRATEGY): _store(node, seed0 + i) for i, node in enumerate(NODES)
    }


def _query(seed: int = 9):
    rng = np.random.default_rng(seed)
    h, w = SHAPE
    flat = rng.integers(0, h * w, size=N_QUERY).astype(np.int64)
    return np.unique(flat)


def _best_backward(store, query, repeats: int = 20, rounds: int = 7) -> float:
    best = np.inf
    store.backward_full(query)  # warm the index once
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            store.backward_full(query)
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


@pytest.mark.benchmark(group="partition")
def test_targeted_scatter_overhead(benchmark, tmp_path_factory):
    """Acceptance: a mapped node's backward query through the partitioned
    root costs within 3x of the monolithic catalog (generous — both sides
    are microseconds, so the bar only catches a structural regression like
    an accidental broadcast), and probes exactly one partition."""
    root = tmp_path_factory.mktemp("scatter")
    mono_dir, part_dir = str(root / "mono"), str(root / "part")
    mono, _ = StoreCatalog.write(mono_dir, _stores(0))
    mono.close()
    part, _ = PartitionedCatalog.write(
        part_dir,
        _stores(0),
        partitions={node: f"p{i}" for i, node in enumerate(NODES)},
    )
    part.close()
    query = _query()
    target = NODES[1]

    mono = StoreCatalog.open(mono_dir)
    part = PartitionedCatalog.open(part_dir)
    m_rec = mono.borrow(target, STRATEGY)
    p_rec = part.borrow(target, STRATEGY)
    mono_s = _best_backward(m_rec.store, query)
    part_s = _best_backward(p_rec.store, query)
    overhead = part_s / mono_s

    probes = part.probes_by_partition()
    owner = part.partition_for_node(target)
    probed = sum(1 for count in probes.values() if count > 0)
    idle_open = sum(
        part.partition(pid).open_count()
        for pid in part.partition_ids()
        if pid != owner
    )

    def run():
        return p_rec.store.backward_full(query)

    benchmark(run)
    mono.release(m_rec)
    part.release(p_rec)
    mono.close()
    part.close()

    table = ResultTable(
        "Targeted scatter vs monolith (backward query, best-of)",
        ["layout", "seconds", "partitions_probed"],
    )
    table.add_row("monolith", mono_s, 1)
    table.add_row(f"{N_PARTITIONS}-partition targeted", part_s, probed)
    table.add_note(f"overhead ratio {overhead:.2f}x (bar: <= 3.0)")
    table.print()

    write_bench_json(
        "partition",
        {
            "partitions": N_PARTITIONS,
            "scatter_overhead_ratio": overhead,
            "targeted_partitions_probed": probed,
            "idle_partition_opens": idle_open,
            "targeted_query_s": part_s,
            "monolith_query_s": mono_s,
        },
    )
    assert probed == 1, f"targeted read probed {probed} partitions"
    assert idle_open == 0, "a non-owning partition opened a store"
    assert overhead <= 3.0, f"scatter overhead {overhead:.2f}x exceeds 3x"


@pytest.mark.benchmark(group="partition")
def test_parallel_compaction_speedup(benchmark, tmp_path_factory):
    """Acceptance: the scatter thread pool's per-partition compaction is
    not slower than the same sweep run partition-by-partition, and both
    converge every key back to a single generation (equivalence counters
    published for the regression gate)."""
    root = tmp_path_factory.mktemp("compact")

    def build(directory: str) -> PartitionedCatalog:
        shutil.rmtree(directory, ignore_errors=True)
        part, _ = PartitionedCatalog.write(
            directory,
            _stores(0),
            partitions={node: f"p{i}" for i, node in enumerate(NODES)},
        )
        for round_ in (1, 2):
            part.append_stores(
                {
                    (node, STRATEGY): _store(node, 100 * round_ + i, N_ENTRIES // 4)
                    for i, node in enumerate(NODES)
                }
            )
        return part

    seq = build(str(root / "seq"))
    gens_before = seq.generation_count(NODES[0], STRATEGY)
    t0 = time.perf_counter()
    seq_report = seq.compact(parallel=1)
    seq_s = time.perf_counter() - t0
    gens_seq = max(seq.generation_count(n, STRATEGY) for n in NODES)
    seq.close()

    par = build(str(root / "par"))
    t0 = time.perf_counter()
    par_report = par.compact(parallel=N_PARTITIONS)
    par_s = time.perf_counter() - t0
    gens_par = max(par.generation_count(n, STRATEGY) for n in NODES)
    par.close()

    speedup = seq_s / par_s if par_s else 1.0

    def run():
        rebuilt = build(str(root / "bench"))
        rebuilt.compact(parallel=N_PARTITIONS)
        rebuilt.close()

    benchmark.pedantic(run, rounds=3, iterations=1)

    table = ResultTable(
        "Per-partition compaction: sequential vs thread pool",
        ["order", "seconds", "keys_merged", "max_generations_after"],
    )
    table.add_row("sequential", seq_s, len(seq_report.compacted), gens_seq)
    table.add_row(f"parallel x{N_PARTITIONS}", par_s, len(par_report.compacted), gens_par)
    table.add_note(f"speedup {speedup:.2f}x (bar: >= 0.6, i.e. never much slower)")
    table.print()

    write_bench_json(
        "partition",
        {
            "parallel_compaction_speedup": speedup,
            "compaction_generations_before": gens_before,
            "compaction_generations_after": max(gens_seq, gens_par),
            "compaction_keys_merged": len(par_report.compacted),
            "compaction_bytes_equal": float(
                seq_report.bytes_written == par_report.bytes_written
            ),
        },
    )
    assert gens_seq == gens_par == 1
    assert len(seq_report.compacted) == len(par_report.compacted) == len(NODES)
