"""Ablation: the R-tree over *Many entries vs the alternatives.

The paper's FullMany/PayMany layouts index region-pair keys with an R-tree
(§VI-B).  This bench quantifies the choice against (a) a per-entry cursor
scan — what a hash table gives you without a spatial index — and (b) the
vectorised bounding-box sweep the store switches to for huge frontiers.

Expected shape: for selective (small) queries the R-tree wins by orders of
magnitude over the cursor scan; for frontier-sized queries the sweep wins,
which is exactly why ``candidate_entries`` picks per regime.
"""

import time

import numpy as np
import pytest

from repro.arrays import coords as C
from repro.bench.report import ResultTable
from repro.core.lineage_store import RegionEntryTable

from conftest import FULL

SHAPE = (1000, 1000)
N_ENTRIES = 200_000 if FULL else 50_000


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    table = RegionEntryTable(SHAPE)
    keys = rng.choice(SHAPE[0] * SHAPE[1], size=N_ENTRIES, replace=False).astype(
        np.int64
    )
    lengths = np.ones(N_ENTRIES, dtype=np.int64)
    table.add_singleton_entries(keys, b"x" * N_ENTRIES, lengths)
    table.finalize()
    return table


def rtree_probe(table, coords):
    hits = [table._rtree.query_point(c) for c in coords]
    return np.unique(np.concatenate(hits))


def cursor_scan(table, coords):
    """The ablation baseline: a per-entry Python cursor over the columns
    (the stores themselves no longer have such a loop)."""
    query = np.sort(C.pack_coords(coords, SHAPE))
    keys, koff, _, _ = table.columns()
    hits = []
    for e in range(koff.size - 1):
        if C.isin_sorted(keys[koff[e]: koff[e + 1]], query).any():
            hits.append(e)
    return np.asarray(hits, dtype=np.int64)


def bbox_sweep(table, coords):
    qlo, qhi = coords.min(axis=0), coords.max(axis=0)
    lo, hi = table.entry_boxes()
    return np.nonzero(((lo <= qhi) & (hi >= qlo)).all(axis=1))[0]


@pytest.fixture(scope="module")
def measurements(table):
    rng = np.random.default_rng(1)
    small = rng.integers(0, 1000, size=(64, 2)).astype(np.int64)
    rows = {}
    for name, fn in (("rtree", rtree_probe), ("cursor-scan", cursor_scan)):
        start = time.perf_counter()
        result = fn(table, small)
        rows[name] = (time.perf_counter() - start, len(result))
    start = time.perf_counter()
    swept = bbox_sweep(table, small)
    rows["bbox-sweep"] = (time.perf_counter() - start, len(swept))

    report = ResultTable(
        "Ablation: candidate collection over 50k entries, 64-cell query",
        ["method", "seconds", "candidates"],
    )
    for name, (seconds, count) in rows.items():
        report.add_row(name, seconds, count)
    report.add_note("bbox-sweep returns a superset (query bounding box)")
    report.print()
    return rows


_METHODS = {"rtree": rtree_probe, "cursor-scan": cursor_scan, "bbox-sweep": bbox_sweep}


@pytest.mark.benchmark(group="ablation-rtree")
@pytest.mark.parametrize("method", ["rtree", "cursor-scan", "bbox-sweep"])
def test_candidate_collection(benchmark, table, method):
    rng = np.random.default_rng(1)
    coords = rng.integers(0, 1000, size=(64, 2)).astype(np.int64)
    rounds = 1 if method == "cursor-scan" else 3
    result = benchmark.pedantic(
        lambda: _METHODS[method](table, coords), rounds=rounds, iterations=1
    )
    benchmark.extra_info["candidates"] = len(result)


@pytest.mark.benchmark(group="ablation-rtree-shape")
def test_rtree_beats_cursor_scan(benchmark, measurements):
    def check():
        assert measurements["rtree"][0] * 5 < measurements["cursor-scan"][0]
        # for singleton entries the R-tree is exact; the sweep over-includes
        assert measurements["rtree"][1] <= measurements["bbox-sweep"][1]

    benchmark.pedantic(check, rounds=1, iterations=1)
