"""Codec benchmark: storage size and query latency per lineage codec.

Not a paper figure — this validates the codec subsystem (see
``repro.storage.codecs``) against its acceptance bar on the two evaluation
workloads:

* **astronomy** (§II-A): convolution lineage — every output cell of the
  ``smooth`` nodes depends on a Gaussian-kernel neighbourhood — and
  reshape-style block lineage, both of which emit contiguous regions that
  should interval-code to a fraction of the delta format (target: >= 2x
  smaller);
* **genomics** (§II-B): the ``train_model`` fanin touches one feature
  column across every (replicated) patient — strided, never contiguous —
  where delta coding must keep winning and selection must not regress.

Latency side: backward queries decode matched entry values, so the selected
formats must decode within 1.2x of the delta-only baseline; mismatched
forward scans probe entries in situ (``contains_any``) and should beat
decoding every entry outright.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_codecs.py --benchmark-only -s
"""

import time

import numpy as np
import pytest

from repro.arrays import coords as C
from repro.bench.report import ResultTable
from repro.ops.convolution import dilate_coords
from repro.storage import codecs
from repro.storage import serialize as ser

from conftest import ASTRO_SHAPE, GENOMICS_SCALE

N_CONV_ENTRIES = 1500
CONV_RADIUS = 4  # 9x9 neighbourhood, matching the astronomy smoothing scale
N_RESHAPE_ENTRIES = 400
RESHAPE_RUN = 200  # cells per contiguous reshape block
N_FEATURES = 56  # genomics matrix rows (55 features + label)
N_QUERY_CELLS = 64


def _neighbourhood_offsets(radius: int) -> np.ndarray:
    grid = np.meshgrid(
        np.arange(-radius, radius + 1), np.arange(-radius, radius + 1), indexing="ij"
    )
    return np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)


def astronomy_conv_entries(rng) -> list[np.ndarray]:
    """Per-output-cell convolution input regions on the astronomy shape."""
    offsets = _neighbourhood_offsets(CONV_RADIUS)
    rows = rng.integers(0, ASTRO_SHAPE[0], N_CONV_ENTRIES)
    cols = rng.integers(0, ASTRO_SHAPE[1], N_CONV_ENTRIES)
    entries = []
    for r, c in zip(rows, cols):
        region = dilate_coords(np.asarray([[r, c]]), offsets, ASTRO_SHAPE)
        entries.append(np.sort(C.pack_coords(region, ASTRO_SHAPE)))
    return entries


def astronomy_reshape_entries(rng) -> list[np.ndarray]:
    """Reshape/spatial block lineage: fully contiguous packed runs."""
    size = int(np.prod(ASTRO_SHAPE))
    starts = rng.integers(0, size - RESHAPE_RUN, N_RESHAPE_ENTRIES)
    return [np.arange(s, s + RESHAPE_RUN, dtype=np.int64) for s in starts]


def genomics_train_entries(rng) -> list[np.ndarray]:
    """train_model fanin: one feature column across all replicated patients
    of the transposed (patients, features) training matrix — stride
    ``N_FEATURES``, never contiguous."""
    n_patients = 100 * GENOMICS_SCALE
    shape = (n_patients, N_FEATURES)
    entries = []
    for feature in range(N_FEATURES):
        coords = np.stack(
            [
                np.arange(n_patients, dtype=np.int64),
                np.full(n_patients, feature, dtype=np.int64),
            ],
            axis=1,
        )
        entries.append(np.sort(C.pack_coords(coords, shape)))
    return entries


WORKLOADS = {
    "astro-conv": astronomy_conv_entries,
    "astro-reshape": astronomy_reshape_entries,
    "genomics-train": genomics_train_entries,
}


def _forced_bytes(codec, entries) -> int | None:
    total = 0
    for arr in entries:
        size = codec.nbytes(arr)
        if size is None:
            return None
        total += size
    return total


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workloads():
    rng = np.random.default_rng(7)
    return {name: build(rng) for name, build in WORKLOADS.items()}


@pytest.fixture(scope="module")
def size_report(workloads):
    table = ResultTable(
        title="codec sizes (total bytes per workload)",
        columns=["workload", "entries", "raw", "delta", "interval", "selected", "delta/selected"],
    )
    report = {}
    for name, entries in workloads.items():
        raw = _forced_bytes(codecs.RAW, entries)
        delta = _forced_bytes(codecs.DELTA, entries)
        interval = _forced_bytes(codecs.INTERVAL, entries)
        selected = sum(ser.int_array_nbytes(arr) for arr in entries)
        report[name] = {
            "raw": raw, "delta": delta, "interval": interval, "selected": selected
        }
        table.add_row(
            name,
            len(entries),
            raw,
            delta,
            interval if interval is not None else "n/a",
            selected,
            round(delta / selected, 2),
        )
    table.print()
    return report


@pytest.mark.benchmark(group="codec-sizes")
def test_interval_at_least_2x_smaller_on_contiguous(benchmark, size_report):
    """Acceptance: interval >= 2x smaller than delta on convolution and
    reshape lineage, and the automatic selection banks that win."""

    def check():
        for name in ("astro-conv", "astro-reshape"):
            r = size_report[name]
            assert r["interval"] is not None
            assert r["interval"] * 2 <= r["delta"], (name, r)
            assert r["selected"] <= r["interval"], (name, r)

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="codec-sizes")
def test_selection_never_loses_to_delta(benchmark, size_report):
    """On scattered/strided genomics lineage interval cannot win; selection
    must fall back to (at worst) the old delta footprint."""

    def check():
        r = size_report["genomics-train"]
        assert r["selected"] <= r["delta"]
        assert r["selected"] <= r["raw"]

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def encoded(workloads):
    out = {}
    for name, entries in workloads.items():
        out[name] = {
            "delta": [codecs.DELTA.encode(arr) for arr in entries],
            "selected": [codecs.encode_cells(arr) for arr in entries],
            "entries": entries,
        }
    return out


def _query_for(entries, rng) -> np.ndarray:
    pool = np.concatenate([entries[i] for i in rng.integers(0, len(entries), 8)])
    return np.unique(rng.choice(pool, size=min(N_QUERY_CELLS, pool.size), replace=False))


def _backward_table(entries, encoder):
    """A *Many-style entry table: singleton output key per entry, the
    encoded input region as the value."""
    from repro.core.lineage_store import RegionEntryTable

    table = RegionEntryTable((len(entries),))
    for j, arr in enumerate(entries):
        table.add_entry(np.asarray([j], dtype=np.int64), encoder(arr))
    table.finalize()
    return table


def _backward_query(table, query_coords, query_sorted) -> int:
    """The backward access pattern of the *Many layouts: spatial candidates,
    key membership, then decode the matched values."""
    total = 0
    for entry_id in table.candidate_entries(query_coords):
        keys = table.entry_keys(int(entry_id))
        if C.isin_sorted(keys, query_sorted).any():
            values, _ = ser.decode_int_array(table.entry_value(int(entry_id)))
            total += values.size
    return total


@pytest.mark.benchmark(group="codec-queries")
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_backward_query_within_budget(benchmark, encoded, workload):
    """Acceptance: a backward query over codec-selected values stays within
    1.2x of the decode-everything (delta-only) baseline — the compressed
    formats must not tax the hot matched-orientation path."""
    entries = encoded[workload]["entries"]
    rng = np.random.default_rng(29)
    qids = np.unique(rng.integers(0, len(entries), max(64, len(entries) // 3)))
    query_coords = qids.reshape(-1, 1)
    query_sorted = np.sort(qids)
    baseline_table = _backward_table(entries, codecs.DELTA.encode)
    selected_table = _backward_table(entries, codecs.encode_cells)
    expected = _backward_query(baseline_table, query_coords, query_sorted)
    assert _backward_query(selected_table, query_coords, query_sorted) == expected

    baseline = _best_of(lambda: _backward_query(baseline_table, query_coords, query_sorted), rounds=5)
    selected = benchmark.pedantic(
        lambda: _best_of(
            lambda: _backward_query(selected_table, query_coords, query_sorted),
            rounds=5,
        ),
        rounds=1,
        iterations=1,
    )
    assert selected <= baseline * 1.2 + 1e-3, (workload, selected, baseline)
    print(
        f"{workload}: backward query {selected * 1e3:.2f} ms vs "
        f"delta-only baseline {baseline * 1e3:.2f} ms"
    )


@pytest.mark.benchmark(group="codec-queries")
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_forward_scan_insitu_vs_decode(benchmark, encoded, workload):
    """Mismatched-orientation scans probe entries in situ; the probe pass
    must beat (or at worst match, within 1.2x) decoding every entry."""
    rng = np.random.default_rng(13)
    entries = encoded[workload]["entries"]
    bufs = encoded[workload]["selected"]
    query = _query_for(entries, rng)

    def scan_decode():
        hits = 0
        for buf in bufs:
            values, _ = ser.decode_int_array(buf)
            if C.isin_sorted(values, query).any():
                hits += 1
        return hits

    def scan_insitu():
        hits = 0
        for buf in bufs:
            if codecs.contains_any(buf, query):
                hits += 1
        return hits

    assert scan_decode() == scan_insitu()
    decode_s = _best_of(scan_decode)
    insitu_s = benchmark.pedantic(
        lambda: _best_of(scan_insitu), rounds=1, iterations=1
    )
    assert insitu_s <= decode_s * 1.2 + 1e-3, (workload, insitu_s, decode_s)
    print(
        f"{workload}: in-situ scan {insitu_s * 1e3:.2f} ms vs "
        f"decode-everything {decode_s * 1e3:.2f} ms "
        f"({decode_s / max(insitu_s, 1e-9):.1f}x faster)"
    )
