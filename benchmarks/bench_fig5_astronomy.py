"""Figure 5: the astronomy benchmark.

5(a): disk and runtime overhead of BlackBox / BlackBoxOpt / FullMany /
FullOne / SubZero.  5(b): costs of BQ0-BQ4, FQ0 and FQ0Slow (the same
forward query without the entire-array optimization) under each strategy.

The module fixture sweeps every strategy once and prints the two
paper-shaped tables (run with ``-s``).  The ``benchmark``-fixture tests then
re-execute representative pieces live so pytest-benchmark's own table shows
real timings.

Expected shape (paper): SubZero's overheads are close to the black-box
baselines while Full* pay order-of-magnitude storage and runtime; SubZero
answers queries fastest, BlackBox slowest; FQ0 vastly beats FQ0Slow.
"""

import pytest

from repro import COMP_ONE_B, QueryRequest, SubZero
from repro.bench.astronomy import UDF_NODES, AstronomyBenchmark
from repro.bench.harness import ASTRONOMY_CONFIGS, astronomy_table, run_astronomy

from conftest import ASTRO_COSMIC, ASTRO_SHAPE, ASTRO_STARS


@pytest.fixture(scope="module")
def astro_runs():
    runs = run_astronomy(
        shape=ASTRO_SHAPE, seed=0, n_stars=ASTRO_STARS, n_cosmic=ASTRO_COSMIC
    )
    overhead, queries = astronomy_table(runs)
    overhead.print()
    queries.print()
    return {run.label: run for run in runs}


@pytest.fixture(scope="module")
def bench_data():
    return AstronomyBenchmark(
        shape=ASTRO_SHAPE, seed=0, n_stars=ASTRO_STARS, n_cosmic=ASTRO_COSMIC
    )


@pytest.fixture(scope="module")
def subzero_live(bench_data):
    """The Table-II 'SubZero' configuration, kept alive for query benches."""
    sz = SubZero(bench_data.build_spec())
    sz.use_mapping_where_possible()
    for udf in UDF_NODES:
        sz.set_strategy(udf, COMP_ONE_B)
    instance = sz.run(bench_data.inputs())
    return sz, bench_data.queries(instance)


@pytest.mark.benchmark(group="fig5a-workflow-runtime")
@pytest.mark.parametrize("label", list(ASTRONOMY_CONFIGS))
def test_fig5a_runtime_overhead(benchmark, bench_data, label):
    """Wall time of one workflow execution under each strategy."""
    config = ASTRONOMY_CONFIGS[label]

    def run_once():
        sz = SubZero(bench_data.build_spec())
        if config["map_builtins"]:
            sz.use_mapping_where_possible()
        if config["udf"]:
            for udf in UDF_NODES:
                sz.set_strategy(udf, *config["udf"])
        sz.run(bench_data.inputs())
        return sz.lineage_disk_bytes()

    disk = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["disk_mb"] = disk / 1e6


@pytest.mark.benchmark(group="fig5b-subzero-queries")
@pytest.mark.parametrize("query", ["BQ0", "BQ1", "BQ2", "BQ3", "BQ4", "FQ0"])
def test_fig5b_subzero_queries(benchmark, subzero_live, query):
    sz, queries = subzero_live
    result = benchmark.pedantic(
        lambda: sz.execute_query(queries[query]), rounds=3, iterations=1
    )
    assert result.count > 0


@pytest.mark.benchmark(group="fig5b-subzero-queries")
def test_fig5b_fq0_slow(benchmark, subzero_live):
    """FQ0 without the entire-array optimization (the 83x ablation)."""
    sz, queries = subzero_live
    slow_fq0 = QueryRequest.from_query(queries["FQ0"], entire_array=False)
    result = benchmark.pedantic(
        lambda: sz.query(slow_fq0),
        rounds=1,
        iterations=1,
    )
    assert result.count > 0


@pytest.mark.benchmark(group="fig5-shape")
def test_fig5a_overhead_shape(benchmark, astro_runs):
    """SubZero's storage must undercut Full lineage by a wide margin."""
    def check():
        subzero, fullone = astro_runs["SubZero"], astro_runs["FullOne"]
        fullmany = astro_runs["FullMany"]
        assert subzero.disk_mb * 5 < fullone.disk_mb
        assert subzero.disk_mb * 5 < fullmany.disk_mb
        assert astro_runs["BlackBox"].disk_mb == 0
        assert astro_runs["BlackBoxOpt"].disk_mb == 0
        # Full lineage also pays a large runtime factor
        assert astro_runs["FullOne"].runtime_s > 2 * astro_runs["SubZero"].runtime_s

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig5-shape")
def test_fig5b_query_shape(benchmark, astro_runs):
    """The orderings the paper reports."""
    def check():
        subzero = astro_runs["SubZero"].query_seconds
        blackbox = astro_runs["BlackBox"].query_seconds
        bbopt = astro_runs["BlackBoxOpt"].query_seconds
        # SubZero beats re-running the expensive UDFs on the star query
        assert subzero["BQ0"] < blackbox["BQ0"]
        assert subzero["BQ0"] < bbopt["BQ0"]
        # the entire-array optimization gives a large factor on FQ0
        assert subzero["FQ0"] < subzero["FQ0Slow"]
        # black-box is slowest across the backward suite
        total_subzero = sum(subzero[q] for q in ("BQ0", "BQ1", "BQ2", "BQ4"))
        total_blackbox = sum(blackbox[q] for q in ("BQ0", "BQ1", "BQ2", "BQ4"))
        assert total_subzero < total_blackbox

    benchmark.pedantic(check, rounds=1, iterations=1)
