"""Capture-path benchmark: deferred materialisation at the fig-8 configs.

Not a paper figure — this gates the interactive-speed capture work against
its acceptance bar: across the §VIII-C micro-overhead configurations (fanin
sweep at fanout 1 and 100, every non-blackbox strategy), the *foreground*
capture cost the workflow thread pays — descriptor recording + background
hand-off, ``capture_seconds`` on the stats collector — must stay within
1.5x the bare (BlackBox) execution time.  The codec/hash/R-tree lowering
runs on the background encode worker (``encode_thread_seconds``), where it
overlaps the next node's compute instead of stalling the workflow.

Also measured, informationally:

* total wall-clock ratio per strategy (workflow runtime / bare runtime,
  drain included) — the figure-8 shape, dominated by encode cost;
* eager vs deferred foreground cost at the heaviest configuration —
  the speedup deferral buys the workflow thread;
* structural indicators: every deferred run parked pairs and bytes on the
  capture counters, and the background worker reported encode time.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_capture.py --benchmark-only -s
"""

import time

import numpy as np
import pytest

from repro import SubZero
from repro.bench.harness import MICRO_CONFIGS
from repro.bench.micro import MicroBenchmark
from repro.bench.report import ResultTable, write_bench_json

from conftest import MICRO_FANINS, MICRO_FANOUTS, MICRO_QUERY_CELLS, MICRO_SHAPE

ROUNDS = 3
#: acceptance bar: foreground capture cost <= 1.5x bare execution
MAX_CAPTURE_RATIO = 1.5


def _run_once(bench: MicroBenchmark, strategy, capture: str):
    """One workflow execution; returns (wall_seconds, capture_stats)."""
    sz = SubZero(bench.build_spec(), enable_query_opt=False, capture=capture)
    if strategy is not None:
        sz.set_strategy("synthetic", strategy)
    start = time.perf_counter()
    sz.run(bench.inputs())
    wall = time.perf_counter() - start
    stats = dict(sz.stats.capture)
    sz.close()
    return wall, stats


def _best_of(bench: MicroBenchmark, strategy, capture: str = "deferred"):
    """Best-of-N wall and foreground capture seconds (noise damping)."""
    wall = np.inf
    capture_s = np.inf
    stats = {}
    for _ in range(ROUNDS):
        w, s = _run_once(bench, strategy, capture)
        wall = min(wall, w)
        if s["capture_seconds"] < capture_s:
            capture_s = s["capture_seconds"]
            stats = s
    return wall, capture_s, stats


@pytest.mark.benchmark(group="capture")
def test_capture_overhead_fig8_configs(benchmark):
    """The gate: foreground capture overhead <= 1.5x bare execution at
    every fig-8 micro configuration and strategy."""
    table = ResultTable(
        title=(
            f"deferred capture foreground cost vs bare execution, "
            f"shape {MICRO_SHAPE}, best of {ROUNDS}"
        ),
        columns=[
            "fanout", "fanin", "strategy",
            "bare ms", "capture ms", "ratio", "wall ratio",
        ],
    )
    worst_ratio = 0.0
    worst_wall = 0.0
    parked_pairs = 0
    parked_bytes = 0
    encode_thread_s = 0.0
    for fanout in MICRO_FANOUTS:
        for fanin in MICRO_FANINS:
            bench = MicroBenchmark(
                fanin=fanin,
                fanout=fanout,
                shape=MICRO_SHAPE,
                query_cells=MICRO_QUERY_CELLS,
                seed=0,
            )
            bare, _, _ = _best_of(bench, None)
            for label, strategy in MICRO_CONFIGS.items():
                if strategy is None:
                    continue
                wall, capture_s, stats = _best_of(bench, strategy)
                ratio = capture_s / bare
                wall_ratio = wall / bare
                worst_ratio = max(worst_ratio, ratio)
                worst_wall = max(worst_wall, wall_ratio)
                parked_pairs += stats.get("deferred_pairs", 0)
                parked_bytes += stats.get("deferred_bytes", 0)
                encode_thread_s += stats.get("encode_thread_seconds", 0.0)
                table.add_row(
                    fanout, fanin, label,
                    round(bare * 1e3, 2), round(capture_s * 1e3, 2),
                    round(ratio, 3), round(wall_ratio, 2),
                )
    table.print()

    metrics = {
        # the gate: worst foreground capture cost over bare execution
        "max_capture_overhead_ratio": round(worst_ratio, 4),
        # structural: deferral actually engaged and the worker did the work
        "deferred_pairs_seen": int(parked_pairs > 0),
        "deferred_bytes_seen": int(parked_bytes > 0),
        "encode_thread_engaged": int(encode_thread_s > 0.0),
        # informational (machine-dependent, not baselined): full wall-clock
        # ratio with the end-of-run drain included
        "max_wall_ratio": round(worst_wall, 2),
    }
    # publish BEFORE asserting: a regression must land in the JSON so the
    # baseline check trips on it even when this (continue-on-error) bench
    # step is allowed to go red
    write_bench_json("capture", metrics)
    assert metrics["max_capture_overhead_ratio"] <= MAX_CAPTURE_RATIO
    assert metrics["deferred_pairs_seen"] == 1
    assert metrics["deferred_bytes_seen"] == 1
    assert metrics["encode_thread_engaged"] == 1

    def run():
        pass

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="capture")
def test_eager_vs_deferred_foreground(benchmark):
    """Eager encoding blocks the workflow thread for the full lowering
    cost; deferred capture parks descriptors and returns.  At the heaviest
    configuration the deferred foreground cost must be a small fraction of
    the eager one (the interactivity win the refactor exists for)."""
    bench = MicroBenchmark(
        fanin=MICRO_FANINS[-1],
        fanout=1,
        shape=MICRO_SHAPE,
        query_cells=MICRO_QUERY_CELLS,
        seed=0,
    )
    strategy = MICRO_CONFIGS["<-FullMany"]

    eager_fg = np.inf
    for _ in range(ROUNDS):
        sz = SubZero(bench.build_spec(), enable_query_opt=False, capture="eager")
        sz.set_strategy("synthetic", strategy)
        instance = sz.run(bench.inputs())
        eager_fg = min(eager_fg, instance.total_lineage_seconds())
        sz.close()
    _, deferred_fg, _ = _best_of(bench, strategy, capture="deferred")

    speedup = eager_fg / deferred_fg if deferred_fg else float("inf")
    table = ResultTable(
        title="workflow-thread lineage cost, heaviest fig-8 configuration",
        columns=["capture", "foreground ms"],
    )
    table.add_row("eager", round(eager_fg * 1e3, 2))
    table.add_row("deferred", round(deferred_fg * 1e3, 2))
    table.add_note(f"foreground speedup: {speedup:.1f}x")
    table.print()

    write_bench_json(
        "capture",
        {
            "eager_foreground_ms": round(eager_fg * 1e3, 3),
            "deferred_foreground_ms": round(deferred_fg * 1e3, 3),
            "foreground_speedup": round(speedup, 2),
        },
    )
    # deferral must beat eager encoding on the workflow thread
    assert deferred_fg < eager_fg

    def run():
        pass

    benchmark.pedantic(run, rounds=1, iterations=1)
