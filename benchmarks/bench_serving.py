"""Serving-core benchmark: thread scaling, eviction pressure, shard opens.

Not a paper figure — this validates the concurrent-serving refactor against
its acceptance bars:

* **thread scaling**: mixed backward/forward query throughput through
  ``SubZero.serve`` at 1/2/4/8 reader threads, hot cache (no budget) vs an
  evicting cache (``memory_budget_bytes`` sized to one store), all answers
  checked against the single-threaded baseline.  The 8-thread hot-cache
  configuration targets >= 3x the single-thread throughput; the assertion
  is enforced only on machines with enough cores to express it (the
  container this repo is often built in has one), mirroring the other
  wall-clock benches.
* **shard vs monolith cold open**: a fresh process's cost to open one
  store and answer its first matched and first mismatched query, from a
  monolithic segment vs a sharded ``.seg.0..k`` flush — plus how many
  shard files the sharded path actually mapped.
* **daemon QPS / latency percentiles** (``BENCH_daemon.json``): N client
  threads drive the network daemon over HTTP, measuring queries/s and
  p50/p99 latency with every answer checked against the in-process
  baseline; a second overload phase floods a one-slot gate and asserts
  the daemon sheds the excess with 429 (explicit backpressure) instead
  of buffering it.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_serving.py --benchmark-only -s
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import (
    FULL_MANY_B,
    FULL_ONE_B,
    PAY_ONE_B,
    QueryRequest,
    SciArray,
    SubZero,
    WorkflowSpec,
)
from repro.arrays.versions import VersionStore
from repro.bench.report import ResultTable, write_bench_json
from repro.core.catalog import StoreCatalog
from repro.core.lineage_store import make_store
from repro.core.model import Direction, LineageQuery, QueryStep
from repro.errors import QueueFullError
from repro.serving import DaemonClient, QueryDaemon, ServingLimits, canonical_result

from conftest import FULL

try:  # the serving workload reuses the tier-1 suite's detector operator
    from tests.conftest import SpotUDF
except ImportError:  # pragma: no cover - benchmarks run from the repo root
    import sys

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from tests.conftest import SpotUDF

SHAPE = (192, 224) if FULL else (96, 112)
N_QUERIES = 144 if FULL else 72
CELLS_PER_QUERY = 48
THREADS = (1, 2, 4, 8)
SHARD_THRESHOLD = 4096
N_CLIENTS = 8
OVERLOAD_CLIENTS = 32


def _spec() -> WorkflowSpec:
    spec = WorkflowSpec(name="bench-serving")
    spec.add_source("img")
    spec.add_node("s1", SpotUDF(thresh=0.55, radius=1), ["img"])
    spec.add_node("s2", SpotUDF(thresh=0.5, radius=2), ["s1"])
    spec.add_node("s3", SpotUDF(thresh=0.5, radius=1), ["s2"])
    return spec


def _queries(rng) -> list[LineageQuery]:
    paths = [
        (Direction.BACKWARD, ["s1"]),
        (Direction.BACKWARD, ["s2", "s1"]),
        (Direction.FORWARD, ["s1", "s2"]),
        (Direction.BACKWARD, ["s3", "s2"]),
        (Direction.FORWARD, ["s2"]),
        (Direction.FORWARD, ["s3"]),
    ]
    queries = []
    for i in range(N_QUERIES):
        direction, path = paths[i % len(paths)]
        cells = rng.integers(0, min(SHAPE), size=(CELLS_PER_QUERY, 2))
        queries.append(
            LineageQuery(
                cells=cells,
                path=tuple(QueryStep(n, 0) for n in path),
                direction=direction,
            )
        )
    return queries


@pytest.fixture(scope="module")
def serving_workload(tmp_path_factory):
    rng = np.random.default_rng(11)
    image = SciArray.from_numpy(rng.random(SHAPE))
    versions = VersionStore()
    sz = SubZero(_spec(), enable_query_opt=False)
    sz.set_strategy("s1", FULL_ONE_B)
    sz.set_strategy("s2", FULL_MANY_B)
    sz.set_strategy("s3", PAY_ONE_B)
    sz.run({"img": image}, version_store=versions)
    directory = str(tmp_path_factory.mktemp("serving"))
    sz.flush_lineage(directory)
    queries = _queries(np.random.default_rng(5))
    baseline = [sorted(map(tuple, r.coords.tolist())) for r in sz.serve(queries, 1)]
    return {
        "versions": versions,
        "wal": sz.wal,
        "dir": directory,
        "queries": queries,
        "baseline": baseline,
    }


def _engine(workload, budget=None) -> SubZero:
    sz = SubZero(_spec(), enable_query_opt=False, memory_budget_bytes=budget)
    sz.resume(workload["versions"], wal=workload["wal"], lineage_dir=workload["dir"])
    return sz


def _tiny_budget(directory: str) -> int:
    catalog = StoreCatalog.open(directory)
    return max(e.nbytes for e in catalog.entries()) + 1


def _throughput(sz: SubZero, queries, workers: int, baseline) -> float:
    start = time.perf_counter()
    results = sz.serve(queries, max_workers=workers)
    elapsed = time.perf_counter() - start
    for got, want in zip(results, baseline):
        assert sorted(map(tuple, got.coords.tolist())) == want
    return len(queries) / elapsed


@pytest.mark.benchmark(group="serving")
def test_thread_scaling_hot_vs_evicting(benchmark, serving_workload):
    """Acceptance: 8 hot-cache reader threads target >= 3x single-thread
    throughput (enforced where the hardware can express it), the evicting
    configuration keeps answering correctly under constant churn, and the
    memory budget caps resident bytes once the pool drains."""
    queries = serving_workload["queries"]
    baseline = serving_workload["baseline"]
    budget = _tiny_budget(serving_workload["dir"])

    table = ResultTable(
        title=(
            f"thread scaling, {len(queries)} mixed queries x "
            f"{CELLS_PER_QUERY} cells ({os.cpu_count()} cpus)"
        ),
        columns=["cache", "threads", "queries/s", "speedup", "evictions"],
    )
    speedups = {}
    metrics = {}
    for label, engine_budget in (("hot", None), ("evicting", budget)):
        base_qps = None
        with _engine(serving_workload, budget=engine_budget) as sz:
            sz.serve(queries[: len(queries) // 4], max_workers=2)  # warm the cache
            for workers in THREADS:
                qps = _throughput(sz, queries, workers, baseline)
                if base_qps is None:
                    base_qps = qps
                speedups[(label, workers)] = qps / base_qps
                metrics[f"{label}_qps_{workers}"] = round(qps, 2)
                table.add_row(
                    label,
                    workers,
                    round(qps, 1),
                    round(qps / base_qps, 2),
                    sz.runtime.serving_stats()["evictions"],
                )
            stats = sz.runtime.serving_stats()
            metrics[f"{label}_evictions"] = stats["evictions"]
            if engine_budget is not None:
                metrics["budget_respected"] = int(
                    stats["resident_bytes"] <= engine_budget
                )
    # publish BEFORE asserting: a regression must land in the JSON so the
    # baseline check trips on it even when this (continue-on-error) bench
    # step is allowed to go red
    write_bench_json("serving", metrics)
    assert metrics["evicting_evictions"] > 0
    assert metrics["budget_respected"] == 1
    assert metrics["hot_evictions"] == 0

    def run():
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
    cpus = os.cpu_count() or 1
    if cpus >= 8:
        assert speedups[("hot", 8)] >= 3.0, speedups
    elif cpus >= 4:
        assert speedups[("hot", 4)] >= 1.5, speedups
    # single-core containers: scaling is unobservable; the table still
    # documents it and correctness was asserted above for every row


@pytest.mark.benchmark(group="serving")
def test_shard_vs_monolith_cold_open(benchmark, serving_workload, tmp_path_factory):
    """A fresh process's first query against one store: the sharded layout
    maps only the shards that query touches, the monolith maps everything
    at once — with identical answers either way."""
    mono_dir = serving_workload["dir"]
    shard_dir = str(tmp_path_factory.mktemp("sharded"))
    with _engine(serving_workload) as sz:
        sz.runtime.flush_all(shard_dir, shard_threshold_bytes=SHARD_THRESHOLD)

    catalog = StoreCatalog.open(shard_dir)
    entry = next((e for e in catalog.entries() if e.shards), None)
    assert entry is not None, "no store crossed the shard threshold"
    rng = np.random.default_rng(23)
    matched_q = np.unique(
        rng.integers(0, int(np.prod(entry.out_shape)), size=CELLS_PER_QUERY)
    )
    scan_q = np.unique(
        rng.integers(0, int(np.prod(entry.in_shapes[0])), size=CELLS_PER_QUERY)
    )

    def cold_first_queries(directory):
        best = {"open": np.inf, "matched": np.inf, "scan": np.inf}
        answers = at_open = after_scan = None
        for _ in range(3):
            cat = StoreCatalog.open(directory)
            start = time.perf_counter()
            store = cat.open_store(entry.node, entry.strategy)
            best["open"] = min(best["open"], time.perf_counter() - start)
            seg = store._segment
            sharded = hasattr(seg, "open_shard_count")
            at_open = (
                f"{seg.open_shard_count()}/{len(seg.shard_files)}" if sharded else "1/1"
            )
            start = time.perf_counter()
            matched, per_input = store.backward_full(matched_q, only_input=0)
            best["matched"] = min(best["matched"], time.perf_counter() - start)
            start = time.perf_counter()
            scan = store.scan_forward_full(scan_q, 0)
            best["scan"] = min(best["scan"], time.perf_counter() - start)
            answers = (
                matched.tolist(),
                sorted(per_input[0].tolist()),
                sorted(scan.tolist()),
            )
            after_scan = (
                f"{seg.open_shard_count()}/{len(seg.shard_files)}" if sharded else "1/1"
            )
            cat.close()
        return best, answers, at_open, after_scan

    mono, mono_answers, mono_open, mono_after = cold_first_queries(mono_dir)
    shard, shard_answers, shard_open, shard_after = cold_first_queries(shard_dir)
    assert mono_answers == shard_answers  # shard round-trip preserves answers

    def run():
        out = ResultTable(
            title=(
                f"cold open + first queries, store {entry.node!r} "
                f"({entry.nbytes} bytes, threshold {SHARD_THRESHOLD})"
            ),
            columns=[
                "layout", "mapped at open", "after scan", "open ms",
                "first matched ms", "first scan ms",
            ],
        )
        out.add_row(
            "monolithic segment", mono_open, mono_after,
            round(mono["open"] * 1e3, 3),
            round(mono["matched"] * 1e3, 3), round(mono["scan"] * 1e3, 3),
        )
        out.add_row(
            f"sharded ({len(entry.shards)} shards)", shard_open, shard_after,
            round(shard["open"] * 1e3, 3), round(shard["matched"] * 1e3, 3),
            round(shard["scan"] * 1e3, 3),
        )
        out.print()

    benchmark.pedantic(run, rounds=1, iterations=1)


class _SlowEngine:
    """Engine wrapper pinning each query's service time, so the one-slot
    overload phase behaves the same on fast and slow machines."""

    def __init__(self, engine: SubZero, delay: float):
        self._engine = engine
        self._delay = delay

    def query(self, request: QueryRequest):
        time.sleep(self._delay)
        return self._engine.query(request)


@pytest.mark.benchmark(group="serving")
def test_daemon_qps_latency_and_backpressure(benchmark, serving_workload):
    """Client-driven daemon bench: 8 client threads push the full mixed
    workload over HTTP (QPS + p50/p99 latency, every answer checked against
    the in-process baseline), then 32 one-shot clients flood a one-slot
    gate and the daemon must shed the excess with 429 — never buffer it."""
    requests = [QueryRequest.from_query(q) for q in serving_workload["queries"]]
    baseline = serving_workload["baseline"]

    latencies: list[float] = []
    mismatches: list[int] = []
    errors: list[tuple[int, str]] = []
    side_lock = threading.Lock()  # szlint: ignore[SZ005] -- bench-local result collection, not engine state

    with _engine(serving_workload) as sz, QueryDaemon(sz) as daemon:
        host, port = daemon.address
        DaemonClient(host, port).wait_ready()

        def client(worker: int) -> None:
            me = DaemonClient(host, port, client_id=f"bench-{worker}")
            local: list[float] = []
            for i in range(worker, len(requests), N_CLIENTS):
                start = time.perf_counter()
                try:
                    canon = me.query_canonical(requests[i])
                except Exception as exc:  # noqa: BLE001 - tallied, then asserted zero
                    with side_lock:
                        errors.append((i, repr(exc)))
                    continue
                local.append(time.perf_counter() - start)
                if sorted(map(tuple, canon["coords"])) != baseline[i]:
                    with side_lock:
                        mismatches.append(i)
            with side_lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(N_CLIENTS)
        ]
        wall = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall

    qps = len(latencies) / wall if latencies else 0.0
    p50 = float(np.percentile(latencies, 50)) * 1e3 if latencies else 0.0
    p99 = float(np.percentile(latencies, 99)) * 1e3 if latencies else 0.0

    # overload phase: one execution slot, two queue seats, a 20 ms service
    # time — 32 simultaneous one-shot clients cannot all fit, and the
    # backpressure contract says the excess is refused loudly (429), not
    # absorbed into an unbounded buffer
    limits = ServingLimits(
        max_inflight=1,
        max_queue=2,
        max_per_client=OVERLOAD_CLIENTS,
        queue_timeout_seconds=0.05,
    )
    outcomes: list[str] = []
    with _engine(serving_workload) as sz2:
        with QueryDaemon(_SlowEngine(sz2, delay=0.02), limits=limits) as daemon:
            host, port = daemon.address
            DaemonClient(host, port).wait_ready()

            def one_shot(worker: int) -> None:
                me = DaemonClient(host, port, client_id=f"flood-{worker}")
                try:
                    me.query(requests[worker % len(requests)])
                    verdict = "ok"
                except QueueFullError:
                    verdict = "shed"
                except Exception as exc:  # noqa: BLE001 - surfaced via overload_bounded
                    verdict = f"error:{exc!r}"
                with side_lock:
                    outcomes.append(verdict)

            flood = [
                threading.Thread(target=one_shot, args=(w,))
                for w in range(OVERLOAD_CLIENTS)
            ]
            for t in flood:
                t.start()
            for t in flood:
                t.join()
            rejected = daemon.gate.stats()["rejected"]

    # keep-alive phase: the same client thread re-issuing calls over one
    # pooled connection vs opening a fresh TCP connection per call.  The
    # gated comparison uses /v1/health round-trips, where the transport IS
    # the cost, so the handshake saving shows as a stable speedup; the
    # query-path ms/query numbers (execution-dominated) ride along as
    # informational context.
    HEALTH_PROBES = 200
    pooled_s = fresh_s = 0.0
    pooled_q = fresh_q = 0.0
    with _engine(serving_workload) as sz3, QueryDaemon(sz3) as daemon:
        host, port = daemon.address
        DaemonClient(host, port).wait_ready()
        probe = requests[: max(1, len(requests) // 4)]
        for keep_alive in (True, False):
            me = DaemonClient(host, port, keep_alive=keep_alive)
            best = best_q = np.inf
            for _ in range(3):
                start = time.perf_counter()
                for _ in range(HEALTH_PROBES):
                    me.health()
                best = min(best, time.perf_counter() - start)
                start = time.perf_counter()
                for req in probe:
                    me.query(req)
                best_q = min(best_q, time.perf_counter() - start)
            me.close()
            if keep_alive:
                pooled_s, pooled_q = best, best_q
            else:
                fresh_s, fresh_q = best, best_q
    pooled_speedup = fresh_s / pooled_s if pooled_s else 0.0

    served = outcomes.count("ok")
    shed = outcomes.count("shed")
    metrics = {
        # wall-clock numbers are informational (machine-dependent, not
        # baselined); the structural indicators below are the gate
        "daemon_qps": round(qps, 2),
        "daemon_p50_ms": round(p50, 3),
        "daemon_p99_ms": round(p99, 3),
        "answers_match": int(not mismatches and not errors),
        "daemon_errors": len(errors) + len(mismatches),
        "queue_full_seen": int(shed > 0),
        "overload_served": int(served > 0),
        "overload_bounded": int(served + shed == OVERLOAD_CLIENTS),
        # keep-alive pooling: wall-clock numbers are informational; the
        # structural gate is that a pooled round-trip beats a fresh
        # connection on the transport-bound path
        "pooled_ms_per_rtt": round(pooled_s / HEALTH_PROBES * 1e3, 3),
        "fresh_ms_per_rtt": round(fresh_s / HEALTH_PROBES * 1e3, 3),
        "pooled_ms_per_query": round(pooled_q / len(probe) * 1e3, 3),
        "fresh_ms_per_query": round(fresh_q / len(probe) * 1e3, 3),
        "pooled_not_slower": int(pooled_speedup >= 1.0),
    }
    # publish BEFORE asserting, same as the thread-scaling bench above
    write_bench_json("daemon", metrics)
    assert metrics["answers_match"] == 1, (errors[:5], mismatches[:5])
    assert metrics["daemon_errors"] == 0
    oddballs = [v for v in outcomes if v not in ("ok", "shed")]
    assert metrics["queue_full_seen"] == 1, outcomes
    assert metrics["overload_served"] == 1, outcomes
    assert metrics["overload_bounded"] == 1, oddballs
    assert rejected == shed  # every client-visible 429 is an explicit gate rejection

    def run():
        table = ResultTable(
            title=(
                f"daemon over HTTP, {len(requests)} queries x "
                f"{N_CLIENTS} clients ({os.cpu_count()} cpus)"
            ),
            columns=["phase", "clients", "queries/s", "p50 ms", "p99 ms", "shed"],
        )
        table.add_row("steady", N_CLIENTS, round(qps, 1), round(p50, 2), round(p99, 2), 0)
        table.add_row("overload", OVERLOAD_CLIENTS, "-", "-", "-", shed)
        table.add_note(
            f"keep-alive: pooled {metrics['pooled_ms_per_rtt']} ms/rtt "
            f"vs fresh {metrics['fresh_ms_per_rtt']} ms/rtt "
            f"({pooled_speedup:.2f}x); queries "
            f"{metrics['pooled_ms_per_query']} vs "
            f"{metrics['fresh_ms_per_query']} ms"
        )
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="serving")
def test_shard_equivalence_spot_check(benchmark):
    """Belt-and-braces: one synthetic store, monolith vs 1-section-per-shard
    flush, identical matched + mismatched answers (the exhaustive version is
    the Hypothesis property in tests/test_serving.py)."""
    from repro.core.model import BufferSink, ElementwiseBatch

    shape = (64, 64)
    rng = np.random.default_rng(3)
    store = make_store("n", FULL_MANY_B, shape, (shape,))
    sink = BufferSink()
    cells = rng.integers(0, 64, size=(4096, 2))
    sink.add_elementwise(ElementwiseBatch(outcells=cells, incells=(cells[::-1].copy(),)))
    store.ingest(sink)

    def run():
        import tempfile

        with tempfile.TemporaryDirectory() as base:
            mono_path = os.path.join(base, "m.seg")
            shard_path = os.path.join(base, "s.seg")
            store.flush_segment(mono_path)
            store.flush_segment(shard_path, shard_threshold_bytes=1)
            q = np.sort(rng.integers(0, 64 * 64, size=128).astype(np.int64))
            mono = make_store("n", FULL_MANY_B, shape, (shape,))
            mono.load_segment(mono_path)
            sharded = make_store("n", FULL_MANY_B, shape, (shape,))
            sharded.load_segment(shard_path)
            m_matched, m_per = mono.backward_full(q)
            s_matched, s_per = sharded.backward_full(q)
            assert m_matched.tolist() == s_matched.tolist()
            assert [sorted(p.tolist()) for p in m_per] == [
                sorted(p.tolist()) for p in s_per
            ]
            assert sorted(mono.scan_forward_full(q, 0).tolist()) == sorted(
                sharded.scan_forward_full(q, 0).tolist()
            )
            mono.close()
            sharded.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
