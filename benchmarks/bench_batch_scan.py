"""Batch-scan benchmark: the vectorised BatchProbe vs the per-entry loop.

Not a paper figure — this validates the PR's batch scan engine against its
acceptance bars on the micro workload shapes:

* **scan speed**: probing a whole ``RegionEntryTable`` value heap through
  ``batch_probe()`` must be >= 2x faster than calling the per-entry in-situ
  probes in a Python loop (the pre-batch mismatched-orientation scan path),
  with *identical* verdicts;
* **bitmap footprint**: on dense-but-ragged masks — where interval runs
  fragment to near one run per cell — the ``0x42`` bitmap codec must encode
  to <= 0.5x the interval codec's bytes (and <= 0.5x delta's).

The entry mix mirrors the micro workloads: contiguous reshape-style runs
(interval-coded), strided/dense masks (bitmap-coded), scattered sets
(delta-coded), and a couple of extreme-span sets (raw-coded), so every
codec tag group of the batch engine is exercised.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_batch_scan.py --benchmark-only -s
"""

import time

import numpy as np
import pytest

from repro.bench.report import ResultTable
from repro.core.lineage_store import RegionEntryTable
from repro.storage import codecs

from conftest import MICRO_SHAPE, FULL

N_ENTRIES = 4000 if FULL else 1200
RUN_LENGTH = 64  # cells per contiguous reshape-style run
DENSE_SPAN = 512  # span of each ragged dense mask
N_QUERY_CELLS = 256
N_RAGGED_MASKS = 64


def build_entries(rng) -> list[np.ndarray]:
    size = int(np.prod(MICRO_SHAPE))
    entries: list[np.ndarray] = []
    for j in range(N_ENTRIES):
        kind = j % 4
        if kind == 0:  # contiguous run -> interval codec
            start = int(rng.integers(0, size - RUN_LENGTH))
            entries.append(np.arange(start, start + RUN_LENGTH, dtype=np.int64))
        elif kind == 1:  # ragged dense mask -> bitmap codec
            base = int(rng.integers(0, size - DENSE_SPAN))
            mask = rng.random(DENSE_SPAN) < 0.5
            mask[0] = mask[-1] = True
            entries.append(base + np.flatnonzero(mask).astype(np.int64))
        elif kind == 2:  # scattered set -> delta codec
            cells = rng.choice(size, size=24, replace=False)
            entries.append(np.sort(cells.astype(np.int64)))
        else:  # small unsorted set -> delta (unsorted flavour)
            cells = rng.choice(size, size=8, replace=False)
            entries.append(cells.astype(np.int64))
    return entries


def build_table(entries) -> RegionEntryTable:
    table = RegionEntryTable((len(entries),))
    for j, arr in enumerate(entries):
        table.add_entry(np.asarray([j], dtype=np.int64), codecs.encode_cells(arr))
    table.finalize()
    return table


def per_entry_scan(table: RegionEntryTable, query: np.ndarray) -> np.ndarray:
    """The pre-batch scan: one in-situ probe call per entry."""
    return np.asarray(
        [table.value_contains_any(e, query) for e in range(table.n_entries)],
        dtype=bool,
    )


def batch_scan(table: RegionEntryTable, query: np.ndarray) -> np.ndarray:
    return table.batch_probe().contains_any(query)


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(17)
    entries = build_entries(rng)
    table = build_table(entries)
    pool = np.concatenate([entries[i] for i in rng.integers(0, len(entries), 16)])
    query = np.sort(rng.choice(pool, size=N_QUERY_CELLS, replace=False))
    return entries, table, query


@pytest.mark.benchmark(group="batch-scan")
def test_batch_verdicts_identical_to_per_entry(benchmark, workload):
    """Acceptance: the batch pass answers exactly what the per-entry probes
    answer — verdicts and intersections, entry for entry."""
    entries, table, query = workload

    def check():
        assert np.array_equal(batch_scan(table, query), per_entry_scan(table, query))
        hit_ids, parts = table.batch_probe().intersect(query)
        by_entry = dict(zip(hit_ids.tolist(), parts))
        for e in range(table.n_entries):
            expected = table.value_intersect(e, query)
            if expected.size:
                assert by_entry[e].tolist() == expected.tolist()
            else:
                assert e not in by_entry

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="batch-scan")
def test_batch_scan_at_least_2x_faster(benchmark, workload):
    """Acceptance: the vectorised pass beats the per-entry probe loop >= 2x
    on the micro workload (and by far more once the lowered tables are
    warm, which is the steady scan state)."""
    entries, table, query = workload
    assert np.array_equal(batch_scan(table, query), per_entry_scan(table, query))

    loop_s = _best_of(lambda: per_entry_scan(table, query))

    def cold_batch():
        table._probes = {}  # drop the cached lowering: first-scan cost
        batch_scan(table, query)

    cold_s = _best_of(cold_batch)
    batch_scan(table, query)  # ensure the cache is warm
    warm_s = benchmark.pedantic(
        lambda: _best_of(lambda: batch_scan(table, query), rounds=5),
        rounds=1,
        iterations=1,
    )

    table_out = ResultTable(
        title=f"batch scan vs per-entry loop ({table.n_entries} entries, "
        f"{query.size} query cells)",
        columns=["path", "ms", "speedup"],
    )
    table_out.add_row("per-entry loop", round(loop_s * 1e3, 3), 1.0)
    table_out.add_row(
        "batch (cold, builds tables)", round(cold_s * 1e3, 3),
        round(loop_s / max(cold_s, 1e-9), 1),
    )
    table_out.add_row(
        "batch (warm, cached tables)", round(warm_s * 1e3, 3),
        round(loop_s / max(warm_s, 1e-9), 1),
    )
    table_out.print()

    assert warm_s * 2 <= loop_s, (warm_s, loop_s)


@pytest.mark.benchmark(group="batch-scan")
def test_cold_start_first_scan_within_2x_of_warm(benchmark, workload, tmp_path_factory):
    """Acceptance (segmented store format): the first mismatched-orientation
    scan after a fresh load from disk must run within 2x of the warm
    in-memory scan when the lowered tables were persisted in the segment —
    no codec header walk — and the table shows the gap against a segment
    flushed *without* them (which pays the full lowering on first scan)."""
    entries, table, query = workload
    batch_scan(table, query)  # warm the in-memory lowered tables
    warm_s = _best_of(lambda: batch_scan(table, query), rounds=5)

    base = tmp_path_factory.mktemp("coldstart")
    with_path = str(base / "with_lowered.seg")
    table.flush(with_path)  # persists the warm lowered tables
    # a table flushed before any scan ran carries no lowered tables
    bare = build_table(entries)
    without_path = str(base / "without_lowered.seg")
    bare.flush(without_path)
    # the genuine capture-time cost: lower a cold-built table, then flush it
    cold_built = build_table(entries)
    flush_s = time.perf_counter()
    cold_built.batch_probe().lowered_tables()
    cold_built.flush(str(base / "cold_flush.seg"))
    flush_s = time.perf_counter() - flush_s

    def first_scan(path):
        """Fresh objects + fresh mapping from disk: the cold-start cost a
        new serving process pays on its first scan (load timed apart)."""
        best_load, best_scan, verdicts = float("inf"), float("inf"), None
        for _ in range(3):
            start = time.perf_counter()
            loaded = RegionEntryTable.load(path, table.key_shape)
            best_load = min(best_load, time.perf_counter() - start)
            start = time.perf_counter()
            verdicts = batch_scan(loaded, query)
            best_scan = min(best_scan, time.perf_counter() - start)
        return best_load, best_scan, verdicts

    with_load_s, with_s, with_v = first_scan(with_path)
    without_load_s, without_s, without_v = first_scan(without_path)
    assert np.array_equal(with_v, without_v)
    assert np.array_equal(with_v, batch_scan(table, query))

    def run():
        out = ResultTable(
            title=f"cold start: flush -> fresh load -> first mismatched scan "
            f"({table.n_entries} entries, {query.size} query cells)",
            columns=["path", "load ms", "first-scan ms", "x warm scan"],
        )
        out.add_row("warm in-memory scan", "-", round(warm_s * 1e3, 3), 1.0)
        out.add_row(
            "segment WITH lowered tables", round(with_load_s * 1e3, 3),
            round(with_s * 1e3, 3), round(with_s / max(warm_s, 1e-9), 2),
        )
        out.add_row(
            "segment WITHOUT lowered tables", round(without_load_s * 1e3, 3),
            round(without_s * 1e3, 3), round(without_s / max(warm_s, 1e-9), 2),
        )
        out.add_row("flush of a cold table (lower + write)", "-", round(flush_s * 1e3, 3), "-")
        out.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
    # the acceptance bar: persisted lowered tables make the first scan warm
    assert with_s <= 2.0 * max(warm_s, 5e-4), (with_s, warm_s)


@pytest.mark.benchmark(group="batch-scan")
def test_bitmap_at_most_half_interval_on_ragged_dense(benchmark, workload):
    """Acceptance: bitmap <= 0.5x interval bytes on ragged dense masks."""
    rng = np.random.default_rng(5)

    def check():
        table = ResultTable(
            title="ragged dense masks: codec bytes",
            columns=["density", "interval", "delta", "bitmap", "interval/bitmap"],
        )
        for density in (0.35, 0.5, 0.65):
            interval_total = delta_total = bitmap_total = 0
            for _ in range(N_RAGGED_MASKS):
                mask = rng.random(DENSE_SPAN) < density
                mask[0] = mask[-1] = True
                arr = np.flatnonzero(mask).astype(np.int64)
                interval_total += codecs.INTERVAL.nbytes(arr)
                delta_total += codecs.DELTA.nbytes(arr)
                bitmap_total += codecs.BITMAP.nbytes(arr)
                assert codecs.encode_cells(arr)[0] == codecs.TAG_BITMAP
            table.add_row(
                density, interval_total, delta_total, bitmap_total,
                round(interval_total / bitmap_total, 2),
            )
            assert bitmap_total * 2 <= interval_total
            assert bitmap_total * 2 <= delta_total
        table.print()

    benchmark.pedantic(check, rounds=1, iterations=1)
