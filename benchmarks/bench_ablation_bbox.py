"""Ablation: bounding-box re-execution predicates (§V-B, rejected).

The paper extended operators to store bounding-box predicates so black-box
re-execution could run on input slices — and rejected the idea: per-box
re-execution pays a fixed overhead per box, while *merging* the boxes
"quickly expands to encompass the full input array".

This bench reproduces the rejection quantitatively on the astronomy CRD
operator: as the number of query cells grows, the merged bounding box of
their region pairs converges to the whole array, so the predicate saves
nothing while costing a retrieval pass.
"""

import time

import numpy as np
import pytest

from repro import FULL_MANY_B, SubZero
from repro.bench.astronomy import AstronomyBenchmark
from repro.bench.report import ResultTable

from conftest import ASTRO_SHAPE


@pytest.fixture(scope="module")
def setup():
    bench = AstronomyBenchmark(shape=ASTRO_SHAPE, seed=0, n_stars=30, n_cosmic=20)
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    sz.set_strategy("crd_1", FULL_MANY_B)
    sz.run(bench.inputs())
    store = sz.runtime.store_for("crd_1", FULL_MANY_B)
    return bench, sz, store


@pytest.fixture(scope="module")
def coverage_rows(setup):
    bench, sz, store = setup
    rng = np.random.default_rng(2)
    h, w = ASTRO_SHAPE
    array_area = h * w
    table = ResultTable(
        "Ablation: merged bounding-box coverage vs query size (CRD operator)",
        ["query_cells", "retrieval_s", "merged_coverage"],
    )
    rows = []
    for n_cells in (1, 16, 256, 4096):
        cells = np.stack(
            [rng.integers(0, h, size=n_cells), rng.integers(0, w, size=n_cells)],
            axis=1,
        ).astype(np.int64)
        start = time.perf_counter()
        entry_ids = store._table.candidate_entries(cells)
        lo, hi = store._table.entry_boxes()
        if entry_ids.size:
            merged_lo = lo[entry_ids].min(axis=0)
            merged_hi = hi[entry_ids].max(axis=0)
            area = float(np.prod(merged_hi - merged_lo + 1))
        else:
            area = 0.0
        retrieval = time.perf_counter() - start
        coverage = area / array_area
        rows.append((n_cells, retrieval, coverage))
        table.add_row(n_cells, retrieval, coverage)
    table.add_note(
        "coverage -> 1.0 means re-executing on the merged box equals a full re-run"
    )
    table.print()
    return rows


@pytest.mark.benchmark(group="ablation-bbox")
def test_bbox_retrieval_cost(benchmark, setup):
    """Live measurement of per-query predicate retrieval + merging."""
    _, _, store = setup
    rng = np.random.default_rng(5)
    h, w = ASTRO_SHAPE
    cells = np.stack(
        [rng.integers(0, h, size=1024), rng.integers(0, w, size=1024)], axis=1
    ).astype(np.int64)

    def retrieve_and_merge():
        entry_ids = store._table.candidate_entries(cells)
        lo, hi = store._table.entry_boxes()
        return lo[entry_ids].min(axis=0), hi[entry_ids].max(axis=0)

    benchmark.pedantic(retrieve_and_merge, rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-bbox-shape")
def test_merged_box_expands_to_whole_array(benchmark, coverage_rows):
    """The paper's rejection argument: for realistic query sizes the merged
    predicate covers (nearly) the full array, and retrieval is never free."""
    def check():
        assert coverage_rows[-1][2] > 0.9
        coverages = [row[2] for row in coverage_rows]
        assert coverages == sorted(coverages)
        assert all(row[1] > 0 for row in coverage_rows)

    benchmark.pedantic(check, rounds=1, iterations=1)
