"""Figure 7: the lineage-strategy optimizer under storage budgets.

The paper sweeps MaxDISK from 1 MB to 100 MB on the genomics benchmark
(SubZero1 ... SubZero100): the optimizer picks black-box only under the
tightest budget, then progressively storage-hungrier, query-faster mixes.

Budgets scale with the dataset so the reduced-size default run exercises the
same regimes; ``REPRO_BENCH_FULL=1`` reproduces the paper's exact points.
"""

import pytest

from repro import SubZero
from repro.bench.genomics import GenomicsBenchmark
from repro.bench.harness import genomics_table, run_genomics_optimizer

from conftest import GENOMICS_SCALE

PAPER_BUDGETS_MB = (1, 10, 20, 50, 100)


def scaled(budget_mb: float) -> float:
    return budget_mb * GENOMICS_SCALE / 100


@pytest.fixture(scope="module")
def optimizer_runs():
    budgets = tuple(scaled(b) for b in PAPER_BUDGETS_MB)
    runs = run_genomics_optimizer(budgets_mb=budgets, scale=GENOMICS_SCALE, seed=0)
    for run, paper_budget in zip(runs, PAPER_BUDGETS_MB):
        run.label = f"SubZero{paper_budget}"
    genomics_table(runs, "Figure 7: optimizer under storage budgets").print()
    return runs


@pytest.fixture(scope="module")
def loose_budget_live():
    """An engine optimized under the loosest budget, for live queries."""
    bench = GenomicsBenchmark(scale=GENOMICS_SCALE, seed=0)
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    instance = sz.profile(bench.inputs())
    workload = list(bench.queries(instance).values())
    sz.optimize(workload, max_disk_bytes=scaled(PAPER_BUDGETS_MB[-1]) * 1e6)
    instance = sz.run(bench.inputs())
    return sz, bench.queries(instance)


@pytest.mark.benchmark(group="fig7-live-queries")
@pytest.mark.parametrize("query", ["BQ0", "BQ1", "FQ0", "FQ1"])
def test_fig7_loose_budget_queries(benchmark, loose_budget_live, query):
    sz, queries = loose_budget_live
    result = benchmark.pedantic(
        lambda: sz.execute_query(queries[query]), rounds=3, iterations=1
    )
    assert result.count > 0


@pytest.mark.benchmark(group="fig7-optimize")
def test_fig7_optimizer_solve_time(benchmark):
    """The ILP itself must be interactive (the paper reports ~1 ms)."""
    bench = GenomicsBenchmark(scale=GENOMICS_SCALE, seed=0)
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    instance = sz.profile(bench.inputs())
    workload = list(bench.queries(instance).values())
    result = benchmark.pedantic(
        lambda: sz.optimize(workload, max_disk_bytes=scaled(20) * 1e6, apply=False),
        rounds=3,
        iterations=1,
    )
    assert result.plan


@pytest.mark.benchmark(group="fig7-shape")
def test_fig7_budget_and_monotonicity(benchmark, optimizer_runs):
    def check():
        budgets = tuple(scaled(b) for b in PAPER_BUDGETS_MB)
        for run, budget in zip(optimizer_runs, budgets):
            assert run.disk_mb <= budget * 1.05, (run.label, run.disk_mb, budget)
        disks = [run.disk_mb for run in optimizer_runs]
        # storage use grows (or stays flat) as the budget loosens
        assert all(a <= b * 1.2 + 1e-9 for a, b in zip(disks, disks[1:])), disks

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig7-shape")
def test_fig7_loose_budget_speeds_forward_queries(benchmark, optimizer_runs):
    """With storage to spare the optimizer forward-optimizes the UDFs and
    forward queries drop well below the tight-budget configuration."""
    def check():
        tight, loose = optimizer_runs[0], optimizer_runs[-1]
        tight_fwd = tight.query_seconds["FQ0"] + tight.query_seconds["FQ1"]
        loose_fwd = loose.query_seconds["FQ0"] + loose.query_seconds["FQ1"]
        assert loose_fwd < tight_fwd
        # and the loose plan actually stores more
        assert loose.disk_mb >= tight.disk_mb

    benchmark.pedantic(check, rounds=1, iterations=1)
