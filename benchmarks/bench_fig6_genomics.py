"""Figure 6: the genomics benchmark under eight static strategies.

6(a): disk and runtime overhead.  6(b): query costs with the *static*
executor (it blindly joins against whatever was stored, including
mismatched-orientation indexes).  6(c): the same queries with the
query-time optimizer, which bounds the damage by dynamically switching to
re-execution.

The module fixtures sweep all eight Table-II configurations and print the
paper-shaped tables; the ``benchmark`` tests re-execute representative
queries live against kept engines.

Expected shape (paper): dual-orientation strategies cost the most storage;
mismatched-orientation stores degrade queries in 6(b); 6(c) keeps every
query at-or-better-than a small multiple of BlackBox.

One deliberate divergence from the paper's Figure 6(b): since the batch
scan engine landed (PR 2), mismatched-orientation access runs as a few
vectorised passes over the value heap instead of a per-entry cursor, so on
this laptop-sized workload it no longer falls off a cliff *below
re-execution* — the mismatch penalty is still real, but it is now measured
against the matching index, which is the shape asserted here.  The
segmented store format widens that divergence to cold starts too: a store
reloaded from a segment serves its lowered tables from the file, so even a
fresh process never pays the per-entry header walk the paper's cursor scan
models (the cold-start table in ``bench_batch_scan.py`` quantifies it).
"""

import pytest

from repro import SubZero
from repro.bench.genomics import UDF_NODES, GenomicsBenchmark
from repro.bench.harness import GENOMICS_CONFIGS, genomics_table, run_genomics

from conftest import GENOMICS_SCALE


@pytest.fixture(scope="module")
def static_runs():
    runs = run_genomics(scale=GENOMICS_SCALE, seed=0, query_opt=False)
    genomics_table(
        runs, "Figure 6(a)+(b): genomics overhead and static query costs"
    ).print()
    return {run.label: run for run in runs}


@pytest.fixture(scope="module")
def dynamic_runs():
    runs = run_genomics(scale=GENOMICS_SCALE, seed=0, query_opt=True)
    genomics_table(
        runs, "Figure 6(c): genomics query costs with the query-time optimizer"
    ).print()
    return {run.label: run for run in runs}


def _live_engine(label: str, query_opt: bool):
    bench = GenomicsBenchmark(scale=GENOMICS_SCALE, seed=0)
    sz = SubZero(bench.build_spec(), enable_query_opt=query_opt)
    sz.use_mapping_where_possible()
    strategies = GENOMICS_CONFIGS[label]
    if strategies:
        for udf in UDF_NODES:
            sz.set_strategy(udf, *strategies)
    instance = sz.run(bench.inputs())
    return sz, bench.queries(instance)


@pytest.fixture(scope="module")
def blackbox_live():
    return _live_engine("BlackBox", query_opt=False)


@pytest.fixture(scope="module")
def payboth_live():
    return _live_engine("PayBoth", query_opt=False)


@pytest.mark.benchmark(group="fig6b-static-queries")
@pytest.mark.parametrize("engine", ["BlackBox", "PayBoth"])
@pytest.mark.parametrize("query", ["BQ0", "BQ1", "FQ0", "FQ1"])
def test_fig6b_live_queries(benchmark, blackbox_live, payboth_live, engine, query):
    sz, queries = blackbox_live if engine == "BlackBox" else payboth_live
    result = benchmark.pedantic(
        lambda: sz.execute_query(queries[query]), rounds=1, iterations=1
    )
    assert result.count > 0


@pytest.mark.benchmark(group="fig6-shape")
def test_fig6a_overhead_shape(benchmark, static_runs):
    """Dual-orientation strategies pay the most storage; payload the least
    of the materialising strategies."""
    def check():
        assert static_runs["FullBoth"].disk_mb > static_runs["FullOne"].disk_mb
        assert static_runs["PayBoth"].disk_mb > static_runs["PayOne"].disk_mb
        assert static_runs["PayOne"].disk_mb < static_runs["FullOne"].disk_mb
        assert static_runs["BlackBox"].disk_mb == 0

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig6-shape")
def test_fig6b_mismatched_indexes_degrade(benchmark, static_runs):
    """Blindly joining a backward query against a forward-optimized store
    still pays a real penalty — but since the batch scan engine it is paid
    relative to the *matching* index, not as a cliff below re-execution."""
    def check():
        assert (
            static_runs["FullForw"].query_seconds["BQ0"]
            > static_runs["FullOne"].query_seconds["BQ0"]
        )
        # backward-optimized payload stores degrade forward queries below
        # the forward-optimized full store
        assert (
            static_runs["PayOne"].query_seconds["FQ0"]
            > static_runs["FullForw"].query_seconds["FQ0"]
        )
        # while matched orientations beat re-execution outright
        assert (
            static_runs["FullForw"].query_seconds["FQ0"]
            < static_runs["BlackBox"].query_seconds["FQ0"]
        )
        assert (
            static_runs["FullOne"].query_seconds["BQ0"]
            < static_runs["BlackBox"].query_seconds["BQ0"]
        )

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig6-shape")
def test_fig6c_optimizer_bounds_damage(benchmark, dynamic_runs):
    """With the query-time optimizer, no strategy's query should be much
    worse than ~2x black-box (§VII-A)."""
    def check():
        for label, run in dynamic_runs.items():
            for query, seconds in run.query_seconds.items():
                blackbox = dynamic_runs["BlackBox"].query_seconds[query]
                budget = max(3.0 * blackbox, 0.25)
                assert seconds <= budget, (
                    f"{label}/{query}: {seconds:.3f}s vs blackbox {blackbox:.3f}s"
                )

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig6-shape")
def test_fig6c_no_worse_than_static_mismatch(benchmark, static_runs, dynamic_runs):
    """The batch scan engine already pulled the static mismatched scan to
    interactive speed; the query-time optimizer must not regress it (its
    historical job of rescuing this case is now a no-op, not a loss)."""
    def check():
        static_s = static_runs["FullForw"].query_seconds["BQ0"]
        dynamic_s = dynamic_runs["FullForw"].query_seconds["BQ0"]
        assert dynamic_s <= max(1.5 * static_s, 0.25), (dynamic_s, static_s)

    benchmark.pedantic(check, rounds=1, iterations=1)
