"""Append-merge benchmark: delta appends vs full re-flush, and the overlay
read amplification online compaction removes.

Not a paper figure — this validates the generational catalog against its
acceptance bars:

* **append vs re-flush**: committing a 10% delta run with
  ``StoreCatalog.append`` must be >= 5x cheaper than re-flushing the whole
  catalog, in bytes written and in wall time — the OrpheusDB-style cheap
  incremental commit.
* **read amplification**: a mismatched scan over a 4-generation overlay
  pays one batch-scan pass per generation; after ``StoreCatalog.compact``
  the scan must return to within 1.2x of a store that was flushed in one
  piece (structurally, the compacted segment *is* that store).

Both tables are also published machine-readably to ``BENCH_compaction.json``
(metric -> value) for ``benchmarks/check_regressions.py``.

Run with::

    PYTHONPATH=src pytest benchmarks/bench_compaction.py --benchmark-only -s
"""

import shutil
import threading
import time

import numpy as np
import pytest

from repro import FULL_MANY_B
from repro.bench.report import ResultTable, write_bench_json
from repro.core.catalog import StoreCatalog
from repro.core.costmodel import CostModel
from repro.core.lineage_store import make_store
from repro.core.model import BufferSink, ElementwiseBatch
from repro.core.stats import StatsCollector
from repro.serving.maintenance import MaintenanceWorker

from conftest import FULL

SHAPE = (256, 256)
N_BASE = 40_000 if FULL else 12_000
DELTA_FRACTION = 10  # each delta run carries N_BASE / 10 new entries
N_QUERY = 64
KEY = ("n", FULL_MANY_B)


def _store(seed: int, n: int):
    rng = np.random.default_rng(seed)
    store = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
    sink = BufferSink()
    outs = rng.integers(0, SHAPE[0], size=(n, 2))
    ins = rng.integers(0, SHAPE[0], size=(n, 2))
    sink.add_elementwise(ElementwiseBatch(outcells=outs, incells=(ins,)))
    store.ingest(sink)
    store.finalize_if_possible()
    return store


def _best_of(fn, rounds: int = 3) -> float:
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_scan_times(dir_a, dir_b, query, repeats=10, rounds=7):
    """Best-of scan times for two layouts, measured *interleaved* so a
    shared-runner load spike hits both sides, not just one."""
    catalogs = [StoreCatalog.open(d) for d in (dir_a, dir_b)]
    stores = [c.open_store(*KEY) for c in catalogs]
    answers = [None, None]
    best = [np.inf, np.inf]
    for store in stores:  # hydrate the persisted lowered tables
        store.scan_forward_full(query, 0)
    for _ in range(rounds):
        for i, store in enumerate(stores):
            start = time.perf_counter()
            for _ in range(repeats):
                answers[i] = store.scan_forward_full(query, 0)
            best[i] = min(best[i], (time.perf_counter() - start) / repeats)
    gens = [c.generation_count(*KEY) for c in catalogs]
    for catalog in catalogs:
        catalog.close()
    return best, [sorted(a.tolist()) for a in answers], gens


@pytest.mark.benchmark(group="compaction")
def test_append_vs_full_reflush(benchmark, tmp_path_factory):
    """Acceptance: appending a 10% delta run is >= 5x cheaper than a full
    re-flush — in bytes written and in seconds.

    Both paths start from the same state — a committed base catalog plus
    this run's delta store in memory — and commit the delta.  The re-flush
    must rebuild the union (reload the base, merge, re-sort, re-index,
    re-lower) and rewrite every byte; the append writes the delta segment
    and the manifest, leaving committed segments untouched.
    """
    base = _store(0, N_BASE)
    delta = _store(1, N_BASE // DELTA_FRACTION)

    root = tmp_path_factory.mktemp("append-vs-reflush")
    base_dir = str(root / "base")
    catalog, _ = StoreCatalog.write(base_dir, {KEY: base})
    catalog.close()

    # full re-flush: reload the committed base, merge the delta into it,
    # rebuild the derived structures, rewrite the whole catalog
    def full_reflush():
        directory = str(root / "full")
        shutil.rmtree(directory, ignore_errors=True)
        src = StoreCatalog.open(base_dir)
        merged = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
        merged.absorb(src.open_store(*KEY))
        merged.absorb(delta)
        merged.finalize_if_possible()
        catalog, nbytes = StoreCatalog.write(directory, {KEY: merged})
        catalog.close()
        src.close()
        return nbytes

    full_s = _best_of(full_reflush)
    full_bytes = full_reflush()

    # append: the base catalog exists; commit only the delta
    append_dirs = []
    for i in range(4):
        directory = str(root / f"inc{i}")
        shutil.copytree(base_dir, directory)
        append_dirs.append(directory)

    def append_one(directory=iter(append_dirs)):
        catalog, nbytes = StoreCatalog.append(next(directory), {KEY: delta})
        catalog.close()
        return nbytes

    append_s = _best_of(append_one)
    append_bytes = append_one()

    bytes_ratio = full_bytes / append_bytes
    seconds_ratio = full_s / append_s

    def run():
        table = ResultTable(
            title=(
                f"append a {100 // DELTA_FRACTION}% delta vs full re-flush "
                f"({N_BASE} base entries)"
            ),
            columns=["path", "bytes written", "seconds", "vs append"],
        )
        table.add_row("full re-flush", full_bytes, round(full_s, 4),
                      f"{seconds_ratio:.1f}x")
        table.add_row("append delta", append_bytes, round(append_s, 4), "1x")
        table.add_note(
            f"bytes ratio {bytes_ratio:.1f}x, seconds ratio {seconds_ratio:.1f}x "
            "(acceptance: both >= 5x)"
        )
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_bench_json(
        "compaction",
        {
            "append_bytes_ratio": bytes_ratio,
            "append_seconds_ratio": seconds_ratio,
            "append_bytes": append_bytes,
            "full_reflush_bytes": full_bytes,
        },
    )
    assert bytes_ratio >= 5.0, f"delta append only {bytes_ratio:.1f}x cheaper in bytes"
    assert seconds_ratio >= 5.0, f"delta append only {seconds_ratio:.1f}x faster"


@pytest.mark.benchmark(group="compaction")
def test_read_amplification_before_after_compact(benchmark, tmp_path_factory):
    """Acceptance: a mismatched scan over the compacted store runs within
    1.2x of a single-segment flush of the same lineage; the table also
    shows the pre-compaction overlay amplification that motivates it."""
    n_delta = N_BASE // DELTA_FRACTION
    generations = 4
    stores = [_store(0, N_BASE)] + [
        _store(seed, n_delta) for seed in range(1, generations)
    ]

    overlay_dir = str(tmp_path_factory.mktemp("overlay"))
    catalog, _ = StoreCatalog.write(overlay_dir, {KEY: stores[0]})
    catalog.close()
    for store in stores[1:]:
        catalog, _ = StoreCatalog.append(overlay_dir, {KEY: store})
        catalog.close()

    single = _store(0, N_BASE)
    for store in stores[1:]:
        single.absorb(store)
    single.finalize_if_possible()
    single_dir = str(tmp_path_factory.mktemp("single"))
    catalog, _ = StoreCatalog.write(single_dir, {KEY: single})
    catalog.close()

    rng = np.random.default_rng(7)
    query = np.unique(
        rng.integers(0, SHAPE[0] * SHAPE[1], size=N_QUERY).astype(np.int64)
    )

    (overlay_s, single_s), (overlay_answer, single_answer), (gens_before, _) = (
        _paired_scan_times(overlay_dir, single_dir, query)
    )

    compact_catalog = StoreCatalog.open(overlay_dir)
    report = compact_catalog.compact()
    compact_catalog.close()
    assert report.compacted, "nothing compacted"
    (compacted_s, single_s2), (compacted_answer, _), (gens_after, _) = (
        _paired_scan_times(overlay_dir, single_dir, query)
    )

    assert overlay_answer == single_answer == compacted_answer
    amp_overlay = overlay_s / single_s
    amp_compacted = compacted_s / single_s2

    def run():
        table = ResultTable(
            title=(
                f"mismatched scan amplification, {generations} generations "
                f"({N_BASE} + 3x{n_delta} entries, {query.size} query cells)"
            ),
            columns=["layout", "generations", "scan ms", "vs single flush"],
        )
        table.add_row(
            "overlay (pre-compaction)", gens_before,
            round(overlay_s * 1e3, 3), f"{amp_overlay:.2f}x",
        )
        table.add_row(
            "compacted", gens_after,
            round(compacted_s * 1e3, 3), f"{amp_compacted:.2f}x",
        )
        table.add_row("single full flush", 1, round(single_s * 1e3, 3), "1x")
        table.add_note(
            "acceptance: compacted within 1.2x of the single-segment flush"
        )
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_bench_json(
        "compaction",
        {
            "read_amp_overlay": amp_overlay,
            "read_amp_compacted": amp_compacted,
            "generations_before": gens_before,
            "generations_after": gens_after,
            "bytes_reclaimed": report.bytes_reclaimed,
        },
    )
    assert gens_before == generations and gens_after == 1
    assert amp_compacted <= 1.2, (
        f"post-compaction scan {amp_compacted:.2f}x the single-segment store"
    )


# -- autonomous maintenance stress ---------------------------------------------


class _CatalogEngine:
    """The two-method engine surface :class:`MaintenanceWorker` drives,
    bound to a bare :class:`StoreCatalog` — the same advice math the
    facade uses (the cost model's overlay penalty, worst first), without
    dragging a whole workflow into a storage bench."""

    def __init__(self, catalog):
        self.catalog = catalog
        self.stats = StatsCollector()
        self.model = CostModel(self.stats)

    def compaction_advice(self, n_query_cells=64):
        advice = []
        for node, strategy in self.catalog.keys():
            gens = self.catalog.generation_count(node, strategy)
            if gens <= 1:
                continue
            penalty = max(
                self.model.overlay_penalty_seconds(
                    node, strategy, backward, n_query_cells, gens
                )
                for backward in (True, False)
            )
            advice.append((node, strategy, gens, penalty))
        advice.sort(key=lambda item: -item[3])
        return advice

    def compact_lineage(self, node=None, strategy=None, budget_bytes=None):
        return self.catalog.compact(
            node=node, strategy=strategy, budget_bytes=budget_bytes
        )


def _owner_store(lo: int, hi: int):
    """One generation owning exactly the packed output keys ``[lo, hi)`` —
    disjoint ranges give every generation a distinct zone-map footprint."""
    packed = np.arange(lo, hi, dtype=np.int64)
    outs = np.stack(np.unravel_index(packed, SHAPE), axis=1)
    sink = BufferSink()
    sink.add_elementwise(ElementwiseBatch(outcells=outs, incells=(outs.copy(),)))
    store = make_store("n", FULL_MANY_B, SHAPE, (SHAPE,))
    store.ingest(sink)
    store.finalize_if_possible()
    return store


@pytest.mark.benchmark(group="compaction")
def test_mixed_stress_autonomous_maintenance(benchmark, tmp_path_factory):
    """Acceptance for the self-driving LSM loop, two bars:

    * **filters**: a matched backward query on a 20-generation store reads
      <= 2 generations — the per-generation bloom/zone filters reject the
      rest without touching them (asserted on the catalog's skip counters).
    * **maintenance**: a serving loop that keeps appending delta runs while
      queries execute — and never calls ``compact()`` itself — ends at
      steady-state read amplification <= 1.2x of a single-segment flush,
      because the background :class:`MaintenanceWorker` drains the
      generations whenever the foreground goes idle.
    """
    # -- bar 1: 20 generations, matched backward query probes <= 2 ---------
    gen_keys = 256
    probe_dir = str(tmp_path_factory.mktemp("probe"))
    catalog, _ = StoreCatalog.write(probe_dir, {KEY: _owner_store(0, gen_keys)})
    for g in range(1, 20):
        catalog.append_stores({KEY: _owner_store(g * gen_keys, (g + 1) * gen_keys)})
    assert catalog.generation_count(*KEY) == 20
    assert catalog.filters_ready(*KEY)

    store = catalog.open_store(*KEY)
    hot = np.arange(19 * gen_keys, 19 * gen_keys + N_QUERY, dtype=np.int64)
    before = catalog.stats()
    matched, _payload = store.backward_full(hot)
    counters = catalog.stats()
    probes = counters["filter_probes"] - before["filter_probes"]
    skipped = counters["generations_skipped"] - before["generations_skipped"]
    generations_probed = probes - skipped
    catalog.close()
    assert matched.all()
    assert probes == 20, f"expected one filter probe per generation, got {probes}"

    # -- bar 2: mixed append/query stress, zero manual compact() -----------
    n_delta = N_BASE // DELTA_FRACTION
    stress_rounds = 12
    deltas = [_store(100 + i, n_delta) for i in range(stress_rounds)]

    stress_dir = str(tmp_path_factory.mktemp("stress"))
    catalog, _ = StoreCatalog.write(stress_dir, {KEY: _store(0, N_BASE)})
    engine = _CatalogEngine(catalog)
    busy = threading.Event()
    worker = MaintenanceWorker(
        engine,
        is_idle=lambda: not busy.is_set(),
        stats=engine.stats,
        interval_s=0.002,
        idle_interval_s=0.02,
    ).start()

    rng = np.random.default_rng(11)
    query = np.unique(
        rng.integers(0, SHAPE[0] * SHAPE[1], size=N_QUERY).astype(np.int64)
    )
    max_gens_seen = 1
    for delta in deltas:
        catalog.append_stores({KEY: delta})
        max_gens_seen = max(max_gens_seen, catalog.generation_count(*KEY))
        worker.wake()
        busy.set()
        try:
            for _ in range(2):
                catalog.open_store(*KEY).scan_forward_full(query, 0)
        finally:
            busy.clear()
        time.sleep(0.005)  # an idle gap the worker can claim

    deadline = time.monotonic() + 120.0
    while engine.compaction_advice() and time.monotonic() < deadline:
        time.sleep(0.02)
    worker.stop()
    assert not engine.compaction_advice(), "maintenance never drained the backlog"
    gens_after_stress = catalog.generation_count(*KEY)
    maintenance = dict(engine.stats.maintenance)
    catalog.close()

    # steady state vs the same lineage flushed in one piece
    single = _store(0, N_BASE)
    for delta in deltas:
        single.absorb(delta)
    single.finalize_if_possible()
    single_dir = str(tmp_path_factory.mktemp("stress-single"))
    catalog, _ = StoreCatalog.write(single_dir, {KEY: single})
    catalog.close()

    (stress_s, single_s), (stress_answer, single_answer), _ = _paired_scan_times(
        stress_dir, single_dir, query
    )
    assert stress_answer == single_answer
    stress_amp = stress_s / single_s

    def run():
        table = ResultTable(
            title=(
                f"autonomous maintenance stress ({stress_rounds} delta runs of "
                f"{n_delta} entries under a query loop, zero manual compact())"
            ),
            columns=["measure", "value", "acceptance"],
        )
        table.add_row(
            "generations probed (20-gen matched query)",
            generations_probed, "<= 2",
        )
        table.add_row("filter probes / skipped", f"{probes} / {skipped}", "-")
        table.add_row(
            "generations after stress",
            f"{gens_after_stress} (peak {max_gens_seen})", "1",
        )
        table.add_row(
            "background compaction slices",
            maintenance["compactions_run"], ">= 1",
        )
        table.add_row(
            "steady-state read amp", f"{stress_amp:.2f}x", "<= 1.2x",
        )
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
    write_bench_json(
        "compaction",
        {
            "stress_read_amp": stress_amp,
            "stress_generations_probed": generations_probed,
            "stress_filter_probes": probes,
            "stress_generations_after": gens_after_stress,
            "stress_compactions_run": maintenance["compactions_run"],
            "stress_bytes_merged": maintenance["bytes_merged"],
        },
    )
    assert generations_probed <= 2, (
        f"matched query read {generations_probed} of 20 generations"
    )
    assert gens_after_stress == 1
    assert maintenance["compactions_run"] >= 1
    assert stress_amp <= 1.2, (
        f"steady-state scan {stress_amp:.2f}x the single-segment store"
    )
