"""Shared configuration for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` module regenerates one figure of the paper's
evaluation (§VIII) and prints the corresponding series as a table.  Default
parameters are laptop-sized; set ``REPRO_BENCH_FULL=1`` to run at the
paper's scale (two 512x2000 images, genomics at 100x, 1000x1000 micro
arrays).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

# astronomy: the paper uses two 512x2000-pixel exposures
ASTRO_SHAPE = (512, 2000) if FULL else (128, 500)
ASTRO_STARS = 60 if FULL else 30
ASTRO_COSMIC = 40 if FULL else 20

# genomics: the paper reports the dataset scaled by 100x
GENOMICS_SCALE = 100 if FULL else 25

# micro: 1000x1000 array, 10% coverage, fanin swept to 100
MICRO_SHAPE = (1000, 1000) if FULL else (400, 400)
MICRO_FANINS = (1, 10, 25, 50, 75, 100) if FULL else (1, 25, 100)
MICRO_FANOUTS = (1, 100)
MICRO_QUERY_CELLS = 1000 if FULL else 500
