"""The §II-A astronomy debugging session, end to end.

An astronomer sees a suspicious star in the final annotated image and works
*backward* to the raw exposure to find bad pixels; then takes the bad pixels
and works *forward* to see everything they contaminated.

Run with::

    python examples/astronomy_debugging.py           # small, fast
    REPRO_FULL=1 python examples/astronomy_debugging.py   # paper-scale images
"""

import os
import time

import numpy as np

from repro import COMP_ONE_B, SubZero
from repro.bench.astronomy import UDF_NODES, AstronomyBenchmark


def main() -> None:
    full = bool(os.environ.get("REPRO_FULL"))
    shape = (512, 2000) if full else (128, 500)
    print(f"generating two synthetic exposures of shape {shape}...")
    bench = AstronomyBenchmark(shape=shape, seed=0, n_stars=40, n_cosmic=25)

    # The "SubZero" configuration of Table II: mapping lineage for the 22
    # built-ins, composite lineage for the 4 UDFs.
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    for udf in UDF_NODES:
        sz.set_strategy(udf, COMP_ONE_B)

    start = time.perf_counter()
    instance = sz.run(bench.inputs())
    print(f"pipeline ran in {time.perf_counter() - start:.2f}s; "
          f"lineage store: {sz.lineage_disk_bytes() / 1e6:.2f} MB "
          f"(inputs: {sz.input_bytes() / 1e6:.1f} MB)")

    # -- backward: from a star to the raw pixels --------------------------------
    labels = instance.output_array("star_detect").values().astype(int)
    star_ids, counts = np.unique(labels[labels > 0], return_counts=True)
    star = int(star_ids[np.argmax(counts)])
    star_cells = np.stack(np.nonzero(labels == star), axis=1)
    centre = tuple(int(x) for x in star_cells.mean(axis=0))
    print(f"\nsuspicious star #{star}: {star_cells.shape[0]} pixels around {centre}")

    path = [
        ("star_detect", 0), ("floor", 0), ("contrast", 0), ("smooth2", 0),
        ("clip2", 0), ("bg2_sub", 0), ("rescale", 0), ("cr_remove", 0),
        ("min_combine", 0), ("gain_1", 0), ("clip_1", 0), ("bg_sub_1", 0),
        ("smooth_1", 0), ("flat_div_1", 0), ("bias_sub_1", 0),
    ]
    start = time.perf_counter()
    back = sz.backward_query(star_cells, path)
    elapsed = time.perf_counter() - start
    print(f"backward trace to exposure 1: {back.count} raw pixels "
          f"in {elapsed * 1e3:.1f} ms")

    raw = instance.source_array("img_1")
    values = raw.cells_at(back.coords)
    brightest = tuple(int(x) for x in back.coords[np.argmax(values)])
    print(f"brightest contributing raw pixel: {brightest} "
          f"(value {values.max():.0f})")

    # -- forward: what did that bad pixel contaminate? ---------------------------
    fwd_path = [
        ("bias_sub_1", 0), ("flat_div_1", 0), ("smooth_1", 0), ("bg_sub_1", 0),
        ("clip_1", 0), ("gain_1", 0), ("min_combine", 0), ("cr_remove", 0),
        ("rescale", 0), ("bg2_sub", 0), ("clip2", 0), ("smooth2", 0),
        ("contrast", 0), ("floor", 0), ("star_detect", 0),
    ]
    start = time.perf_counter()
    fwd = sz.forward_query([brightest], fwd_path)
    elapsed = time.perf_counter() - start
    print(f"forward trace of {brightest}: contaminates {fwd.count} cells of "
          f"the final star map ({elapsed * 1e3:.1f} ms)")

    # -- compare against black-box-only lineage -----------------------------------
    bb = SubZero(bench.build_spec())
    bb.use_mapping_where_possible()  # BlackBoxOpt baseline
    bb.run(bench.inputs())
    start = time.perf_counter()
    bb_back = bb.backward_query(star_cells, path)
    bb_elapsed = time.perf_counter() - start
    speedup = bb_elapsed / max(elapsed, 1e-9)
    print(f"\nsame backward query under BlackBoxOpt: {bb_elapsed * 1e3:.1f} ms "
          f"(SubZero strategy is ~{bb_elapsed / max(back.seconds, 1e-9):.0f}x faster)")
    assert {tuple(c) for c in bb_back.coords} == {tuple(c) for c in back.coords}
    print("answers agree cell-for-cell.")


if __name__ == "__main__":
    main()
