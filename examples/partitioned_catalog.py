"""Partitioned catalog walkthrough: flush lineage across partitions,
query through scatter-gather, and survive a torn partition.

One workflow's lineage is split by node subset into independent catalog
directories under a ``partitions.json`` root (docs/partitioning.md has
the manifest schema and routing rules).  Everything above the catalog —
queries, sessions, compaction — works unchanged; this example makes the
routing visible through the scatter counters.

Run with::

    python examples/partitioned_catalog.py
"""

import os
import shutil
import tempfile

import numpy as np

from repro import FULL_ONE_B, LineageMode, QueryRequest, SciArray, SubZero, WorkflowSpec
from repro.arrays import coords as C
from repro.ops.base import Operator


class Blur(Operator):
    """Mean over a (2r+1)^2 window — every output depends on its window,
    so Full region lineage is meaningful on every node."""

    arity = 1
    entire_array_safe = True

    def __init__(self, radius: int = 1, name: str | None = None):
        super().__init__(name)
        self.radius = int(radius)
        r = self.radius
        grid = np.meshgrid(np.arange(-r, r + 1), np.arange(-r, r + 1), indexing="ij")
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    def compute(self, inputs):
        from scipy import ndimage

        values = inputs[0].values()
        out = ndimage.uniform_filter(values, size=2 * self.radius + 1, mode="nearest")
        return SciArray.from_numpy(out, name=self.name)

    def supported_modes(self):
        return frozenset({LineageMode.FULL, LineageMode.BLACKBOX})

    def write_lineage(self, inputs, output, ctx):
        if not ctx.wants_full:
            return
        shape = self.input_shapes[0]
        cells = C.all_coords(shape)
        for cell in cells:
            window = C.clip_coords(cell + self._offsets, shape)
            ctx.lwrite(cell.reshape(1, -1), window)


def build_engine(materialise: bool = False) -> SubZero:
    spec = WorkflowSpec(name="partitioned")
    spec.add_source("image")
    spec.add_node("smooth", Blur(radius=1), ["image"])
    spec.add_node("refine", Blur(radius=2), ["smooth"])
    sz = SubZero(spec)
    if materialise:
        # Full lineage on both nodes, so each partition holds a store.
        sz.set_strategy("smooth", FULL_ONE_B)
        sz.set_strategy("refine", FULL_ONE_B)
    rng = np.random.default_rng(0)
    sz.run({"image": SciArray.from_numpy(rng.random((24, 28)))})
    return sz


def main() -> None:
    engine = build_engine(materialise=True)
    root = tempfile.mkdtemp(prefix="subzero-partitioned-")

    # 1. Flush with an explicit node -> partition map (an integer count
    #    hash-assigns instead).  Each partition is a self-contained
    #    catalog directory; the root holds only partitions.json.
    engine.flush_lineage(root, partitions={"smooth": "hot", "refine": "cold"})
    print(f"flushed partitioned catalog at {root}:")
    for name in sorted(os.listdir(root)):
        print(f"  {name}/" if os.path.isdir(os.path.join(root, name)) else f"  {name}")

    # 2. A fresh engine loads it back — load_lineage auto-detects the
    #    partitioned layout (registering each partition's strategies for
    #    the planner), and queries route through a scatter plan.
    server = build_engine(materialise=True)
    server.runtime.clear_stores()  # serve from the catalog, not memory
    server.load_lineage(root)
    request = QueryRequest.backward([(10, 10)], [("refine", 0), ("smooth", 0)])
    result = server.query(request)
    print(f"\nbackward lineage of refine cell (10, 10): {result.count} input cells")

    # 3. The scatter counters show the routing: both path nodes are
    #    mapped, so the plan is targeted — no broadcast, and only the
    #    partitions owning the path's nodes were probed.
    stats = server.runtime.catalog.stats()
    print(
        f"partitions={stats['partitions']} "
        f"scatter_queries={stats['scatter_queries']} "
        f"broadcasts={stats['scatter_broadcasts']} "
        f"targeted_probes={stats['targeted_probes']}"
    )

    # 4. Failure isolation: tear one partition's manifest.  Reopening
    #    degrades only that partition — its nodes fall back to black-box
    #    re-execution while the other keeps serving materialised lineage.
    server.close()
    with open(os.path.join(root, "cold", "catalog.json"), "w", encoding="utf-8") as fh:
        fh.write("{ torn")
    survivor = build_engine()
    survivor.load_lineage(root)
    catalog = survivor.runtime.catalog
    degraded = [pid for pid, _exc in catalog.degraded]
    print(f"\nafter tearing cold/catalog.json: degraded partitions = {degraded}")
    result = survivor.query(request)  # 'refine' falls back, 'smooth' serves
    methods = [(step.node, step.method) for step in result.steps]
    print(f"query still answers: {result.count} input cells via {methods}")
    survivor.close()
    engine.close()
    shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
