"""Tour of the lineage-strategy optimizer (§VII).

Profiles the genomics workflow once, then asks the ILP optimizer for the
best strategy mix under a sweep of storage budgets — reproducing in miniature
what Figure 7 measures.  Watch the plan shift from black-box-only to
payload stores to dual-orientation indexes as the budget loosens.

Run with::

    python examples/optimizer_tour.py
"""

import time

from repro.bench.genomics import GenomicsBenchmark
from repro.core.subzero import SubZero


def main() -> None:
    bench = GenomicsBenchmark(scale=20, seed=0)
    budgets_mb = (0.05, 0.5, 2, 10, 50)

    for budget in budgets_mb:
        sz = SubZero(bench.build_spec())
        sz.use_mapping_where_possible()
        instance = sz.profile(bench.inputs())  # gather statistics, store nothing
        workload = list(bench.queries(instance).values())
        result = sz.optimize(workload, max_disk_bytes=budget * 1e6)

        print(f"\n=== budget {budget} MB ===")
        print(f"  predicted: disk={result.est_disk_bytes / 1e6:.2f} MB, "
              f"runtime +{result.est_runtime_seconds:.3f}s, "
              f"query ~{result.est_query_seconds * 1e3:.2f} ms")
        for node, strategies in sorted(result.plan.items()):
            stored = [s.label for s in strategies if s.stores_pairs]
            if stored:
                print(f"  {node}: {', '.join(stored)}")

        # apply the plan and measure reality
        sz.run(bench.inputs())
        queries = bench.queries(sz.instance)
        total = 0.0
        for query in queries.values():
            start = time.perf_counter()
            sz.execute_query(query)
            total += time.perf_counter() - start
        print(f"  measured: disk={sz.lineage_disk_bytes() / 1e6:.2f} MB, "
              f"4-query workload {total * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
