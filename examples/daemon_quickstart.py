"""Serving daemon quickstart: run a workflow, serve its lineage over HTTP.

One process owns the engine; any number of clients — here just one, in
the same process for brevity — send ``QueryRequest`` objects as JSON and
get the versioned ``QueryResult`` wire form back.  The daemon is a thin
transport: the request executes through the exact same ``SubZero.query``
path an embedded caller uses (docs/serving.md documents the protocol,
the backpressure contract, and the schemas).

Run with::

    python examples/daemon_quickstart.py
"""

import numpy as np

from repro import QueryRequest, SciArray, SubZero, WorkflowSpec, ops
from repro.errors import QueueFullError
from repro.serving import DaemonClient, QueryDaemon, ServingLimits


def build_engine() -> SubZero:
    spec = WorkflowSpec(name="daemon-quickstart")
    spec.add_source("image")
    spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3, 1.0)), ["image"])
    spec.add_node("background", ops.GlobalMean(), ["smooth"])
    spec.add_node("corrected", ops.BroadcastSubtract(), ["smooth", "background"])
    spec.add_node("bright", ops.Threshold(0.35), ["corrected"])
    sz = SubZero(spec)
    sz.use_mapping_where_possible()
    rng = np.random.default_rng(0)
    sz.run({"image": SciArray.from_numpy(rng.random((48, 64)))})
    return sz


def main() -> None:
    # 1. Build and execute the workflow; the engine now answers lineage
    #    queries embedded.  The daemon exposes the same engine on the
    #    network: port=0 picks an ephemeral port, limits bound how much
    #    concurrent work the daemon ever admits (backpressure, not
    #    buffering, is the overload response).
    engine = build_engine()
    limits = ServingLimits(max_inflight=4, max_queue=8, max_per_client=4)

    with QueryDaemon(engine, limits=limits) as daemon:
        host, port = daemon.address
        print(f"daemon serving on http://{host}:{port}")

        # 2. A client: any process that can speak HTTP + JSON.  wait_ready
        #    absorbs the startup race between bind and first request.
        client = DaemonClient(host, port, client_id="quickstart")
        client.wait_ready()
        print(f"health: {client.health()}")

        # 3. The same frozen QueryRequest drives embedded and networked
        #    execution — compare the two answers.
        request = QueryRequest.backward(
            cells=[(10, 10)],
            path=[("bright", 0), ("corrected", 0), ("smooth", 0)],
        )
        over_wire = client.query(request)          # wire-form result dict
        embedded = engine.query(request).to_dict()
        print(f"\nbackward lineage of cell (10, 10) over HTTP: "
              f"{over_wire['count']} input pixels (schema v{over_wire['v']})")
        assert over_wire["coords"] == embedded["coords"]
        print("networked and embedded answers agree, cell for cell")

        # 4. Endpoint form: let the engine infer the route.
        request = QueryRequest.forward(cells=[(5, 5)], start="image", end="bright")
        result = client.query(request)
        print(f"forward lineage of input pixel (5, 5): {result['count']} cells, "
              f"{len(result['steps'])} steps")

        # 5. Overload behaves loudly, never silently: past the admission
        #    gate's bounds a query is refused with HTTP 429, which the
        #    client surfaces as QueueFullError — retry after backoff.
        try:
            client.query(request)
        except QueueFullError:
            print("gate full — backing off")  # not reached at this load

        print(f"\ngate stats: {daemon.stats()['gate']}")

        # 6. Remote shutdown drains in-flight queries, then stops the
        #    listener (the context manager would do the same locally).
        client.shutdown()
    print("daemon stopped")


if __name__ == "__main__":
    main()
