"""Quickstart: build a workflow, run it, ask lineage questions.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import SciArray, SubZero, WorkflowSpec, ops


def main() -> None:
    # 1. Describe the workflow: a small image-processing DAG.
    spec = WorkflowSpec(name="quickstart")
    spec.add_source("image")
    spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3, 1.0)), ["image"])
    spec.add_node("background", ops.GlobalMean(), ["smooth"])
    spec.add_node("corrected", ops.BroadcastSubtract(), ["smooth", "background"])
    spec.add_node("bright", ops.Threshold(0.35), ["corrected"])

    # 2. Pick lineage strategies.  Built-ins ship mapping functions, which
    #    cost nothing at run time; that is all this workflow needs.
    sz = SubZero(spec)
    sz.use_mapping_where_possible()

    # 3. Execute on data.  Every intermediate is persisted (black-box
    #    lineage), and region lineage is encoded per the strategy plan.
    rng = np.random.default_rng(0)
    image = SciArray.from_numpy(rng.random((48, 64)))
    instance = sz.run({"image": image})
    bright = instance.output_array("bright")
    hot = bright.coords_where(lambda v: v > 0.5)
    print(f"workflow ran: {len(spec)} operators, {hot.shape[0]} bright cells")

    # 4. Backward query: which input pixels produced this bright cell?
    target = tuple(int(x) for x in hot[0]) if hot.shape[0] else (10, 10)
    result = sz.backward_query(
        [target],
        [("bright", 0), ("corrected", 0), ("smooth", 0)],
    )
    print(f"\nbackward lineage of bright cell {target}:")
    print(f"  {result.count} input pixels; first few: "
          f"{[tuple(c) for c in result.coords[:5].tolist()]}")
    for step in result.steps:
        print(f"  step {step.node:>10s}: method={step.method:<12s} "
              f"{step.cells_in} -> {step.cells_out} cells in {step.seconds * 1e3:.2f} ms")

    # 5. Forward query: which outputs does an input pixel influence?
    #    The path passes through the all-to-all global mean, where the
    #    entire-array optimization (§VI-C) takes over.
    result = sz.forward_query(
        [(5, 5)],
        [("smooth", 0), ("background", 0), ("corrected", 1), ("bright", 0)],
    )
    print(f"\nforward lineage of input pixel (5, 5): {result.count} output cells")
    for step in result.steps:
        note = f" [{step.shortcut}]" if step.shortcut else ""
        print(f"  step {step.node:>10s}: method={step.method}{note}")


if __name__ == "__main__":
    main()
