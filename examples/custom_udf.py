"""Writing a lineage-aware UDF against the Table-I API, step by step.

The operator below finds local maxima ("peaks") in a 2-D array.  Peak cells
depend on their full comparison neighbourhood; everything else is
one-to-one.  That is the composite-lineage pattern (§V-A.4): a cheap
mapping-function default plus payload overrides for the exceptional cells.

Run with::

    python examples/custom_udf.py
"""

import numpy as np

from repro import (
    COMP_ONE_B,
    FULL_ONE_B,
    LineageMode,
    SciArray,
    SubZero,
    WorkflowSpec,
    ops,
)
from repro.arrays import coords as C
from repro.ops.base import Operator


class PeakDetect(Operator):
    """Mark cells strictly greater than every neighbour within ``radius``."""

    arity = 1
    entire_array_safe = True  # every input cell feeds at least its own output

    def __init__(self, radius: int = 2, name: str | None = None):
        super().__init__(name)
        self.radius = int(radius)
        r = self.radius
        grid = np.meshgrid(np.arange(-r, r + 1), np.arange(-r, r + 1), indexing="ij")
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    # -- the data transformation --------------------------------------------

    def compute(self, inputs):
        from scipy import ndimage

        values = inputs[0].values()
        local_max = ndimage.maximum_filter(values, size=2 * self.radius + 1)
        peaks = (values >= local_max) & (values > np.median(values))
        return SciArray.from_numpy(peaks.astype(np.float64), name=self.name)

    # -- 1. declare what the optimizer may pick (Table I: supported_modes) ----

    def supported_modes(self):
        return frozenset(
            {LineageMode.FULL, LineageMode.PAY, LineageMode.COMP, LineageMode.BLACKBOX}
        )

    # -- 2. emit region pairs while running (Table I: lwrite) -----------------

    def write_lineage(self, inputs, output, ctx):
        mask = output.values() > 0.5
        peaks = np.stack(np.nonzero(mask), axis=1).astype(np.int64)
        flat = np.stack(np.nonzero(~mask), axis=1).astype(np.int64)
        if ctx.wants_full:
            # Full lineage: one region pair per peak, plus bulk one-to-one
            # pairs for the flat cells.
            for cell in peaks:
                neighbourhood = C.clip_coords(cell + self._offsets, self.input_shapes[0])
                ctx.lwrite(cell.reshape(1, -1), neighbourhood)
            ctx.lwrite_elementwise(flat, flat)
        if LineageMode.PAY in ctx.cur_modes:
            # Payload lineage: store one radius byte per cell instead of up
            # to (2r+1)^2 input coordinates.
            ctx.lwrite_payload_batch(
                peaks, np.full((peaks.shape[0], 1), self.radius, dtype=np.uint8)
            )
            ctx.lwrite_payload_batch(flat, np.zeros((flat.shape[0], 1), dtype=np.uint8))
        elif LineageMode.COMP in ctx.cur_modes:
            # Composite: payload only for peaks; map_b covers the rest.
            ctx.lwrite_payload_batch(
                peaks, np.full((peaks.shape[0], 1), self.radius, dtype=np.uint8)
            )

    # -- 3. mapping defaults for composite mode (Table I: map_b / map_f) -------

    def map_b_many(self, out_coords, input_idx):
        return C.as_coord_array(out_coords, ndim=2)

    def map_f_many(self, in_coords, input_idx):
        return C.as_coord_array(in_coords, ndim=2)

    # -- 4. expand payloads at query time (Table I: map_p) ----------------------

    def map_p_many(self, out_coords, payload, input_idx):
        radius = payload[0]
        if radius == 0:
            return C.as_coord_array(out_coords, ndim=2)
        grid = np.meshgrid(
            np.arange(-radius, radius + 1), np.arange(-radius, radius + 1), indexing="ij"
        )
        offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)
        return ops.dilate_coords(out_coords, offsets, self.input_shapes[0])


def build_spec() -> WorkflowSpec:
    spec = WorkflowSpec(name="peaks")
    spec.add_source("field")
    spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3)), ["field"])
    spec.add_node("peaks", PeakDetect(radius=2), ["smooth"])
    return spec


def main() -> None:
    rng = np.random.default_rng(4)
    field = SciArray.from_numpy(rng.random((60, 60)))

    for strategy in (FULL_ONE_B, COMP_ONE_B):
        sz = SubZero(build_spec())
        sz.use_mapping_where_possible()
        sz.set_strategy("peaks", strategy)
        instance = sz.run({"field": field})
        peaks = instance.output_array("peaks").coords_where(lambda v: v > 0.5)
        target = tuple(int(x) for x in peaks[0])
        result = sz.backward_query([target], [("peaks", 0), ("smooth", 0)])
        print(f"{strategy.label:>10s}: lineage store {sz.lineage_disk_bytes() / 1e3:7.1f} KB; "
              f"peak {target} depends on {result.count} input cells")


if __name__ == "__main__":
    main()
