"""The §II-B clinician visualization queries against the genomics workflow.

A clinician inspects a relapse prediction and asks: which training data
supports it?  Which training values shaped a model feature?  If a lab value
is corrected, which predictions change?

Run with::

    python examples/genomics_clinician.py            # scale 10
    REPRO_FULL=1 python examples/genomics_clinician.py   # paper's 100x scale
"""

import os
import time

import numpy as np

from repro import FULL_ONE_F, PAY_ONE_B, SubZero
from repro.bench.genomics import UDF_NODES, GenomicsBenchmark


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label}: {result.count} cells in {(time.perf_counter() - start) * 1e3:.1f} ms")
    return result


def main() -> None:
    scale = 100 if os.environ.get("REPRO_FULL") else 10
    bench = GenomicsBenchmark(scale=scale, seed=0)
    print(f"patient-feature matrices: train {bench.train.shape}, test {bench.test.shape}")

    # An interactive visualization can afford up-front cost for fast queries
    # (§II-B), so store payload lineage both ways: backward-optimized payload
    # plus a forward-optimized full index (the paper's PayBoth).
    sz = SubZero(bench.build_spec())
    sz.use_mapping_where_possible()
    for udf in UDF_NODES:
        sz.set_strategy(udf, PAY_ONE_B, FULL_ONE_F)
    instance = sz.run(bench.inputs())
    print(f"workflow ran; lineage: {sz.lineage_disk_bytes() / 1e6:.2f} MB")

    predictions = instance.output_array("p_thresh").values()[:, 0]
    relapse_patients = np.nonzero(predictions > 0.5)[0]
    patient = int(relapse_patients[0]) if relapse_patients.size else 0
    print(f"\npatient #{patient} is predicted to relapse — why?")

    back_path = [
        ("p_thresh", 0), ("p_scale", 0), ("predict", 0), ("m_clip", 0),
        ("m_scale", 0), ("train_model", 0), ("extract_train", 0),
        ("t_norm", 0), ("t_log", 0), ("t_transpose", 0),
    ]
    support = timed(
        "supporting training cells",
        lambda: sz.backward_query([(patient, 0)], back_path),
    )

    print("\nwhich training values shaped model feature 3?")
    feature_path = [
        ("train_model", 0), ("extract_train", 0), ("t_norm", 0),
        ("t_log", 0), ("t_transpose", 0),
    ]
    timed(
        "contributing training cells",
        lambda: sz.backward_query([(3, 0), (3, 1)], feature_path),
    )

    print("\na lab corrects three training values — what do they affect?")
    sources = support.coords[:3]
    fwd_to_model = [
        ("t_transpose", 0), ("t_log", 0), ("t_norm", 0),
        ("extract_train", 0), ("train_model", 0),
    ]
    timed("affected model cells", lambda: sz.forward_query(sources, fwd_to_model))
    fwd_to_pred = fwd_to_model + [
        ("m_scale", 0), ("m_clip", 0), ("predict", 0), ("p_scale", 0), ("p_thresh", 0),
    ]
    timed("affected predictions", lambda: sz.forward_query(sources, fwd_to_pred))


if __name__ == "__main__":
    main()
