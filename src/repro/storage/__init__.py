"""Persistence substrate: hash store, blob store, R-tree, WAL, serialization."""

from repro.storage.kvstore import BlobStore, HashStore
from repro.storage.rtree import RTree
from repro.storage.wal import InvocationRecord, WriteAheadLog

__all__ = ["BlobStore", "HashStore", "RTree", "InvocationRecord", "WriteAheadLog"]
