"""STR-packed R-tree over integer bounding boxes.

The ``FullMany``/``PayMany`` encodings store one hash entry per *region pair*
and need a spatial index over the key-side cell sets so a query can find the
entries it intersects (§VI-B: "we also create an R Tree on the cells in the
hash key").  The paper used libspatialindex; this is a from-scratch
Sort-Tile-Recursive bulk-loaded R-tree with numpy-vectorised descent.

Boxes are inclusive integer boxes ``[lo, hi]`` of arbitrary dimensionality.
The tree is immutable once built; callers that accumulate entries rebuild
lazily (building is O(n log n) and vectorised, so rebuilds are cheap at the
scales the encoders produce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError

__all__ = ["RTree"]


@dataclass
class _Level:
    lo: np.ndarray  # (n_nodes, ndim)
    hi: np.ndarray  # (n_nodes, ndim)
    child_start: np.ndarray  # (n_nodes,) index into next level (or data ids)
    child_count: np.ndarray  # (n_nodes,)


class RTree:
    """Static R-tree; build once with :meth:`build`, then query boxes."""

    def __init__(
        self,
        levels: list[_Level],
        data_ids: np.ndarray,
        data_lo: np.ndarray,
        data_hi: np.ndarray,
        ndim: int,
    ):
        self._levels = levels
        self._data_ids = data_ids
        self._data_lo = data_lo
        self._data_hi = data_hi
        self.ndim = ndim

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, lo: np.ndarray, hi: np.ndarray, leaf_capacity: int = 16) -> "RTree":
        """Bulk-load from ``(n, ndim)`` inclusive box corner arrays."""
        lo = np.atleast_2d(np.asarray(lo, dtype=np.int64))
        hi = np.atleast_2d(np.asarray(hi, dtype=np.int64))
        if lo.shape != hi.shape:
            raise StorageError("lo/hi corner arrays must have the same shape")
        if (hi < lo).any():
            raise StorageError("every box must satisfy lo <= hi")
        if leaf_capacity < 2:
            # validate before the empty-input early return: an invalid
            # capacity must fail on every input, not only non-empty ones
            raise StorageError("leaf_capacity must be at least 2")
        n, ndim = lo.shape
        if n == 0:
            empty = np.empty((0, ndim), dtype=np.int64)
            return cls([], np.empty(0, dtype=np.int64), empty, empty, ndim)
        order = _str_order(lo, hi, leaf_capacity)
        data_ids = order.astype(np.int64)
        levels: list[_Level] = []
        cur_lo, cur_hi = lo[order], hi[order]
        count = n
        while True:
            n_nodes = math.ceil(count / leaf_capacity)
            starts = np.arange(n_nodes, dtype=np.int64) * leaf_capacity
            counts = np.minimum(leaf_capacity, count - starts)
            node_lo = np.empty((n_nodes, ndim), dtype=np.int64)
            node_hi = np.empty((n_nodes, ndim), dtype=np.int64)
            for i in range(n_nodes):
                s, c = starts[i], counts[i]
                node_lo[i] = cur_lo[s: s + c].min(axis=0)
                node_hi[i] = cur_hi[s: s + c].max(axis=0)
            levels.append(_Level(node_lo, node_hi, starts, counts))
            if n_nodes == 1:
                break
            cur_lo, cur_hi = node_lo, node_hi
            count = n_nodes
        levels.reverse()  # root first
        return cls(levels, data_ids, lo[order], hi[order], ndim)

    @classmethod
    def from_points(cls, points: np.ndarray, leaf_capacity: int = 16) -> "RTree":
        """Index degenerate boxes (single cells)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.int64))
        return cls.build(points, points, leaf_capacity=leaf_capacity)

    # -- queries -------------------------------------------------------------

    def query_box(self, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
        """Ids of every indexed box intersecting the inclusive box ``[qlo, qhi]``."""
        if not self._levels:
            return np.empty(0, dtype=np.int64)
        qlo = np.asarray(qlo, dtype=np.int64)
        qhi = np.asarray(qhi, dtype=np.int64)
        if qlo.shape != (self.ndim,) or qhi.shape != (self.ndim,):
            raise StorageError(f"query box must be {self.ndim}-dimensional")
        frontier = np.array([0], dtype=np.int64)
        for depth, level in enumerate(self._levels):
            lo, hi = level.lo[frontier], level.hi[frontier]
            hit = ((lo <= qhi) & (hi >= qlo)).all(axis=1)
            nodes = frontier[hit]
            if nodes.size == 0:
                return np.empty(0, dtype=np.int64)
            starts = level.child_start[nodes]
            counts = level.child_count[nodes]
            frontier = _expand(starts, counts)
        # frontier indexes the sorted data arrays; filter the data boxes too
        lo, hi = self._data_lo[frontier], self._data_hi[frontier]
        hit = ((lo <= qhi) & (hi >= qlo)).all(axis=1)
        return self._data_ids[frontier[hit]]

    def query_point(self, point: np.ndarray) -> np.ndarray:
        point = np.asarray(point, dtype=np.int64)
        return self.query_box(point, point)

    def query_points(self, points: np.ndarray) -> np.ndarray:
        """Ids of every indexed box containing *any* of ``points`` — one
        batched descent for the whole coordinate set.

        Equivalent to the union of :meth:`query_point` over the rows of
        ``points``, but the per-level containment tests run as a handful of
        vectorised passes over ``(point, node)`` pairs instead of one Python
        descent per point.  Returns sorted unique data ids.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.int64))
        if not self._levels or points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if points.shape[1] != self.ndim:
            raise StorageError(f"query points must be {self.ndim}-dimensional")
        pidx = np.arange(points.shape[0], dtype=np.int64)
        nidx = np.zeros(points.shape[0], dtype=np.int64)
        for level in self._levels:
            pts = points[pidx]
            hit = ((level.lo[nidx] <= pts) & (level.hi[nidx] >= pts)).all(axis=1)
            pidx, nidx = pidx[hit], nidx[hit]
            if pidx.size == 0:
                return np.empty(0, dtype=np.int64)
            counts = level.child_count[nidx]
            nidx = _expand(level.child_start[nidx], counts)
            pidx = np.repeat(pidx, counts)
        # nidx indexes the sorted data arrays; filter the data boxes too
        pts = points[pidx]
        hit = ((self._data_lo[nidx] <= pts) & (self._data_hi[nidx] >= pts)).all(axis=1)
        return np.unique(self._data_ids[nidx[hit]])

    def __len__(self) -> int:
        return int(self._data_ids.size)

    def nbytes(self) -> int:
        """In-memory index footprint (counts toward lineage disk cost)."""
        total = self._data_ids.nbytes
        for level in self._levels:
            total += level.lo.nbytes + level.hi.nbytes
            total += level.child_start.nbytes + level.child_count.nbytes
        return int(total)

    # -- persistence ---------------------------------------------------------

    def dump(self, writer, prefix: str = "") -> None:
        """Write the built index into a segment (see :mod:`repro.storage.segment`).

        The tree is persisted as-is — levels, sorted data boxes and the
        id permutation — so a segment-backed load serves descents without
        re-running the STR bulk load.
        """
        writer.add_json(
            prefix + "meta", {"ndim": self.ndim, "n_levels": len(self._levels)}
        )
        writer.add_array(prefix + "data_ids", self._data_ids)
        writer.add_array(prefix + "data_lo", self._data_lo)
        writer.add_array(prefix + "data_hi", self._data_hi)
        for i, level in enumerate(self._levels):
            writer.add_array(f"{prefix}l{i}.lo", level.lo)
            writer.add_array(f"{prefix}l{i}.hi", level.hi)
            writer.add_array(f"{prefix}l{i}.child_start", level.child_start)
            writer.add_array(f"{prefix}l{i}.child_count", level.child_count)

    @classmethod
    def from_segment(cls, seg, prefix: str = "") -> "RTree":
        """Rehydrate a :meth:`dump`-ed index from mmap-backed sections."""
        meta = seg.json(prefix + "meta")
        levels = [
            _Level(
                seg.array(f"{prefix}l{i}.lo"),
                seg.array(f"{prefix}l{i}.hi"),
                seg.array(f"{prefix}l{i}.child_start"),
                seg.array(f"{prefix}l{i}.child_count"),
            )
            for i in range(int(meta["n_levels"]))
        ]
        return cls(
            levels,
            seg.array(prefix + "data_ids"),
            seg.array(prefix + "data_lo"),
            seg.array(prefix + "data_hi"),
            int(meta["ndim"]),
        )


def _str_order(lo: np.ndarray, hi: np.ndarray, leaf_capacity: int) -> np.ndarray:
    """Sort-Tile-Recursive ordering of boxes by their centers."""
    n, ndim = lo.shape
    centers = (lo + hi) / 2.0
    order = np.arange(n)
    if ndim == 1:
        return order[np.argsort(centers[:, 0], kind="stable")]
    # Recursively tile: sort by dim 0, slice into vertical slabs, then order
    # each slab by the remaining dimensions.
    n_leaves = math.ceil(n / leaf_capacity)
    n_slabs = max(1, math.ceil(n_leaves ** (1.0 / ndim)))
    slab_size = math.ceil(n / n_slabs)
    by_first = order[np.argsort(centers[:, 0], kind="stable")]
    pieces = []
    for s in range(0, n, slab_size):
        slab = by_first[s: s + slab_size]
        sub = _str_order(lo[slab][:, 1:], hi[slab][:, 1:], leaf_capacity)
        pieces.append(slab[sub])
    return np.concatenate(pieces)


def _expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        begin = np.cumsum(counts)[:-1]
        out[begin] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)
