"""Log-structured hash store for region lineage.

The paper stores region lineage in per-operator BerkeleyDB hashtables with
fsync, logging and concurrency control turned off, because lineage is a pure
cache that can always be rebuilt by re-running operators (§VI-A).  We
reproduce that contract with two building blocks:

:class:`HashStore`
    A bulk-loaded multimap from int64 keys (bit-packed cell coordinates) to
    small byte-string values.  Writes append columnar chunks (a key vector
    plus a concatenated value buffer with offsets); :meth:`finalize` sorts
    them into one segment so lookups are vectorised ``searchsorted`` probes.
    Duplicate keys are kept side by side — the multimap view is exactly the
    paper's "on a key collision ... merge the two hash values".

:class:`BlobStore`
    Append-only storage for shared byte blobs (e.g. the single input-cell
    entry that every ``FullOne`` key references).

Both report their serialized footprint (:meth:`disk_bytes`) and can be
flushed to real files so benchmarks charge honest storage costs.  Values
are opaque byte strings here — codec-tagged cell sets (see
:mod:`repro.storage.codecs`) and legacy delta-only values flush and load
identically, so store files written before the codec subsystem existed
keep loading.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.analysis import lockcheck
from repro.arrays.coords import expand_ranges
from repro.errors import StorageError
from repro.storage import codecs
from repro.storage import segment as seglib
from repro.storage import serialize as ser

__all__ = ["HashStore", "BlobStore"]


@dataclass
class _Chunk:
    keys: np.ndarray  # int64 (n,)
    offsets: np.ndarray  # int64 (n + 1,) into buf
    buf: bytes  # any bytes-like (loaded segments pass an mmap-backed view)

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + len(self.buf) + self.offsets.nbytes


class HashStore:
    """Bulk-loaded int64 → bytes multimap (see module docstring)."""

    def __init__(self, name: str = "hashstore"):
        self.name = name
        self._chunks: list[_Chunk] = []
        self._segment: _Chunk | None = None
        self._dirty = False
        # guards the pending->segment merge so concurrent readers (serving
        # sessions) cannot race a finalize; writes themselves stay
        # single-threaded (the ingest path), per the serving contract
        self._flock = lockcheck.make_rlock("hashstore.finalize")

    # -- writes -------------------------------------------------------------

    def put_many(self, keys: np.ndarray, buf: bytes, offsets: np.ndarray) -> None:
        """Append ``len(keys)`` entries; value ``i`` is ``buf[offsets[i]:offsets[i+1]]``."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.shape != (keys.size + 1,):
            raise StorageError("offsets must have len(keys) + 1 entries")
        if keys.size == 0:
            return
        if offsets[0] != 0 or offsets[-1] != len(buf) or (np.diff(offsets) < 0).any():
            raise StorageError("offsets must be non-decreasing and span buf")
        if type(buf) is not bytes:  # zero-copy when already immutable
            buf = bytes(buf)
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._chunks.append(_Chunk(keys, offsets, buf))
        self._dirty = True

    def put_many_fixed(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append entries whose values are int64 scalars (e.g. blob refs)."""
        values = np.ascontiguousarray(values, dtype=np.int64)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if values.shape != keys.shape:
            raise StorageError("keys and values must align")
        if keys.size == 0:
            return
        offsets = np.arange(keys.size + 1, dtype=np.int64) * 8
        self.put_many(keys, values.astype("<i8").tobytes(), offsets)

    def put_many_shared(self, keys: np.ndarray, value: bytes) -> None:
        """Append entries that each carry a *copy* of the same value.

        ``PayOne`` duplicates the payload in every hash value (§VI-B); the
        duplication is physical here so storage accounting stays honest.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        offsets = np.arange(keys.size + 1, dtype=np.int64) * len(value)
        self.put_many(keys, value * keys.size, offsets)

    def put_one(self, key: int, value: bytes) -> None:
        self.put_many(
            np.asarray([key], dtype=np.int64),
            value,
            np.asarray([0, len(value)], dtype=np.int64),
        )

    def extend_from(self, other: "HashStore") -> None:
        """Append every entry of ``other`` (the generational merge writer).

        Consumes the other store's finalized columns in one chunk — the
        multimap contract keeps duplicate keys side by side, so merging two
        generations is exactly concatenation followed by the usual sort in
        :meth:`finalize`.  The value buffer is copied (``put_many`` lifts it
        to ``bytes``), so the merged store outlives the other store's
        backing segment."""
        keys, offsets, buf = other.columns()
        if keys.size:
            self.put_many(keys, buf, offsets)

    # -- segment maintenance ----------------------------------------------------

    def finalize(self) -> None:
        """Sort every pending chunk into the single query segment."""
        if not self._dirty:  # racy fast path; re-checked under the lock
            return
        with self._flock:
            if not self._dirty:
                return
            chunks = list(self._chunks)
            if self._segment is not None:
                chunks.append(self._segment)
            total = sum(c.keys.size for c in chunks)
            if total == 0:
                self._segment = None
                self._chunks = []
                self._dirty = False
                return
            keys = np.concatenate([c.keys for c in chunks])
            lengths = np.concatenate([np.diff(c.offsets) for c in chunks])
            buf = b"".join(c.buf for c in chunks)
            starts = np.concatenate(
                [c.offsets[:-1] + base for c, base in zip(chunks, _bases(chunks))]
            )
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            lengths = lengths[order]
            starts = starts[order]
            new_offsets = np.zeros(total + 1, dtype=np.int64)
            np.cumsum(lengths, out=new_offsets[1:])
            new_buf = _gather_slices(buf, starts, lengths, int(new_offsets[-1]))
            self._segment = _Chunk(keys, new_offsets, new_buf)
            self._chunks = []
            self._dirty = False

    # -- reads ----------------------------------------------------------------

    def lookup_many(self, query_keys: np.ndarray) -> tuple[np.ndarray, list[bytes]]:
        """Probe for ``query_keys``; returns ``(query_idx, values)``.

        ``values[i]`` is one stored value whose key equals
        ``query_keys[query_idx[i]]``.  A key hit by ``k`` stored entries
        yields ``k`` result rows (the multimap view).
        """
        self.finalize()
        query_keys = np.ascontiguousarray(query_keys, dtype=np.int64)
        if self._segment is None or query_keys.size == 0:
            return np.empty(0, dtype=np.int64), []
        seg = self._segment
        lo = np.searchsorted(seg.keys, query_keys, side="left")
        hi = np.searchsorted(seg.keys, query_keys, side="right")
        counts = hi - lo
        hits = np.nonzero(counts)[0]
        if hits.size == 0:
            return np.empty(0, dtype=np.int64), []
        qidx = np.repeat(hits, counts[hits])
        entry_ids = expand_ranges(lo[hits], counts[hits])
        values = [
            bytes(seg.buf[seg.offsets[e]: seg.offsets[e + 1]]) for e in entry_ids
        ]
        return qidx, values

    def lookup_refs(self, query_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`lookup_many` but decodes fixed-width int64 values."""
        self.finalize()
        query_keys = np.ascontiguousarray(query_keys, dtype=np.int64)
        if self._segment is None or query_keys.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        seg = self._segment
        lo = np.searchsorted(seg.keys, query_keys, side="left")
        hi = np.searchsorted(seg.keys, query_keys, side="right")
        counts = hi - lo
        hits = np.nonzero(counts)[0]
        if hits.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        qidx = np.repeat(hits, counts[hits])
        entry_ids = expand_ranges(lo[hits], counts[hits])
        starts = seg.offsets[entry_ids]
        widths = seg.offsets[entry_ids + 1] - starts
        if (widths != 8).any():
            raise StorageError("lookup_refs used on variable-width values")
        raw = _gather_slices(seg.buf, starts, widths, int(widths.sum()))
        refs = np.frombuffer(raw, dtype="<i8").astype(np.int64)
        return qidx, refs

    def scan(self):
        """Iterate ``(key, value)`` over every entry (mismatched-index path)."""
        self.finalize()
        if self._segment is None:
            return
        seg = self._segment
        for i in range(seg.keys.size):
            yield int(seg.keys[i]), bytes(seg.buf[seg.offsets[i]: seg.offsets[i + 1]])

    def items_fixed(self) -> tuple[np.ndarray, np.ndarray]:
        """All entries of a fixed-width store as aligned ``(keys, values)``
        int64 vectors — the batch-scan counterpart of :meth:`scan`.

        Views over the finalized segment (no copy on little-endian hosts);
        raises when any value is not exactly 8 bytes (use :meth:`scan` for
        variable-width values).
        """
        self.finalize()
        if self._segment is None or self._segment.keys.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        seg = self._segment
        if (np.diff(seg.offsets) != 8).any():
            raise StorageError("items_fixed used on variable-width values")
        values = np.frombuffer(seg.buf, dtype="<i8", count=seg.keys.size).astype(
            np.int64, copy=False
        )
        return seg.keys, values

    def columns(self) -> tuple[np.ndarray, np.ndarray, bytes]:
        """The finalized columnar state ``(keys, offsets, buf)`` — entry
        ``i``'s value is ``buf[offsets[i]:offsets[i+1]]``.  This is the
        whole-store scan surface: consumers batch over it instead of
        cursoring entry by entry."""
        self.finalize()
        if self._segment is None:
            return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), b""
        seg = self._segment
        return seg.keys, seg.offsets, seg.buf

    def keys_array(self) -> np.ndarray:
        """All stored keys (sorted, with duplicates)."""
        self.finalize()
        if self._segment is None:
            return np.empty(0, dtype=np.int64)
        return self._segment.keys

    # -- accounting --------------------------------------------------------------

    @property
    def n_entries(self) -> int:
        pending = sum(c.keys.size for c in self._chunks)
        return pending + (self._segment.keys.size if self._segment is not None else 0)

    def disk_bytes(self) -> int:
        """Serialized size: 8 bytes per key plus the value payload."""
        total = 0
        for chunk in self._chunks + ([self._segment] if self._segment else []):
            total += chunk.keys.size * 8 + len(chunk.buf)
        return total

    def dump(self, writer: seglib.SegmentWriter, prefix: str = "") -> None:
        """Write the finalized segment's columns into a segment file."""
        self.finalize()
        if self._segment is None:
            writer.add_json(prefix + "meta", {"n": 0})
            return
        seg = self._segment
        writer.add_json(prefix + "meta", {"n": int(seg.keys.size)})
        writer.add_array(prefix + "keys", seg.keys)
        writer.add_array(prefix + "offsets", seg.offsets)
        writer.add_bytes(prefix + "buf", seg.buf)

    @classmethod
    def from_segment(
        cls, seg: seglib.Segment, prefix: str = "", name: str = "hashstore"
    ) -> "HashStore":
        """Rehydrate from mmap-backed sections — no copy, no decode."""
        store = cls(name)
        if seg.json(prefix + "meta")["n"]:
            store._segment = _Chunk(
                seg.array(prefix + "keys"),
                seg.array(prefix + "offsets"),
                seg.view(prefix + "buf"),
            )
        return store

    def flush(self, path: str) -> int:
        """Write the finalized segment to ``path``; returns bytes written."""
        writer = seglib.SegmentWriter()
        self.dump(writer)
        return writer.write(path)

    @classmethod
    def load(cls, path: str, name: str = "hashstore") -> "HashStore":
        if seglib.is_segment_file(path):
            return cls.from_segment(seglib.Segment.open(path), "", name)
        # legacy pre-segment layout: bare <q count + columns
        store = cls(name)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise StorageError(f"cannot load store file {path!r}: {exc}") from exc
        (n,) = struct.unpack_from("<q", raw, 0)
        if n:
            keys = np.frombuffer(raw, dtype="<i8", count=n, offset=8).astype(np.int64)
            offsets = np.frombuffer(
                raw, dtype="<i8", count=n + 1, offset=8 + 8 * n
            ).astype(np.int64)
            buf = raw[8 + 8 * n + 8 * (n + 1):]
            store._segment = _Chunk(keys, offsets, buf)
        return store

    def clear(self) -> None:
        with self._flock:
            self._chunks = []
            self._segment = None
            self._dirty = False


class BlobStore:
    """Append-only byte-blob storage with integer ids.

    The finalized state is one concatenated heap plus start/end offsets —
    the same shape :class:`~repro.storage.codecs.BatchProbe` consumes and
    the segment format persists, so a segment-backed load is a zero-copy
    rehydration (the heap stays an mmap view).  Appends land in a pending
    list and are joined into the heap lazily.
    """

    def __init__(self, name: str = "blobs"):
        self.name = name
        self._buf = b""  # any bytes-like; loaded segments pass an mmap view
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        self._pending: list[bytes] = []
        self._probes: dict = {}
        #: ``(segment, prefix, fields)`` when persisted lowered tables are
        #: available but not yet hydrated (lazy per-shard load)
        self._probe_source: tuple | None = None
        # serializes heap finalization and probe construction so concurrent
        # reader threads cannot race a cache fill (serving contract)
        self._flock = lockcheck.make_rlock("blobstore.finalize")

    def _finalize(self) -> None:
        if not self._pending:  # racy fast path; re-checked under the lock
            return
        with self._flock:
            if not self._pending:
                return
            lengths = np.asarray([len(b) for b in self._pending], dtype=np.int64)
            base = len(self._buf)
            new_ends = base + np.cumsum(lengths)
            self._buf = bytes(self._buf) + b"".join(self._pending)
            self._starts = np.concatenate([self._starts, new_ends - lengths])
            self._ends = np.concatenate([self._ends, new_ends])
            self._pending = []

    def append(self, data: bytes) -> int:
        if type(data) is not bytes:  # zero-copy when already immutable
            data = bytes(data)
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._pending.append(data)
        self._probes = {}
        self._probe_source = None
        return self._ends.size + len(self._pending) - 1

    def append_many(self, blobs: list[bytes]) -> np.ndarray:
        start = len(self)
        for blob in blobs:
            # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
            self._pending.append(bytes(blob))
        self._probes = {}
        self._probe_source = None
        return np.arange(start, len(self), dtype=np.int64)

    def append_buffer(self, buf, lengths: np.ndarray) -> np.ndarray:
        """Append many blobs at once from one concatenated buffer.

        Blob ``i`` spans ``lengths[i]`` bytes starting where blob ``i - 1``
        ended; returns the assigned ids.  The bulk counterpart of
        :meth:`append_many` for the deferred-capture write path — one heap
        extension, no per-blob Python objects.
        """
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if (lengths < 0).any():
            raise StorageError("blob lengths must be non-negative")
        if int(lengths.sum()) != len(buf):
            raise StorageError("blob lengths do not span the buffer")
        if lengths.size == 0:
            return np.empty(0, dtype=np.int64)
        with self._flock:
            self._finalize()
            base = self._ends.size
            if not isinstance(self._buf, bytearray):
                self._buf = bytearray(self._buf)
            shift = len(self._buf)
            self._buf += buf
            ends = shift + np.cumsum(lengths)
            self._starts = np.concatenate([self._starts, ends - lengths])
            self._ends = np.concatenate([self._ends, ends])
            self._probes = {}
            self._probe_source = None
            return np.arange(base, base + lengths.size, dtype=np.int64)

    def extend_from(self, other: "BlobStore") -> int:
        """Append every blob of ``other``; returns the id *base* — the
        offset callers must add to the other store's blob ids (refs into a
        merged blob heap shift by however many blobs preceded them).  The
        heap bytes are copied, so the merge outlives the other store's
        backing segment.  This is the generational merge writer for the
        ``FullOne`` layouts.

        The heap is kept as a ``bytearray`` while extending (one upgrade
        copy, then amortised appends), so absorbing g generations costs
        O(total bytes), not O(g * total)."""
        other._finalize()
        with self._flock:
            self._finalize()
            base = self._ends.size
            if other._ends.size:
                if not isinstance(self._buf, bytearray):
                    self._buf = bytearray(self._buf)
                shift = len(self._buf)
                self._buf += bytes(other._buf)
                self._starts = np.concatenate([self._starts, other._starts + shift])
                self._ends = np.concatenate([self._ends, other._ends + shift])
                self._probes = {}
                self._probe_source = None
            return base

    def batch_probe(self, field: int = 0, ticker=None) -> "codecs.BatchProbe":
        """Vectorised prober over every blob's cell-set ``field``.

        Valid only when the blobs are codec-encoded cell-set values (the
        ``FullOne`` layouts); entry ``i`` of the probe answers for blob id
        ``i``.  Probes (with their lowered tables) are cached until the next
        append — and segment-backed stores rehydrate them straight from the
        persisted lowered tables, so even a fresh process pays no header
        walk.  ``ticker`` is called once per batch (the cold field-offset
        walk counts as one batch), so a query-time budget interrupts at
        batch boundaries only.
        """
        probe = self._probes.get(field)
        if probe is None:
            with self._flock:
                probe = self._probes.get(field)
                if probe is None and self._probe_source is not None:
                    seg, prefix, fields = self._probe_source
                    if field in fields:
                        # hydrate from the persisted lowered tables; this is
                        # the access that maps the shard holding them
                        tables = {
                            tname: seg.array(f"{prefix}probe{field}.{tname}")
                            for tname in codecs.BatchProbe.LOWERED_NAMES
                        }
                        probe = codecs.BatchProbe.from_lowered(
                            self._buf, self._ends.size, tables
                        )
                        self._probes[field] = probe
                if probe is None:
                    self._finalize()
                    buf, starts, ends = self._buf, self._starts, self._ends
                    if field:
                        if ticker is not None:
                            ticker()
                        shifted = np.empty(starts.size, dtype=np.int64)
                        for j, (start, end) in enumerate(zip(starts, ends)):
                            shifted[j] = codecs.skip_fields(
                                buf, int(start), int(end), field
                            )
                        starts = shifted
                    probe = codecs.BatchProbe(buf, starts, ends)
                    self._probes[field] = probe
        return probe

    def probe_fields(self) -> set[int]:
        """Fields whose lowered batch-probe tables are warm — cached, or
        persisted in the backing segment (lazy hydration, no header walk)."""
        fields = {f for f, p in self._probes.items() if p._lowered is not None}
        if self._probe_source is not None:
            fields |= set(self._probe_source[2])
        return fields

    def get(self, blob_id: int) -> bytes:
        i = int(blob_id)
        if 0 <= i < self._ends.size:
            return bytes(self._buf[int(self._starts[i]): int(self._ends[i])])
        j = i - self._ends.size
        if 0 <= j < len(self._pending):
            return self._pending[j]
        raise StorageError(f"unknown blob id {blob_id}")

    def get_many(self, blob_ids: np.ndarray) -> list[bytes]:
        return [self.get(b) for b in np.asarray(blob_ids, dtype=np.int64)]

    def __len__(self) -> int:
        return self._ends.size + len(self._pending)

    def disk_bytes(self) -> int:
        """Payload plus one offset word per blob."""
        payload = len(self._buf) + sum(len(b) for b in self._pending)
        return payload + 8 * len(self)

    # -- persistence ---------------------------------------------------------

    def dump(self, writer: seglib.SegmentWriter, prefix: str = "") -> None:
        """Write the heap — and any warm lowered probe tables — into a
        segment file, so a reload probes without re-walking codec headers."""
        self._finalize()
        fields = sorted(self.probe_fields())
        writer.add_json(
            prefix + "meta", {"n": int(self._ends.size), "probe_fields": fields}
        )
        writer.add_bytes(prefix + "buf", self._buf)
        writer.add_array(prefix + "ends", self._ends)
        for field in fields:
            # batch_probe hydrates lazily-persisted tables when needed
            tables = self.batch_probe(field=field).lowered_tables()
            for tname in codecs.BatchProbe.LOWERED_NAMES:
                writer.add_array(f"{prefix}probe{field}.{tname}", tables[tname])

    @classmethod
    def from_segment(
        cls, seg: seglib.Segment, prefix: str = "", name: str = "blobs"
    ) -> "BlobStore":
        """Rehydrate heap and lowered probe tables from mmap-backed sections."""
        store = cls(name)
        meta = seg.json(prefix + "meta")
        store._buf = seg.view(prefix + "buf")
        ends = seg.array(prefix + "ends")
        store._ends = ends
        starts = np.empty_like(ends)
        if ends.size:
            starts[0] = 0
            starts[1:] = ends[:-1]
        store._starts = starts
        fields = [int(f) for f in meta.get("probe_fields", [])]
        if fields:
            # defer hydration: the shard holding the lowered tables is
            # mapped only when a mismatched scan first asks for a probe
            store._probe_source = (seg, prefix, fields)
        return store

    def flush(self, path: str) -> int:
        writer = seglib.SegmentWriter()
        self.dump(writer)
        return writer.write(path)

    @classmethod
    def load(cls, path: str, name: str = "blobs") -> "BlobStore":
        if seglib.is_segment_file(path):
            return cls.from_segment(seglib.Segment.open(path), "", name)
        # legacy pre-segment layout: <q count + length-prefixed blobs
        store = cls(name)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise StorageError(f"cannot load store file {path!r}: {exc}") from exc
        (count,) = struct.unpack_from("<q", raw, 0)
        offset = 8
        for _ in range(count):
            blob, offset = ser.decode_bytes(raw, offset)
            store.append(blob)
        return store

    def clear(self) -> None:
        with self._flock:
            self._buf = b""
            self._starts = np.empty(0, dtype=np.int64)
            self._ends = np.empty(0, dtype=np.int64)
            self._pending = []
            self._probes = {}
            self._probe_source = None


def _bases(chunks: list[_Chunk]) -> list[int]:
    bases = []
    total = 0
    for chunk in chunks:
        bases.append(total)
        total += len(chunk.buf)
    return bases


def _gather_slices(buf: bytes, starts: np.ndarray, lengths: np.ndarray, total: int) -> bytes:
    """Concatenate ``buf[s:s+l]`` slices, vectorised via fancy indexing."""
    if total == 0:
        return b""
    keep = lengths > 0
    starts = starts[keep]
    lengths = lengths[keep]
    src = np.frombuffer(buf, dtype=np.uint8)
    # Source index of every output byte, expressed as one cumulative sum:
    # within a slice the step is 1; where slice i begins, the step jumps from
    # the last byte of slice i-1 to starts[i].
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    if starts.size > 1:
        begin_pos = np.cumsum(lengths)[:-1]
        step[begin_pos] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    idx = np.cumsum(step)
    return src[idx].tobytes()
