"""Single-file, manifest-led segment format for lineage stores.

Every persisted store component — :class:`~repro.storage.kvstore.HashStore`
segments, :class:`~repro.storage.kvstore.BlobStore` heaps,
:class:`~repro.core.lineage_store.RegionEntryTable` columns, the R-tree
levels, and the *lowered* :class:`~repro.storage.codecs.BatchProbe` tables —
flushes into one segment file, so a fresh process can serve queries straight
off disk without re-deriving anything.

Layout (see ``docs/storage_format.md`` for the full specification)::

    magic "SZSG" (4) | version <H (2) | manifest_len <q (8)
    manifest JSON (utf-8)            -- the section table
    padding to 8-byte alignment
    section payloads                 -- each 8-byte aligned

The manifest is a JSON object ``{"version": 1, "sections": [...]}`` whose
section records carry ``name``, ``kind`` (``array`` / ``bytes`` / ``json``),
``offset`` (absolute), ``length``, ``crc32``, and for arrays ``dtype`` +
``shape``.  Because the section table leads the file, :meth:`Segment.open`
reads *only* the header and manifest: array sections come back as zero-copy
``numpy`` views over one shared ``mmap`` and page in lazily on first touch,
which is what makes the catalog's lazy-open serving path cheap.

Integrity: every section records a CRC-32 of its payload.  Opening validates
structure only (magic, version, bounds); :meth:`Segment.verify` — used by
crash recovery and by ``Segment.open(path, verify=True)`` — checksums the
payloads and raises :class:`~repro.errors.StorageError` naming the first
corrupt section.

Versioning policy: the format version is bumped when the layout of existing
sections changes incompatibly; readers refuse *newer* versions and keep
accepting all older ones.  Adding new (optional) section names is not a
version bump — readers ignore sections they do not ask for.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib

import numpy as np

from repro.errors import StorageError

__all__ = ["MAGIC", "VERSION", "Segment", "SegmentWriter", "is_segment_file"]

MAGIC = b"SZSG"
VERSION = 1

_HEADER = struct.Struct("<4sHq")  # magic, version, manifest length
_KINDS = ("array", "bytes", "json")


def _align8(n: int) -> int:
    return (n + 7) & ~7


def is_segment_file(path: str) -> bool:
    """True when ``path`` starts with the segment magic (cheap sniff)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class SegmentWriter:
    """Collects named sections and writes them as one segment file."""

    def __init__(self) -> None:
        self._sections: list[dict] = []
        self._payloads: list[bytes] = []
        self._names: set[str] = set()

    def _add(self, name: str, kind: str, payload: bytes, extra: dict | None = None) -> None:
        if name in self._names:
            raise StorageError(f"duplicate segment section {name!r}")
        self._names.add(name)
        record = {"name": name, "kind": kind, "length": len(payload),
                  "crc32": zlib.crc32(payload) & 0xFFFFFFFF}
        if extra:
            record.update(extra)
        self._sections.append(record)
        self._payloads.append(payload)

    def add_array(self, name: str, arr: np.ndarray) -> None:
        """Add a numpy array section (stored little-endian, C-contiguous)."""
        arr = np.ascontiguousarray(arr)
        dtype = arr.dtype.newbyteorder("<")
        self._add(
            name,
            "array",
            arr.astype(dtype, copy=False).tobytes(),
            {"dtype": dtype.str, "shape": list(arr.shape)},
        )

    def add_bytes(self, name: str, data) -> None:
        """Add an opaque byte section (value heaps, blob heaps)."""
        self._add(name, "bytes", bytes(data))

    def add_json(self, name: str, obj) -> None:
        """Add a small JSON metadata section."""
        self._add(name, "json", json.dumps(obj, sort_keys=True).encode("utf-8"))

    def write(self, path: str) -> int:
        """Write the segment to ``path``; returns bytes written."""
        # offsets are relative to the payload base (which the reader derives
        # from the header), so the manifest's own length never perturbs them
        rel = 0
        for record in self._sections:
            rel = _align8(rel)
            record["offset"] = rel
            rel += record["length"]
        manifest = json.dumps(
            {"version": VERSION, "sections": self._sections}, sort_keys=True
        ).encode("utf-8")
        base = _align8(_HEADER.size + len(manifest))
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        # write-then-rename: replacing a segment atomically means an open
        # mapping of the old file keeps its inode (no truncation under a
        # live mmap) and readers only ever see a complete file
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(MAGIC, VERSION, len(manifest)))
            fh.write(manifest)
            fh.write(b"\x00" * (base - _HEADER.size - len(manifest)))
            pos = 0
            for record, payload in zip(self._sections, self._payloads):
                fh.write(b"\x00" * (record["offset"] - pos))
                fh.write(payload)
                pos = record["offset"] + record["length"]
        os.replace(tmp, path)
        return os.path.getsize(path)


class Segment:
    """A read-only, lazily mapped segment file (see module docstring)."""

    def __init__(self, path: str, sections: dict[str, dict], mm: mmap.mmap):
        self.path = path
        self._sections = sections
        self._mm = mm

    @classmethod
    def open(cls, path: str, verify: bool = False) -> "Segment":
        """Map ``path`` and parse its manifest; no section payload is read.

        ``verify=True`` additionally checksums every section (eager read),
        raising :class:`StorageError` on the first mismatch.
        """
        try:
            fh = open(path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open segment {path!r}: {exc}") from exc
        with fh:
            head = fh.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise StorageError(f"segment {path!r}: truncated header")
            magic, version, mlen = _HEADER.unpack(head)
            if magic != MAGIC:
                raise StorageError(f"segment {path!r}: bad magic {magic!r}")
            if version > VERSION:
                raise StorageError(
                    f"segment {path!r}: format version {version} is newer than "
                    f"supported version {VERSION}"
                )
            size = os.fstat(fh.fileno()).st_size
            if mlen < 2 or _HEADER.size + mlen > size:
                raise StorageError(f"segment {path!r}: manifest overruns the file")
            raw_manifest = fh.read(mlen)
            try:
                manifest = json.loads(raw_manifest.decode("utf-8"))
                records = manifest["sections"]
            except (ValueError, KeyError, TypeError) as exc:
                raise StorageError(f"segment {path!r}: corrupt manifest: {exc}") from exc
            base = _align8(_HEADER.size + mlen)
            sections: dict[str, dict] = {}
            for record in records:
                try:
                    name = record["name"]
                    kind = record["kind"]
                    offset = int(record["offset"]) + base  # manifest is base-relative
                    length = int(record["length"])
                    record["offset"] = offset
                    record["crc32"] = int(record["crc32"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise StorageError(
                        f"segment {path!r}: malformed section record: {exc}"
                    ) from exc
                if kind not in _KINDS:
                    raise StorageError(
                        f"segment {path!r}: section {name!r} has unknown kind {kind!r}"
                    )
                if name in sections:
                    raise StorageError(f"segment {path!r}: duplicate section {name!r}")
                if offset < 0 or length < 0 or offset + length > size:
                    raise StorageError(
                        f"segment {path!r}: section {name!r} overruns the file"
                    )
                if kind == "array":
                    try:
                        dtype = np.dtype(record["dtype"])
                        shape = tuple(int(d) for d in record["shape"])
                    except (KeyError, TypeError, ValueError) as exc:
                        raise StorageError(
                            f"segment {path!r}: section {name!r} has a bad "
                            f"dtype/shape: {exc}"
                        ) from exc
                    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                    if expected != length:
                        raise StorageError(
                            f"segment {path!r}: section {name!r} length {length} "
                            f"does not match dtype/shape ({expected} bytes)"
                        )
                sections[name] = record
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        seg = cls(path, sections, mm)
        if verify:
            seg.verify()
        return seg

    # -- section access ------------------------------------------------------

    def _record(self, name: str) -> dict:
        record = self._sections.get(name)
        if record is None:
            raise StorageError(f"segment {self.path!r} has no section {name!r}")
        return record

    def has(self, name: str) -> bool:
        return name in self._sections

    def names(self) -> list[str]:
        return list(self._sections)

    def array(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of an array section (pages in lazily)."""
        record = self._record(name)
        if record["kind"] != "array":
            raise StorageError(f"section {name!r} is not an array section")
        dtype = np.dtype(record["dtype"])
        shape = tuple(record["shape"])
        count = int(np.prod(shape, dtype=np.int64))
        return np.frombuffer(
            self._mm, dtype=dtype, count=count, offset=record["offset"]
        ).reshape(shape)

    def view(self, name: str):
        """Zero-copy memoryview of a bytes section."""
        record = self._record(name)
        return memoryview(self._mm)[record["offset"]: record["offset"] + record["length"]]

    def read_bytes(self, name: str) -> bytes:
        return bytes(self.view(name))

    def json(self, name: str):
        record = self._record(name)
        if record["kind"] != "json":
            raise StorageError(f"section {name!r} is not a json section")
        try:
            return json.loads(self.read_bytes(name).decode("utf-8"))
        except ValueError as exc:
            raise StorageError(
                f"segment {self.path!r}: corrupt json section {name!r}: {exc}"
            ) from exc

    # -- integrity -----------------------------------------------------------

    def verify(self, names: list[str] | None = None) -> None:
        """Checksum sections (all by default); raise on the first mismatch."""
        for name in names if names is not None else self._sections:
            record = self._record(name)
            payload = memoryview(self._mm)[
                record["offset"]: record["offset"] + record["length"]
            ]
            if (zlib.crc32(payload) & 0xFFFFFFFF) != record["crc32"]:
                raise StorageError(
                    f"segment {self.path!r}: section {name!r} failed its checksum "
                    "(corrupt or truncated payload)"
                )

    def close(self) -> None:
        """Release the mapping.  Only safe when no views remain in use."""
        self._mm.close()
