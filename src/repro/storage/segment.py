"""Single-file, manifest-led segment format for lineage stores.

Every persisted store component — :class:`~repro.storage.kvstore.HashStore`
segments, :class:`~repro.storage.kvstore.BlobStore` heaps,
:class:`~repro.core.lineage_store.RegionEntryTable` columns, the R-tree
levels, and the *lowered* :class:`~repro.storage.codecs.BatchProbe` tables —
flushes into one segment file, so a fresh process can serve queries straight
off disk without re-deriving anything.

Layout (see ``docs/storage_format.md`` for the full specification)::

    magic "SZSG" (4) | version <H (2) | manifest_len <q (8)
    manifest JSON (utf-8)            -- the section table
    padding to 8-byte alignment
    section payloads                 -- each 8-byte aligned

The manifest is a JSON object ``{"version": 1, "sections": [...]}`` whose
section records carry ``name``, ``kind`` (``array`` / ``bytes`` / ``json``),
``offset`` (absolute), ``length``, ``crc32``, and for arrays ``dtype`` +
``shape``.  Because the section table leads the file, :meth:`Segment.open`
reads *only* the header and manifest: array sections come back as zero-copy
``numpy`` views over one shared ``mmap`` and page in lazily on first touch,
which is what makes the catalog's lazy-open serving path cheap.

Integrity: every section records a CRC-32 of its payload.  Opening validates
structure only (magic, version, bounds); :meth:`Segment.verify` — used by
crash recovery and by ``Segment.open(path, verify=True)`` — checksums the
payloads and raises :class:`~repro.errors.StorageError` naming the first
corrupt section.

Versioning policy: the format version is bumped when the layout of existing
sections changes incompatibly; readers refuse *newer* versions and keep
accepting all older ones.  Adding new (optional) section names is not a
version bump — readers ignore sections they do not ask for.

Sharing and lifecycle: a mapped :class:`Segment` is *open-once/share-many* —
it carries a reference count (:meth:`Segment.acquire` / :meth:`Segment.close`)
so N reader threads reuse one mmap, and the mapping is released when the
last holder closes.  Releasing is best-effort under live numpy views (the OS
mapping survives until the final exported buffer dies), but a closed handle
refuses all further section access, which is the invariant the serving
cache's eviction relies on.

Sharding: stores above a size threshold flush as ``<name>.seg.0..k`` shard
files instead of one monolithic segment (:meth:`SegmentWriter.write_sharded`).
Every shard is itself a complete, independently-checksummed segment file;
shard 0 additionally carries a ``__shards__`` JSON section mapping every
section name to its shard, so :class:`ShardedSegment` opens shard 0 only
and maps sibling shards lazily on the first access that needs them.

Generations: an *incremental* flush appends a store's new lineage as a
**delta segment** next to the base one instead of rewriting it.  Generation
``g > 0`` of base path ``<name>.seg`` lives at ``<name>.gen.<g>.seg``
(:func:`generation_path`); generation 0 *is* the base path, so a catalog
that never appended is file-for-file identical to the pre-generation
layout.  A generation file is an ordinary segment (monolithic or sharded
``…gen.<g>.seg.0..k``) — the overlay/merge semantics live one layer up, in
:mod:`repro.core.catalog`.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib

import numpy as np

from repro.analysis import lockcheck
from repro.errors import StorageError

__all__ = [
    "MAGIC",
    "VERSION",
    "GENERATION_INFIX",
    "Segment",
    "SegmentWriter",
    "ShardedSegment",
    "generation_files",
    "generation_path",
    "is_segment_file",
    "open_segment",
    "remove_segment",
    "segment_files",
]

MAGIC = b"SZSG"
VERSION = 1

#: marker splitting a base segment name from its generation ordinal:
#: generation ``g`` of ``<stem>.seg`` is the sibling ``<stem>.gen.<g>.seg``
GENERATION_INFIX = ".gen."

#: name of the shard-index JSON section stored in shard 0 of a sharded write
SHARD_INDEX_SECTION = "__shards__"

#: name of the per-shard JSON section naming the flush every shard belongs
#: to; shards of one store must agree or the reader refuses them
SHARD_META_SECTION = "__shard_meta__"

_HEADER = struct.Struct("<4sHq")  # magic, version, manifest length
_KINDS = ("array", "bytes", "json")


def _align8(n: int) -> int:
    return (n + 7) & ~7


def is_segment_file(path: str) -> bool:
    """True when ``path`` starts with the segment magic (cheap sniff)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def segment_files(path: str) -> list[str]:
    """The file(s) actually backing the logical segment ``path``.

    ``[path]`` for a monolithic segment, ``[path.0, ..., path.k]`` for a
    sharded one, ``[]`` when neither exists.  The shard scan stops at the
    first gap, matching the contiguous numbering the writer guarantees.
    """
    if os.path.exists(path):
        return [path]
    files: list[str] = []
    i = 0
    while os.path.exists(f"{path}.{i}"):
        files.append(f"{path}.{i}")
        i += 1
    return files


def generation_path(path: str, gen: int) -> str:
    """The on-disk path of generation ``gen`` of base segment ``path``.

    Generation 0 is the base path itself (``spot.seg``); generation ``g > 0``
    is the sibling ``spot.gen.<g>.seg``, so an append never touches — and a
    crash mid-append can never tear — the already-committed generations.
    """
    if gen < 0:
        raise StorageError(f"negative segment generation {gen}")
    if gen == 0:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}{GENERATION_INFIX}{gen}{ext}"


def generation_files(path: str) -> dict[int, list[str]]:
    """Every generation of base segment ``path`` present on disk.

    Maps generation ordinal to the file list backing it (one monolithic
    file, or the shard files); generation 0 is included when the base
    segment exists.  Quarantined and temporary files are ignored.  Used to
    pick a collision-free ordinal for the next append even when a crash
    left generation files a manifest no longer references.
    """
    out: dict[int, list[str]] = {}
    base_files = segment_files(path)
    if base_files:
        out[0] = base_files
    directory = os.path.dirname(path) or "."
    root, ext = os.path.splitext(os.path.basename(path))
    prefix = f"{root}{GENERATION_INFIX}"
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in names:
        if not name.startswith(prefix):
            continue
        rest = name[len(prefix):]
        # "<g>.seg" (monolithic) or "<g>.seg.<k>" (a shard)
        ordinal, dot, tail = rest.partition(".")
        if not dot or not ordinal.isdigit():
            continue
        if tail != ext[1:] and not (
            tail.startswith(ext[1:] + ".") and tail[len(ext):].isdigit()
        ):
            continue
        files = segment_files(generation_path(path, int(ordinal)))
        if files:
            out[int(ordinal)] = files
    return out


def remove_segment(path: str) -> list[str]:
    """Best-effort removal of the file(s) backing segment ``path``; returns
    what was actually unlinked.  Missing files are not an error — the
    deferred-unlink path may race a recovery that already cleaned up."""
    lockcheck.note_io(f"segment.unlink:{os.path.basename(path)}")
    removed = []
    for fpath in segment_files(path):
        try:
            os.remove(fpath)
        except OSError:
            continue
        removed.append(fpath)
    return removed


def open_segment(path: str, verify: bool = False):
    """Open the segment at ``path``, monolithic or sharded.

    Returns a :class:`Segment` when ``path`` itself exists, a
    :class:`ShardedSegment` when ``path.0`` does; raises
    :class:`~repro.errors.StorageError` when neither is present.
    """
    if os.path.exists(path):
        return Segment.open(path, verify=verify)
    if os.path.exists(path + ".0"):
        return ShardedSegment.open(path, verify=verify)
    raise StorageError(f"no segment (monolithic or sharded) at {path!r}")


class SegmentWriter:
    """Collects named sections and writes them as one segment file."""

    def __init__(self) -> None:
        self._sections: list[dict] = []
        self._payloads: list[bytes] = []
        self._names: set[str] = set()

    def _add(self, name: str, kind: str, payload: bytes, extra: dict | None = None) -> None:
        if name in self._names:
            raise StorageError(f"duplicate segment section {name!r}")
        self._names.add(name)
        record = {"name": name, "kind": kind, "length": len(payload),
                  "crc32": zlib.crc32(payload) & 0xFFFFFFFF}
        if extra:
            record.update(extra)
        self._sections.append(record)
        self._payloads.append(payload)

    def add_array(self, name: str, arr: np.ndarray) -> None:
        """Add a numpy array section (stored little-endian, C-contiguous)."""
        arr = np.ascontiguousarray(arr)
        dtype = arr.dtype.newbyteorder("<")
        self._add(
            name,
            "array",
            arr.astype(dtype, copy=False).tobytes(),
            {"dtype": dtype.str, "shape": list(arr.shape)},
        )

    def add_bytes(self, name: str, data) -> None:
        """Add an opaque byte section (value heaps, blob heaps)."""
        self._add(name, "bytes", bytes(data))

    def add_json(self, name: str, obj) -> None:
        """Add a small JSON metadata section."""
        self._add(name, "json", json.dumps(obj, sort_keys=True).encode("utf-8"))

    def write(self, path: str, stale_sink: list | None = None) -> int:
        """Write the segment to ``path``; returns bytes written.

        Stale sibling shard files (``path.0..k`` left by an earlier sharded
        flush, which the new monolith shadows) are removed — unless
        ``stale_sink`` is given, in which case their paths are appended to
        it for the caller to reclaim later.  Online compaction uses that to
        defer the unlink until the last reader pinning the old (lazily
        mapped) sharded base has released it.
        """
        # offsets are relative to the payload base (which the reader derives
        # from the header), so the manifest's own length never perturbs them
        rel = 0
        for record in self._sections:
            rel = _align8(rel)
            record["offset"] = rel
            rel += record["length"]
        manifest = json.dumps(
            {"version": VERSION, "sections": self._sections}, sort_keys=True
        ).encode("utf-8")
        base = _align8(_HEADER.size + len(manifest))
        lockcheck.note_io(f"segment.write:{os.path.basename(path)}")
        # write-then-rename: replacing a segment atomically means an open
        # mapping of the old file keeps its inode (no truncation under a
        # live mmap) and readers only ever see a complete file
        tmp = path + ".tmp"
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(_HEADER.pack(MAGIC, VERSION, len(manifest)))
                fh.write(manifest)
                fh.write(b"\x00" * (base - _HEADER.size - len(manifest)))
                pos = 0
                for record, payload in zip(self._sections, self._payloads):
                    fh.write(b"\x00" * (record["offset"] - pos))
                    fh.write(payload)
                    pos = record["offset"] + record["length"]
            os.replace(tmp, path)
            nbytes = os.path.getsize(path)
        except BaseException as exc:
            # an interrupted write (e.g. a compaction crash) must leave the
            # target untouched *and* no half-written tmp behind
            try:
                os.remove(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise StorageError(
                    f"cannot write segment {path!r}: {exc}"
                ) from exc
            raise
        _remove_stale_shards(path, 0, stale_sink)
        return nbytes

    def write_sharded(
        self,
        path: str,
        shard_payload_bytes: int,
        stale_sink: list | None = None,
    ) -> tuple[int, list[str]]:
        """Write the collected sections as ``path.0 .. path.k`` shard files.

        Sections are assigned to shards by sequential fill: a shard closes
        when adding the next section would push it past
        ``shard_payload_bytes`` (a shard always takes at least one section,
        so a single oversized section still writes).  Shard 0 leads with the
        :data:`SHARD_INDEX_SECTION` JSON section naming every shard file and
        mapping each section name to its shard index; every shard is a
        complete segment file with its own manifest and checksums.

        Every shard also carries a :data:`SHARD_META_SECTION` naming the
        flush it belongs to (a fresh random token per write).  There is no
        atomic cross-file commit, so a crash mid-reflush over an existing
        sharded store can leave files from two flushes side by side — each
        internally checksum-clean.  The flush token turns that from silent
        mixed-generation reads into a loud :class:`StorageError` at open
        (and a quarantine under recovery, which is the cache contract).

        Falls back to a monolithic :meth:`write` when everything fits in one
        shard.  Returns ``(total_bytes_written, files)``.
        """
        import uuid

        groups: list[list[int]] = []
        current: list[int] = []
        size = 0
        for i, record in enumerate(self._sections):
            if current and size + record["length"] > shard_payload_bytes:
                groups.append(current)
                current, size = [], 0
            current.append(i)
            size += record["length"]
        if current:
            groups.append(current)
        if len(groups) <= 1:
            return self.write(path, stale_sink=stale_sink), [path]
        basename = os.path.basename(path)
        flush_token = uuid.uuid4().hex
        files = [f"{path}.{s}" for s in range(len(groups))]
        index = {
            "files": [f"{basename}.{s}" for s in range(len(groups))],
            "sections": {
                self._sections[i]["name"]: s
                for s, group in enumerate(groups)
                for i in group
            },
        }
        total = 0
        for s, group in enumerate(groups):
            shard = SegmentWriter()
            shard.add_json(
                SHARD_META_SECTION, {"flush": flush_token, "ordinal": s}
            )
            if s == 0:
                shard.add_json(SHARD_INDEX_SECTION, index)
            for i in group:
                record = self._sections[i]
                shard._add(
                    record["name"],
                    record["kind"],
                    self._payloads[i],
                    {
                        k: record[k]
                        for k in ("dtype", "shape")
                        if k in record
                    },
                )
            total += shard.write(files[s])
        # a re-flush may shrink the shard count or replace an old monolith;
        # drop whichever stale files would shadow or trail the new layout.
        # The old monolith is always removed now (it would *shadow* the new
        # shards); trailing shards only *trail* and may be deferred via
        # stale_sink for readers still pinning the old layout.
        if os.path.exists(path):
            try:
                os.remove(path)
            except OSError as exc:
                raise StorageError(
                    f"cannot remove shadowed monolith {path!r}: {exc}"
                ) from exc
        _remove_stale_shards(path, len(groups), stale_sink)
        return total, files


def _remove_stale_shards(
    path: str, first_stale: int, stale_sink: list | None = None
) -> None:
    """Remove ``path.N`` files for ``N >= first_stale`` (contiguous run) —
    or, when ``stale_sink`` is given, report them there for a deferred
    reclaim instead of unlinking now."""
    i = first_stale
    while os.path.exists(f"{path}.{i}"):
        if stale_sink is not None:
            stale_sink.append(f"{path}.{i}")
        else:
            try:
                os.remove(f"{path}.{i}")
            except OSError as exc:
                raise StorageError(
                    f"cannot remove stale shard {path}.{i}: {exc}"
                ) from exc
        i += 1


class Segment:
    """A read-only, lazily mapped segment file (see module docstring).

    Mappings are refcounted so one open segment is shared by many readers:
    :meth:`acquire` hands out another reference, :meth:`close` drops one,
    and the mmap is released when the count reaches zero.  After the last
    close every section accessor raises, so a cache that evicted the
    segment can never serve reads through a stale handle.
    """

    def __init__(self, path: str, sections: dict[str, dict], mm: mmap.mmap):
        self.path = path
        self._sections = sections
        self._mm = mm
        #: mapped file size in bytes (what this handle costs a memory budget)
        self.nbytes = len(mm)
        self._refs = 1
        self._lock = lockcheck.make_lock("segment.refs")

    # -- sharing / lifecycle -------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._refs <= 0

    def acquire(self) -> "Segment":
        """Take another reference to the shared mapping."""
        with self._lock:
            if self._refs <= 0:
                raise StorageError(f"segment {self.path!r} is closed")
            self._refs += 1
        return self

    def close(self) -> None:
        """Drop one reference; the mapping is released at zero.

        Releasing is best-effort: live numpy views over the mapping export
        its buffer, in which case the OS mapping survives until the last
        view is garbage-collected — but the handle is *logically* closed
        either way, and further section access raises.
        """
        with self._lock:
            if self._refs <= 0:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            try:
                self._mm.close()
            except BufferError:
                # numpy views still export the buffer; the mapping is freed
                # when the last view dies.  The handle stays closed.
                pass

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._refs <= 0:
            raise StorageError(f"segment {self.path!r} is closed")

    @classmethod
    def open(cls, path: str, verify: bool = False) -> "Segment":
        """Map ``path`` and parse its manifest; no section payload is read.

        ``verify=True`` additionally checksums every section (eager read),
        raising :class:`StorageError` on the first mismatch.
        """
        lockcheck.note_io(f"segment.open:{os.path.basename(path)}")
        try:
            fh = open(path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open segment {path!r}: {exc}") from exc
        with fh:
            head = fh.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise StorageError(f"segment {path!r}: truncated header")
            magic, version, mlen = _HEADER.unpack(head)
            if magic != MAGIC:
                raise StorageError(f"segment {path!r}: bad magic {magic!r}")
            if version > VERSION:
                raise StorageError(
                    f"segment {path!r}: format version {version} is newer than "
                    f"supported version {VERSION}"
                )
            size = os.fstat(fh.fileno()).st_size
            if mlen < 2 or _HEADER.size + mlen > size:
                raise StorageError(f"segment {path!r}: manifest overruns the file")
            raw_manifest = fh.read(mlen)
            try:
                manifest = json.loads(raw_manifest.decode("utf-8"))
                records = manifest["sections"]
            except (ValueError, KeyError, TypeError) as exc:
                raise StorageError(f"segment {path!r}: corrupt manifest: {exc}") from exc
            base = _align8(_HEADER.size + mlen)
            sections: dict[str, dict] = {}
            for record in records:
                try:
                    name = record["name"]
                    kind = record["kind"]
                    offset = int(record["offset"]) + base  # manifest is base-relative
                    length = int(record["length"])
                    record["offset"] = offset
                    record["crc32"] = int(record["crc32"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise StorageError(
                        f"segment {path!r}: malformed section record: {exc}"
                    ) from exc
                if kind not in _KINDS:
                    raise StorageError(
                        f"segment {path!r}: section {name!r} has unknown kind {kind!r}"
                    )
                if name in sections:
                    raise StorageError(f"segment {path!r}: duplicate section {name!r}")
                if offset < 0 or length < 0 or offset + length > size:
                    raise StorageError(
                        f"segment {path!r}: section {name!r} overruns the file"
                    )
                if kind == "array":
                    try:
                        dtype = np.dtype(record["dtype"])
                        shape = tuple(int(d) for d in record["shape"])
                    except (KeyError, TypeError, ValueError) as exc:
                        raise StorageError(
                            f"segment {path!r}: section {name!r} has a bad "
                            f"dtype/shape: {exc}"
                        ) from exc
                    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                    if expected != length:
                        raise StorageError(
                            f"segment {path!r}: section {name!r} length {length} "
                            f"does not match dtype/shape ({expected} bytes)"
                        )
                sections[name] = record
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except OSError as exc:
                raise StorageError(f"cannot map segment {path!r}: {exc}") from exc
        seg = cls(path, sections, mm)
        if verify:
            try:
                seg.verify()
            except StorageError:
                # release the mapping before reporting: quarantine renames
                # the file next, which needs it unmapped (Windows)
                seg.close()
                raise
        return seg

    # -- section access ------------------------------------------------------

    def _record(self, name: str) -> dict:
        record = self._sections.get(name)
        if record is None:
            raise StorageError(f"segment {self.path!r} has no section {name!r}")
        return record

    def has(self, name: str) -> bool:
        return name in self._sections

    def names(self) -> list[str]:
        return list(self._sections)

    def array(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of an array section (pages in lazily)."""
        self._check_open()
        record = self._record(name)
        if record["kind"] != "array":
            raise StorageError(f"section {name!r} is not an array section")
        dtype = np.dtype(record["dtype"])
        shape = tuple(record["shape"])
        count = int(np.prod(shape, dtype=np.int64))
        return np.frombuffer(
            self._mm, dtype=dtype, count=count, offset=record["offset"]
        ).reshape(shape)

    def view(self, name: str):
        """Zero-copy memoryview of a bytes section."""
        self._check_open()
        record = self._record(name)
        return memoryview(self._mm)[record["offset"]: record["offset"] + record["length"]]

    def read_bytes(self, name: str) -> bytes:
        return bytes(self.view(name))

    def json(self, name: str):
        record = self._record(name)
        if record["kind"] != "json":
            raise StorageError(f"section {name!r} is not a json section")
        try:
            return json.loads(self.read_bytes(name).decode("utf-8"))
        except ValueError as exc:
            raise StorageError(
                f"segment {self.path!r}: corrupt json section {name!r}: {exc}"
            ) from exc

    # -- integrity -----------------------------------------------------------

    def verify(self, names: list[str] | None = None) -> None:
        """Checksum sections (all by default); raise on the first mismatch."""
        self._check_open()
        for name in names if names is not None else self._sections:
            record = self._record(name)
            payload = memoryview(self._mm)[
                record["offset"]: record["offset"] + record["length"]
            ]
            # release the view before any raise: a view captured in the
            # exception's traceback would keep the buffer exported, making
            # the close() that precedes a quarantine rename a silent no-op
            try:
                crc = zlib.crc32(payload) & 0xFFFFFFFF
            finally:
                payload.release()
            if crc != record["crc32"]:
                raise StorageError(
                    f"segment {self.path!r}: section {name!r} failed its checksum "
                    "(corrupt or truncated payload)"
                )


class ShardedSegment:
    """Reader over a sharded segment: ``<path>.0 .. <path>.k``.

    Presents the same section API as :class:`Segment`.  Only shard 0 is
    mapped at open time (it carries the :data:`SHARD_INDEX_SECTION` table);
    sibling shards map lazily on the first access to a section they own, so
    touching one component of a large sharded store never pays the
    monolithic open.  Shares :class:`Segment`'s refcounted lifecycle.
    """

    def __init__(
        self,
        path: str,
        files: list[str],
        index: dict[str, int],
        shard0: Segment,
        flush_token: str | None,
    ):
        self.path = path
        self._files = files
        self._index = index  # section name -> shard ordinal
        self._shards: list[Segment | None] = [shard0] + [None] * (len(files) - 1)
        #: the write that produced this store; sibling shards must carry the
        #: same token or they belong to a different (interrupted) flush
        self._flush_token = flush_token
        self._refs = 1
        self._lock = lockcheck.make_lock("sharded_segment.refs")

    @classmethod
    def open(cls, path: str, verify: bool = False) -> "ShardedSegment":
        """Map shard 0 of ``path`` and parse its shard index.

        ``verify=True`` opens and checksums *every* shard eagerly (which
        also catches mixed-flush shard sets via the per-shard token).
        """
        shard0 = Segment.open(path + ".0")
        try:
            index_obj = shard0.json(SHARD_INDEX_SECTION)
            files = [
                os.path.join(os.path.dirname(path) or ".", f)
                for f in index_obj["files"]
            ]
            sections = {str(k): int(v) for k, v in index_obj["sections"].items()}
            flush_token = None
            if shard0.has(SHARD_META_SECTION):
                flush_token = str(shard0.json(SHARD_META_SECTION)["flush"])
        except (StorageError, KeyError, TypeError, ValueError) as exc:
            shard0.close()
            raise StorageError(
                f"sharded segment {path!r}: corrupt shard index: {exc}"
            ) from exc
        seg = cls(path, files, sections, shard0, flush_token)
        if verify:
            try:
                seg.verify()
            except StorageError:
                seg.close()
                raise
        return seg

    # -- sharing / lifecycle -------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._refs <= 0

    @property
    def shard_files(self) -> list[str]:
        return list(self._files)

    def open_shard_count(self) -> int:
        """How many shard files are actually mapped (laziness probe)."""
        return sum(1 for s in self._shards if s is not None)

    def mapped_bytes(self) -> int:
        """Bytes of the shards actually mapped so far — what this handle
        really costs a memory budget (a lazily-opened store may have most
        of its shards unmapped)."""
        return sum(s.nbytes for s in self._shards if s is not None)

    def acquire(self) -> "ShardedSegment":
        with self._lock:
            if self._refs <= 0:
                raise StorageError(f"sharded segment {self.path!r} is closed")
            self._refs += 1
        return self

    def close(self) -> None:
        with self._lock:
            if self._refs <= 0:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            for shard in self._shards:
                if shard is not None:
                    shard.close()

    def __enter__(self) -> "ShardedSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- section access ------------------------------------------------------

    def _open_shard_locked(self, ordinal: int) -> Segment:
        """Map shard ``ordinal`` if needed, validating that it belongs to
        the same flush as shard 0 — a crash mid-reflush can leave
        internally-clean shards of two different writes side by side, and
        mixing them must fail loudly, never read across generations."""
        shard = self._shards[ordinal]
        if shard is None:
            shard = Segment.open(self._files[ordinal])
            try:
                meta = (
                    shard.json(SHARD_META_SECTION)
                    if shard.has(SHARD_META_SECTION)
                    else {}
                )
                if meta.get("flush") != self._flush_token or (
                    int(meta.get("ordinal", -1)) != ordinal
                ):
                    raise StorageError(
                        f"sharded segment {self.path!r}: shard {ordinal} "
                        "belongs to a different flush than shard 0 "
                        "(interrupted re-flush?); refusing to mix shard "
                        "generations"
                    )
            except StorageError:
                shard.close()
                raise
            self._shards[ordinal] = shard
        return shard

    def _shard_for(self, name: str) -> Segment:
        with self._lock:
            if self._refs <= 0:
                raise StorageError(f"sharded segment {self.path!r} is closed")
            ordinal = self._index.get(name)
            if ordinal is None:
                raise StorageError(
                    f"sharded segment {self.path!r} has no section {name!r}"
                )
            return self._open_shard_locked(ordinal)

    def has(self, name: str) -> bool:
        return name in self._index

    def names(self) -> list[str]:
        return list(self._index)

    def array(self, name: str) -> np.ndarray:
        return self._shard_for(name).array(name)

    def view(self, name: str):
        return self._shard_for(name).view(name)

    def read_bytes(self, name: str) -> bytes:
        return self._shard_for(name).read_bytes(name)

    def json(self, name: str):
        return self._shard_for(name).json(name)

    # -- integrity -----------------------------------------------------------

    def verify(self, names: list[str] | None = None) -> None:
        """Checksum sections; with no names, every shard is opened and
        verified in full (including sections of shards not yet mapped)."""
        if names is not None:
            for name in names:
                self._shard_for(name).verify([name])
            return
        for ordinal in range(len(self._files)):
            with self._lock:
                if self._refs <= 0:
                    raise StorageError(f"sharded segment {self.path!r} is closed")
                shard = self._open_shard_locked(ordinal)
            shard.verify()
