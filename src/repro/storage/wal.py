"""Write-ahead log of operator invocations (black-box lineage).

Black-box lineage needs no extra structures beyond what the workflow
executor already persists: which operator ran, on which array versions, with
which parameters (§V: "SubZero does not require additional resources to
store black-box lineage").  We still log each invocation durably — the paper
notes black-box lineage is written ahead of the array data via WAL — so a
workflow instance can be reconstructed and any operator re-run from any
point.

Records are JSON objects, one per line; the log is append-only.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError

__all__ = ["InvocationRecord", "WriteAheadLog"]


@dataclass(frozen=True)
class InvocationRecord:
    """One operator execution: node name, versions in/out, parameters."""

    node: str
    op_name: str
    input_versions: tuple[int, ...]
    output_version: int
    params: dict = field(default_factory=dict)
    lineage_modes: tuple[str, ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {
                "node": self.node,
                "op": self.op_name,
                "inputs": list(self.input_versions),
                "output": self.output_version,
                "params": self.params,
                "modes": list(self.lineage_modes),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "InvocationRecord":
        try:
            obj = json.loads(line)
            return cls(
                node=obj["node"],
                op_name=obj["op"],
                input_versions=tuple(obj["inputs"]),
                output_version=obj["output"],
                params=obj.get("params", {}),
                lineage_modes=tuple(obj.get("modes", ())),
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise StorageError(f"corrupt WAL record: {exc}") from exc


class WriteAheadLog:
    """Append-only invocation log, in-memory with optional file backing."""

    def __init__(self, path: str | None = None, sync: bool = False):
        self._records: list[InvocationRecord] = []
        self._path = path
        self._sync = sync
        self._fh: io.TextIOWrapper | None = None
        if path is not None:
            try:
                os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
                self._fh = open(path, "a", encoding="utf-8")
            except OSError as exc:
                raise StorageError(f"cannot open WAL at {path!r}: {exc}") from exc

    def append(self, record: InvocationRecord) -> None:
        self._records.append(record)
        if self._fh is not None:
            try:
                self._fh.write(record.to_json() + "\n")
                self._fh.flush()
                if self._sync:
                    os.fsync(self._fh.fileno())
            except OSError as exc:
                raise StorageError(
                    f"WAL append to {self._path!r} failed: {exc}"
                ) from exc

    def records(self) -> list[InvocationRecord]:
        return list(self._records)

    def __iter__(self) -> Iterator[InvocationRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def nbytes(self) -> int:
        return sum(len(r.to_json()) + 1 for r in self._records)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # Deterministic handle lifetime: ``with WriteAheadLog(path) as wal: ...``
    # (and ``with WriteAheadLog.replay(path) as wal: ...``) always closes.

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @classmethod
    def replay(cls, path: str, reopen: bool = True, sync: bool = False) -> "WriteAheadLog":
        """Rebuild a log from a file (crash-recovery path).

        By default the file is reopened in append mode so records appended
        *after* recovery keep being persisted — a replayed log used to come
        back with no file handle, silently dropping post-recovery appends.
        Pass ``reopen=False`` for a read-only, in-memory reconstruction.
        """
        records = []
        raw = ""
        try:
            with open(path, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError as exc:
            raise StorageError(f"cannot replay WAL at {path!r}: {exc}") from exc
        for line in raw.splitlines():
            line = line.strip()
            if line:
                records.append(InvocationRecord.from_json(line))
        log = cls(path=path if reopen else None, sync=sync)
        log._records = records
        if log._fh is not None and raw and not raw.endswith("\n"):
            # a crash can tear the trailing newline off the last record;
            # terminate it so the next append starts a fresh line instead
            # of merging two records into one corrupt line
            log._fh.write("\n")
            log._fh.flush()
        return log
