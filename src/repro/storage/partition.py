"""Partitioned lineage catalog: independent catalog directories, one root.

A :class:`~repro.core.catalog.StoreCatalog` serves one directory of
segments — one box.  For bigger-than-one-box datasets this module splits a
workflow's lineage **by node subset** into *partitions*: each partition is
a fully independent catalog directory (its own ``catalog.json`` manifest,
its own delta generations, bloom/zone filters, and compaction), and a root
manifest (``partitions.json``) records the partition ids, their paths, and
the node→partition map.  The shape follows FamDB's root+leaf partition
files — a root index plus self-contained leaves, any subset of which can
be present — and OrpheusDB's bolt-on facade: independent storage units
behind one logical catalog.

:class:`PartitionedCatalog` presents the same serving surface as
``StoreCatalog`` (borrow/release pinning, lazy opens, per-key generation
accounting, online compaction), so :class:`~repro.core.runtime.LineageRuntime`,
:class:`~repro.core.query.QuerySession`, the background
:class:`~repro.serving.maintenance.MaintenanceWorker`, and the serving
daemon all work against either, unchanged.  Reads *scatter*: a key is
routed to the partition its node maps to (one probe), falling back to an
all-partition broadcast for nodes the map does not cover; when a key turns
out to live in several partitions, the per-partition stores are merged
through the same source-agnostic
:class:`~repro.core.overlay.OverlayStore` union that merges generations —
one merge implementation, with ``kind="partition"``.

Failure isolation is per partition: a torn partition (unreadable or
corrupt child manifest) is *degraded* at open time — its nodes lose their
materialised lineage (queries on them fall back to mapping functions or
re-execution) while every other partition keeps serving.
:func:`repro.workflow.recovery.recover_lineage` persists that verdict by
marking the partition ``quarantined`` in the root manifest.

:class:`ScatterGatherExecutor` adds the request-level plan on top: given a
backward/forward :class:`~repro.core.query.QueryRequest` it computes which
partitions can match (the unique partitions of the path's nodes),
recording targeted-vs-broadcast fan-out counters the cost model and the
benchmarks consume.  A partition is the stepping stone to a remote shard:
the plan's partition set is exactly the fan-out set a multi-machine
deployment would send the request to (see ``docs/partitioning.md``).
"""

from __future__ import annotations

import json
import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.analysis import lockcheck
from repro.core.catalog import CompactionReport, StoreCatalog
from repro.core.modes import StorageStrategy
from repro.core.overlay import FilterStats, OverlayStore
from repro.errors import QueryError, StorageError

__all__ = [
    "PARTITIONS_MANIFEST",
    "PartitionInfo",
    "PartitionedCatalog",
    "ScatterGatherExecutor",
    "ScatterPlan",
    "assign_partition",
    "is_partitioned_root",
]

PARTITIONS_MANIFEST = "partitions.json"
PARTITION_FORMAT = "subzero-partitions"
PARTITION_VERSION = 1

#: floor on a partition's open-store cache budget when the root budget is
#: split across partitions — a sliver budget would thrash every borrow
_MIN_CHILD_BUDGET = 1 << 16


def assign_partition(node: str, partition_ids: list[str]) -> str:
    """Stable hash assignment: which partition serves ``node``.

    CRC32 of the node name modulo the partition count — deterministic
    across processes and Python versions, so a re-opened catalog (or a
    remote shard router) computes the same map without reading it."""
    if not partition_ids:
        raise StorageError("cannot assign a node to zero partitions")
    return partition_ids[zlib.crc32(node.encode("utf-8")) % len(partition_ids)]


def is_partitioned_root(directory: str) -> bool:
    """True when ``directory`` holds a partitioned-catalog root manifest."""
    return os.path.isfile(os.path.join(directory, PARTITIONS_MANIFEST))


@dataclass(frozen=True)
class PartitionInfo:
    """One partition as the root manifest records it."""

    id: str
    #: directory of the partition's own catalog, relative to the root
    path: str
    #: set when recovery set the whole partition aside (unreadable child
    #: manifest); a quarantined partition is skipped at open — its nodes
    #: degrade to mapping/re-execution, everything else keeps serving
    quarantined: bool = False


@dataclass
class _PartitionLease:
    """One borrow served by the partitioned root: the merged read surface
    plus the child-catalog pins backing it.  ``store`` is the single
    partition's store in the common (targeted) case, or a
    ``kind="partition"`` overlay when the key lives in several partitions;
    ``leases`` are released child-by-child on the root's release."""

    key: tuple[str, StorageStrategy]
    store: object
    leases: list[tuple[StoreCatalog, object]] = field(default_factory=list)


@dataclass(frozen=True)
class ScatterPlan:
    """Which partitions one request can touch (see
    :meth:`ScatterGatherExecutor.plan`)."""

    #: unique partition ids the request's path nodes map to
    partition_ids: tuple[str, ...]
    #: True when the plan could not be narrowed (a path node missing from
    #: the node map, or ``entire_array`` in play) and every live partition
    #: must be consulted
    broadcast: bool
    #: the path nodes the plan was derived from
    nodes: tuple[str, ...]

    @property
    def fanout(self) -> int:
        return len(self.partition_ids)


class PartitionedCatalog:
    """Root facade over per-partition :class:`StoreCatalog` children
    (see module docstring).  Duck-compatible with ``StoreCatalog`` for
    every surface the runtime, sessions, recovery, and maintenance use."""

    def __init__(
        self,
        directory: str,
        infos: Iterable[PartitionInfo],
        node_map: Mapping[str, str],
        memory_budget_bytes: int | None = None,
    ):
        self.directory = directory
        self.memory_budget_bytes = memory_budget_bytes
        self._infos: dict[str, PartitionInfo] = {}
        for info in infos:
            if info.id in self._infos:
                raise StorageError(
                    f"partitioned catalog {directory!r} lists partition "
                    f"{info.id!r} twice"
                )
            self._infos[info.id] = info
        self._node_map: dict[str, str] = dict(node_map)
        for node, pid in self._node_map.items():
            if pid not in self._infos:
                raise StorageError(
                    f"node {node!r} maps to unknown partition {pid!r}"
                )
        #: partition id -> child catalog; None when quarantined or degraded
        self._children: dict[str, StoreCatalog | None] = {}
        #: ``(partition id, StorageError)`` per partition that failed to
        #: open — the runtime quarantine verdict recovery later persists
        self.degraded: list[tuple[str, StorageError]] = []
        live = [i for i in self._infos.values() if not i.quarantined]
        child_budget = self._split_budget(memory_budget_bytes, len(live))
        for info in self._infos.values():
            if info.quarantined:
                self._children[info.id] = None
                continue
            try:
                self._children[info.id] = StoreCatalog.open(
                    os.path.join(directory, info.path),
                    memory_budget_bytes=child_budget,
                )
            except StorageError as exc:
                # per-partition quarantine at open: a torn partition
                # degrades only its own nodes, never the whole root
                self._children[info.id] = None
                self.degraded.append((info.id, exc))
        #: shared skip counters for partition-level unions (children keep
        #: their own for generation overlays)
        self._filter_stats = FilterStats()
        self._lock = lockcheck.make_lock("partition.root")
        #: per-partition child-catalog probes routed by borrows/opens
        self._probes: dict[str, int] = {pid: 0 for pid in self._infos}
        self._targeted_probes = 0
        self._broadcast_probes = 0
        self._scatter_queries = 0
        self._scatter_broadcasts = 0
        self._scatter_partitions_matched = 0

    @staticmethod
    def _split_budget(budget: int | None, n_live: int) -> int | None:
        """Each child gets an even share of the root budget, so the total
        resident bytes stay bounded by the root figure (not N times it)."""
        if budget is None or n_live <= 0:
            return budget
        return max(budget // n_live, _MIN_CHILD_BUDGET)

    # -- writing ---------------------------------------------------------------

    @classmethod
    def write(
        cls,
        directory: str,
        stores,
        partitions,
        shard_threshold_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
    ) -> tuple["PartitionedCatalog", int]:
        """Flush ``stores`` split across partitions; returns
        ``(catalog, total_bytes_written)``.

        ``partitions`` is either an int ``N`` (partitions ``p0..p{N-1}``,
        nodes hash-assigned via :func:`assign_partition`) or an explicit
        ``node -> partition id`` mapping (ids are taken from its values;
        unmapped nodes are hash-assigned over the same ids).  ``stores``
        is anything with ``.items()`` yielding ``((node, strategy),
        store)`` — including the runtime's lazy one-at-a-time borrowing
        view, which this method iterates once per partition so at most
        one store is pinned at a time."""
        infos, explicit = cls._resolve_partitions(partitions)
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create partitioned catalog root {directory!r}: {exc}"
            ) from exc
        ids = [info.id for info in infos]
        node_map: dict[str, str] = {}

        def pid_of(node: str) -> str:
            pid = node_map.get(node)
            if pid is None:
                pid = explicit.get(node) or assign_partition(node, ids)
                node_map[node] = pid
            return pid

        class _OnePartition:
            """items() view filtered to one partition (re-iterable)."""

            def __init__(self, pid: str):
                self.pid = pid

            def items(self):
                for key, store in stores.items():
                    if pid_of(key[0]) == self.pid:
                        yield key, store

        total = 0
        for info in infos:
            child, nbytes = StoreCatalog.write(
                os.path.join(directory, info.path),
                _OnePartition(info.id),
                shard_threshold_bytes=shard_threshold_bytes,
            )
            child.close()
            total += nbytes
        catalog = cls(
            directory, infos, node_map, memory_budget_bytes=memory_budget_bytes
        )
        total += catalog.save_root_manifest()
        return catalog, total

    @staticmethod
    def _resolve_partitions(partitions) -> tuple[list[PartitionInfo], dict[str, str]]:
        """Normalise the ``partitions`` argument to ``(infos, explicit
        node->id map)``."""
        if isinstance(partitions, int):
            if partitions < 1:
                raise StorageError(
                    f"a partitioned catalog needs >= 1 partition, got {partitions}"
                )
            infos = [
                PartitionInfo(id=f"p{i}", path=f"p{i}") for i in range(partitions)
            ]
            return infos, {}
        if isinstance(partitions, Mapping):
            if not partitions:
                raise StorageError("an explicit partition map must be non-empty")
            ids = sorted({str(pid) for pid in partitions.values()})
            infos = [PartitionInfo(id=pid, path=pid) for pid in ids]
            return infos, {str(n): str(p) for n, p in partitions.items()}
        raise StorageError(
            "partitions must be an int (hash assignment) or a node->id mapping, "
            f"got {type(partitions).__name__}"
        )

    def save_root_manifest(self) -> int:
        """Atomically (re)write ``partitions.json``; returns its size."""
        with self._lock:
            obj = {
                "format": PARTITION_FORMAT,
                "version": PARTITION_VERSION,
                "partitions": [
                    {
                        "id": info.id,
                        "path": info.path,
                        **({"quarantined": True} if info.quarantined else {}),
                    }
                    for info in self._infos.values()
                ],
                "nodes": dict(sorted(self._node_map.items())),
            }
        path = os.path.join(self.directory, PARTITIONS_MANIFEST)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(obj, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
            return os.path.getsize(path)
        except BaseException as exc:
            try:
                os.remove(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise StorageError(
                    f"cannot write partition manifest {path!r}: {exc}"
                ) from exc
            raise

    def save_manifest(self) -> int:
        """Persist every live child manifest plus the root; returns the
        root manifest's size (mirrors ``StoreCatalog.save_manifest``)."""
        for child in self._live_children().values():
            child.save_manifest()
        return self.save_root_manifest()

    # -- opening ---------------------------------------------------------------

    @classmethod
    def open(
        cls, directory: str, memory_budget_bytes: int | None = None
    ) -> "PartitionedCatalog":
        """Parse the root manifest and each live child manifest; no
        segment file is touched.  A child that fails to open is degraded
        (recorded in :attr:`degraded`), not fatal."""
        path = os.path.join(directory, PARTITIONS_MANIFEST)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise StorageError(
                f"no partitioned catalog at {directory!r}: {exc}"
            ) from exc
        except ValueError as exc:
            raise StorageError(f"corrupt partition manifest {path!r}: {exc}") from exc
        if manifest.get("format") != PARTITION_FORMAT:
            raise StorageError(f"{path!r} is not a partition manifest")
        if int(manifest.get("version", 0)) > PARTITION_VERSION:
            raise StorageError(
                f"partition manifest {path!r} has version {manifest['version']}, "
                f"newer than supported version {PARTITION_VERSION}"
            )
        try:
            infos = [
                PartitionInfo(
                    id=str(p["id"]),
                    path=str(p["path"]),
                    quarantined=bool(p.get("quarantined", False)),
                )
                for p in manifest["partitions"]
            ]
            node_map = {str(n): str(p) for n, p in manifest.get("nodes", {}).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"corrupt partition manifest {path!r}: {exc}") from exc
        return cls(directory, infos, node_map, memory_budget_bytes=memory_budget_bytes)

    # -- partition topology ----------------------------------------------------

    def partition_ids(self) -> list[str]:
        return list(self._infos)

    def partition(self, pid: str) -> StoreCatalog | None:
        """The live child catalog for ``pid``; None when quarantined,
        degraded, or unknown."""
        return self._children.get(pid)

    def partition_for_node(self, node: str) -> str | None:
        """The partition the node map routes ``node`` to; None when the
        node is unmapped (reads broadcast)."""
        return self._node_map.get(node)

    def partition_fanout(self, node: str) -> int:
        """How many partitions a read on ``node`` must probe: 1 when the
        node map covers it, every live partition otherwise.  Feeds the
        cost model's scatter fan-out pricing."""
        if self._node_map.get(node) is not None:
            return 1
        return max(1, len(self._live_children()))

    def node_map(self) -> dict[str, str]:
        with self._lock:
            return dict(self._node_map)

    def _live_children(self) -> dict[str, StoreCatalog]:
        with self._lock:
            return {
                pid: child
                for pid, child in self._children.items()
                if child is not None
            }

    def _children_for(self, node: str) -> list[tuple[str, StoreCatalog]]:
        """The children a read on ``node`` must consult: the mapped one
        (possibly none when it is degraded), or — unmapped — all live."""
        pid = self._node_map.get(node)
        if pid is not None:
            child = self._children.get(pid)
            return [(pid, child)] if child is not None else []
        return list(self._live_children().items())

    def mark_quarantined(self, pid: str, persist: bool = True) -> None:
        """Set a partition aside: close its child (if open), flag it in
        the root manifest, and drop its nodes from serving.  Recovery
        calls this when a child manifest fails verification."""
        with self._lock:
            info = self._infos.get(pid)
            if info is None or info.quarantined:
                return
            self._infos[pid] = replace(info, quarantined=True)
            child = self._children.get(pid)
            self._children[pid] = None
        if child is not None:
            child.close()
        if persist:
            self.save_root_manifest()

    # -- scatter accounting ----------------------------------------------------

    def _count_probes(self, pids: list[str], targeted: bool) -> None:
        with self._lock:
            for pid in pids:
                self._probes[pid] = self._probes.get(pid, 0) + 1
            if targeted:
                self._targeted_probes += len(pids)
            else:
                self._broadcast_probes += len(pids)

    def probes_by_partition(self) -> dict[str, int]:
        """Child-catalog probes per partition id (the counter the targeted
        4-partition benchmark asserts on)."""
        with self._lock:
            return dict(self._probes)

    def record_scatter(self, plan: ScatterPlan) -> None:
        """Account one request-level scatter plan (see
        :class:`ScatterGatherExecutor`)."""
        with self._lock:
            self._scatter_queries += 1
            self._scatter_partitions_matched += plan.fanout
            if plan.broadcast:
                self._scatter_broadcasts += 1

    # -- serving: borrow / release ---------------------------------------------

    def borrow(self, node: str, strategy: StorageStrategy) -> _PartitionLease | None:
        """Scatter one key: probe the owning partition (or broadcast when
        the node is unmapped), pinning each child record touched.  Returns
        a lease whose ``.store`` is the merged read surface — the single
        partition's store, or a ``kind="partition"`` overlay — or None
        when no live partition serves the key."""
        targets = self._children_for(node)
        self._count_probes(
            [pid for pid, _ in targets],
            targeted=self._node_map.get(node) is not None,
        )
        leases: list[tuple[StoreCatalog, object]] = []
        try:
            for _pid, child in targets:
                record = child.borrow(node, strategy)
                if record is not None:
                    leases.append((child, record))
        except BaseException:
            for child, record in leases:
                child.release(record)
            raise
        if not leases:
            return None
        if len(leases) == 1:
            store = leases[0][1].store
        else:
            # the key spans partitions: same union code as generations
            store = OverlayStore(
                [record.store for _, record in leases],
                filter_stats=self._filter_stats,
                kind="partition",
            )
        return _PartitionLease(key=(node, strategy), store=store, leases=leases)

    def release(self, lease: _PartitionLease) -> None:
        for child, record in lease.leases:
            child.release(record)

    def open_store(self, node: str, strategy: StorageStrategy):
        """Unpinned convenience open (the ``StoreCatalog.open_store``
        contract): the store is live when handed back, but a later child
        eviction may close it — long-lived readers should borrow through a
        session instead."""
        targets = self._children_for(node)
        self._count_probes(
            [pid for pid, _ in targets],
            targeted=self._node_map.get(node) is not None,
        )
        stores = []
        for _pid, child in targets:
            store = child.open_store(node, strategy)
            if store is not None:
                stores.append(store)
        if not stores:
            return None
        if len(stores) == 1:
            return stores[0]
        return OverlayStore(
            stores, filter_stats=self._filter_stats, kind="partition"
        )

    # -- appending / compaction -------------------------------------------------

    def append_stores(self, stores, shard_threshold_bytes: int | None = None) -> int:
        """Route each store to its partition and append it there as a
        delta generation; returns bytes written.  Unmapped (new) nodes are
        hash-assigned over the full partition list — including quarantined
        ids, so the assignment stays stable when a partition returns — and
        the root manifest is rewritten when the map grew.  Appending a
        node that routes to a quarantined/degraded partition is an error:
        its lineage would vanish from serving."""
        pending = [(key, store) for key, store in stores.items()]
        ids = list(self._infos)
        grew = False
        with self._lock:
            for (node, _strategy), _store in pending:
                if node not in self._node_map:
                    self._node_map[node] = assign_partition(node, ids)
                    grew = True
        by_pid: dict[str, dict] = {}
        for key, store in pending:
            pid = self._node_map[key[0]]
            if self._children.get(pid) is None:
                raise StorageError(
                    f"cannot append node {key[0]!r}: its partition {pid!r} "
                    "is quarantined/degraded"
                )
            by_pid.setdefault(pid, {})[key] = store
        total = 0
        for pid, sub in by_pid.items():
            total += self._children[pid].append_stores(
                sub, shard_threshold_bytes=shard_threshold_bytes
            )
        if grew:
            total += self.save_root_manifest()
        return total

    def compact(
        self,
        node: str | None = None,
        strategy: StorageStrategy | None = None,
        budget_bytes: int | None = None,
        shard_threshold_bytes: int | None = None,
        parallel: int | None = None,
    ) -> CompactionReport:
        """Compact the partitions' delta generations, each partition
        independently (their maintenance locks do not contend), and merge
        the per-partition reports.

        A ``node``-restricted sweep is routed to the owning partition
        only.  The full sweep fans across the live partitions on a small
        thread pool — ``parallel`` workers (default: one per partition,
        capped at 4); each partition applies ``budget_bytes`` to its own
        sweep, so the cap bounds per-partition foreground impact."""
        if node is not None and self._node_map.get(node) is not None:
            targets = [c for _pid, c in self._children_for(node)]
        else:
            targets = list(self._live_children().values())
        if not targets:
            return CompactionReport()
        kwargs = dict(
            node=node,
            strategy=strategy,
            budget_bytes=budget_bytes,
            shard_threshold_bytes=shard_threshold_bytes,
        )
        if len(targets) == 1 or (parallel is not None and parallel <= 1):
            reports = [child.compact(**kwargs) for child in targets]
        else:
            workers = parallel if parallel is not None else min(4, len(targets))
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="subzero-partition-compact"
            ) as pool:
                reports = list(
                    pool.map(lambda child: child.compact(**kwargs), targets)
                )
        merged = CompactionReport()
        for report in reports:
            merged.compacted.extend(report.compacted)
            merged.skipped.extend(report.skipped)
            merged.bytes_written += report.bytes_written
            merged.bytes_reclaimed += report.bytes_reclaimed
        return merged

    # -- manifest-level accessors ------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct keys across the live partitions."""
        return len({key for child in self._live_children().values() for key in child.keys()})

    def keys(self) -> list[tuple[str, StorageStrategy]]:
        seen: dict[tuple[str, StorageStrategy], None] = {}
        for child in self._live_children().values():
            for key in child.keys():
                seen[key] = None
        return list(seen)

    def entries(self) -> list:
        return [e for child in self._live_children().values() for e in child.entries()]

    def entry(self, node: str, strategy: StorageStrategy):
        for _pid, child in self._children_for(node):
            entry = child.entry(node, strategy)
            if entry is not None:
                return entry
        return None

    def generations_for(self, node: str, strategy: StorageStrategy) -> tuple:
        out: tuple = ()
        for _pid, child in self._children_for(node):
            out += child.generations_for(node, strategy)
        return out

    def generation_count(self, node: str, strategy: StorageStrategy) -> int:
        """Live sources a read must union — generations summed across the
        partitions serving the key (normally exactly one partition)."""
        return sum(
            child.generation_count(node, strategy)
            for _pid, child in self._children_for(node)
        )

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        out: list[StorageStrategy] = []
        for _pid, child in self._children_for(node):
            for strategy in child.strategies_for(node):
                if strategy not in out:
                    out.append(strategy)
        return tuple(out)

    def manifest_bytes(self, node: str, strategy: StorageStrategy) -> int:
        return sum(
            child.manifest_bytes(node, strategy)
            for _pid, child in self._children_for(node)
        )

    def lowered_ready(self, node: str, strategy: StorageStrategy) -> bool:
        holders = [
            child
            for _pid, child in self._children_for(node)
            if child.generation_count(node, strategy)
        ]
        return bool(holders) and all(
            child.lowered_ready(node, strategy) for child in holders
        )

    def filters_ready(self, node: str, strategy: StorageStrategy) -> bool:
        holders = [
            child
            for _pid, child in self._children_for(node)
            if child.generation_count(node, strategy)
        ]
        return bool(holders) and all(
            child.filters_ready(node, strategy) for child in holders
        )

    def drop(self, node: str, strategy: StorageStrategy) -> None:
        for _pid, child in self._children_for(node):
            child.drop(node, strategy)

    def drop_generation(self, node: str, strategy: StorageStrategy, gen: int) -> None:
        for _pid, child in self._children_for(node):
            child.drop_generation(node, strategy, gen)

    # -- introspection -----------------------------------------------------------

    def resident_bytes(self) -> int:
        return sum(c.resident_bytes() for c in self._live_children().values())

    def open_count(self) -> int:
        return sum(c.open_count() for c in self._live_children().values())

    def is_open(self, node: str, strategy: StorageStrategy) -> bool:
        return any(
            child.is_open(node, strategy)
            for _pid, child in self._children_for(node)
        )

    def is_catalog_store(self, node: str, strategy: StorageStrategy, store) -> bool:
        for _pid, child in self._children_for(node):
            if child.is_catalog_store(node, strategy, store):
                return True
        return False

    def stats(self) -> dict[str, int]:
        """Child cache counters summed, plus the root's scatter counters
        (``partitions``, ``partition_probes``, targeted/broadcast splits,
        and the request-level scatter-plan tallies)."""
        out: dict[str, int] = {}
        for child in self._live_children().values():
            for key, value in child.stats().items():
                out[key] = out.get(key, 0) + value
        for key, value in self._filter_stats.snapshot().items():
            out[key] = out.get(key, 0) + value
        with self._lock:
            out["partitions"] = len(self._infos)
            out["partitions_degraded"] = sum(
                1 for child in self._children.values() if child is None
            )
            out["partition_probes"] = sum(self._probes.values())
            out["targeted_probes"] = self._targeted_probes
            out["broadcast_probes"] = self._broadcast_probes
            out["scatter_queries"] = self._scatter_queries
            out["scatter_broadcasts"] = self._scatter_broadcasts
            out["scatter_partitions_matched"] = self._scatter_partitions_matched
        return out

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        for child in self._live_children().values():
            child.close()

    def __enter__(self) -> "PartitionedCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ScatterGatherExecutor:
    """Request-level scatter-gather over a :class:`PartitionedCatalog`.

    Wraps a :class:`~repro.core.query.QueryExecutor`: :meth:`plan`
    computes which partitions a :class:`~repro.core.query.QueryRequest`
    can touch (the unique partitions of its path's nodes — resolved from
    endpoints when the request carries those), and
    :meth:`execute_request` records the plan on the catalog's scatter
    counters before running the query through the standard executor,
    whose per-step store borrows then land only on the planned
    partitions.  The plan degrades to an all-partition broadcast when it
    cannot be narrowed: a path node missing from the node map, an
    unresolvable path, or ``entire_array`` forced on (shortcut steps may
    touch any store the engine deems cheapest)."""

    def __init__(self, executor, catalog: PartitionedCatalog):
        self._executor = executor
        self.catalog = catalog

    def plan(self, request) -> ScatterPlan:
        """The partitions ``request`` can match; never raises — an
        unresolvable request yields a broadcast plan and the real error
        surfaces from execution."""
        all_live = tuple(self.catalog._live_children())
        try:
            query = request.to_query(self._executor.instance.spec)
            nodes = tuple(step.node for step in query.path)
        except QueryError:
            return ScatterPlan(partition_ids=all_live, broadcast=True, nodes=())
        if request.entire_array is True:
            return ScatterPlan(partition_ids=all_live, broadcast=True, nodes=nodes)
        pids: list[str] = []
        for node in nodes:
            pid = self.catalog.partition_for_node(node)
            if pid is None:
                return ScatterPlan(
                    partition_ids=all_live, broadcast=True, nodes=nodes
                )
            if pid not in pids:
                pids.append(pid)
        return ScatterPlan(partition_ids=tuple(pids), broadcast=False, nodes=nodes)

    def execute_request(self, request, session=None):
        plan = self.plan(request)
        self.catalog.record_scatter(plan)
        return self._executor.execute_request(request, session=session)
