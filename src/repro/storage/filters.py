"""Per-generation key filters: bloom + coordinate zone maps.

A generational catalog (``docs/storage_format.md``, *Generations*) serves a
multi-generation store as an overlay — every matched probe repeats once per
live generation, the O(generations) read amplification the cost model
prices as ``overlay_penalty_seconds``.  The in-situ lineage line of work
wins by *skipping* decode work, so each flushed generation now persists a
:class:`GenerationFilter` per key surface: a decode-free, mmap-backed
summary the overlay consults *before* touching the generation at all.

Two layers, both exact-negative (a ``False`` is a proof of absence; only
``True`` can be wrong):

* **Zone map** — the packed-key min/max plus a per-dimension coordinate
  bounding box over every key the generation stores.  One vectorised
  range check rejects whole query batches that fall outside the
  generation's key region — the classic sorted-run zone map, adapted to
  packed array coordinates.
* **Bloom filter** — a standard double-hashed bloom over the packed keys
  (splitmix64 mixing, ``k`` derived from the bits-per-key budget), for
  queries that land inside the bounding box but miss the actual key set.

Filters are ordinary optional segment sections (``filters.meta`` JSON plus
one ``filters.<tag>.bits`` array per key surface), so per the format's
versioning policy they ship without a version bump: old readers ignore
them, old segments simply have none (the overlay then reads the
generation unconditionally — conservative, never wrong).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError

__all__ = ["GenerationFilter", "dump_filters", "load_filters"]

#: section name of the JSON describing every filter in a segment
META_SECTION = "filters.meta"
#: format version of the filter sections themselves (independent of the
#: segment version — bumping this only invalidates filters, never data)
FILTER_VERSION = 1
#: bloom sizing: bits per stored key (~1% false positives at k=7)
BITS_PER_KEY = 10
#: hash count bounds (k = m/n * ln 2, clamped)
MAX_HASHES = 8

_SPLIT_C1 = np.uint64(0x9E3779B97F4A7C15)
_SPLIT_C2 = np.uint64(0xBF58476D1CE4E5B9)
_SPLIT_C3 = np.uint64(0x94D049BB133111EB)


def _mix(keys: np.ndarray, seed: int) -> np.ndarray:
    """splitmix64 finalizer over int64 packed keys (uint64 wraparound)."""
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64) + _SPLIT_C1 * np.uint64(seed + 1)
        z = (z ^ (z >> np.uint64(30))) * _SPLIT_C2
        z = (z ^ (z >> np.uint64(27))) * _SPLIT_C3
        return z ^ (z >> np.uint64(31))


class GenerationFilter:
    """Bloom + zone-map summary of one key surface of one generation.

    ``may_contain(qpacked)`` answers "could any of these packed keys be
    stored here?" without touching the generation's data sections.  An
    empty key set yields an always-``False`` filter (still exact: the
    generation provably stores nothing on this surface).
    """

    __slots__ = ("n", "m_bits", "k", "kmin", "kmax", "lo", "hi", "bits", "shape")

    def __init__(self, n, m_bits, k, kmin, kmax, lo, hi, bits, shape):
        self.n = int(n)
        self.m_bits = int(m_bits)
        self.k = int(k)
        self.kmin = int(kmin)
        self.kmax = int(kmax)
        self.lo = np.asarray(lo, dtype=np.int64)
        self.hi = np.asarray(hi, dtype=np.int64)
        self.bits = bits  # uint64 words, possibly an mmap-backed view
        self.shape = tuple(int(s) for s in shape)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, keys: np.ndarray, shape: tuple[int, ...]) -> "GenerationFilter":
        """Summarise ``keys`` (packed int64 coordinates of ``shape``)."""
        keys = np.asarray(keys, dtype=np.int64).ravel()
        ndim = len(shape)
        if keys.size == 0:
            return cls(
                0, 0, 1, 0, -1,
                np.zeros(ndim, np.int64), np.full(ndim, -1, np.int64),
                np.zeros(0, np.uint64), shape,
            )
        keys = np.unique(keys)
        n = keys.size
        m_bits = 64 * ((BITS_PER_KEY * n + 63) // 64)
        k = min(MAX_HASHES, max(1, int(round(m_bits / n * 0.6931))))
        h1 = _mix(keys, 0)
        h2 = _mix(keys, 1) | np.uint64(1)  # odd stride covers every slot
        bits = np.zeros(m_bits // 64, dtype=np.uint64)
        m = np.uint64(m_bits)
        with np.errstate(over="ignore"):
            for i in range(k):
                idx = (h1 + np.uint64(i) * h2) % m
                np.bitwise_or.at(
                    bits, idx >> np.uint64(6),
                    np.uint64(1) << (idx & np.uint64(63)),
                )
        coords = np.unravel_index(keys, shape)
        lo = np.asarray([int(c.min()) for c in coords], dtype=np.int64)
        hi = np.asarray([int(c.max()) for c in coords], dtype=np.int64)
        return cls(n, m_bits, k, int(keys[0]), int(keys[-1]), lo, hi, bits, shape)

    # -- probing -------------------------------------------------------------

    def may_contain(self, qpacked: np.ndarray) -> bool:
        """False only when provably *no* query key is stored here."""
        q = np.asarray(qpacked, dtype=np.int64).ravel()
        if self.n == 0 or q.size == 0:
            return False
        # zone maps first: packed range, then the coordinate bounding box
        q = q[(q >= self.kmin) & (q <= self.kmax)]
        if q.size == 0:
            return False
        coords = np.unravel_index(q, self.shape)
        inside = np.ones(q.size, dtype=bool)
        for d, c in enumerate(coords):
            inside &= (c >= self.lo[d]) & (c <= self.hi[d])
        q = q[inside]
        if q.size == 0:
            return False
        # bloom over the survivors: a key may be present only if all k
        # probed bits are set
        h1 = _mix(q, 0)
        h2 = _mix(q, 1) | np.uint64(1)
        alive = np.ones(q.size, dtype=bool)
        bits = np.asarray(self.bits)
        m = np.uint64(self.m_bits)
        with np.errstate(over="ignore"):
            for i in range(self.k):
                idx = (h1 + np.uint64(i) * h2) % m
                word = bits[idx >> np.uint64(6)]
                alive &= (word >> (idx & np.uint64(63))) & np.uint64(1) != 0
                if not alive.any():
                    return False
                keep = alive
                h1, h2, alive = h1[keep], h2[keep], alive[keep]
        return True

    # -- persistence ---------------------------------------------------------

    def meta(self) -> dict:
        return {
            "n": self.n,
            "m_bits": self.m_bits,
            "k": self.k,
            "kmin": self.kmin,
            "kmax": self.kmax,
            "lo": self.lo.tolist(),
            "hi": self.hi.tolist(),
            "shape": list(self.shape),
        }

    @classmethod
    def from_meta(cls, meta: dict, bits: np.ndarray) -> "GenerationFilter":
        return cls(
            meta["n"], meta["m_bits"], meta["k"], meta["kmin"], meta["kmax"],
            meta["lo"], meta["hi"], bits, meta["shape"],
        )


def dump_filters(writer, filters: dict[str, GenerationFilter]) -> None:
    """Add the filter sections for one store to a segment writer:
    ``filters.meta`` plus one bit-array section per tag."""
    writer.add_json(
        META_SECTION,
        {
            "version": FILTER_VERSION,
            "tags": {tag: f.meta() for tag, f in filters.items()},
        },
    )
    for tag, f in filters.items():
        writer.add_array(f"filters.{tag}.bits", f.bits)


def load_filters(seg) -> dict[str, GenerationFilter] | None:
    """Reconstruct a segment's filters (bit arrays stay mmap-backed, zero
    copy).  None when the segment predates filters — callers must then
    treat every probe as "may contain"."""
    if not seg.has(META_SECTION):
        return None
    meta = seg.json(META_SECTION)
    if meta.get("version", 0) > FILTER_VERSION:
        # newer filters we cannot interpret: serve without them rather
        # than refuse the (perfectly readable) data sections
        return None
    filters: dict[str, GenerationFilter] = {}
    for tag, m in meta.get("tags", {}).items():
        name = f"filters.{tag}.bits"
        if not seg.has(name):
            raise StorageError(
                f"segment {seg.path!r} lists filter {tag!r} but has no "
                f"section {name!r}"
            )
        filters[tag] = GenerationFilter.from_meta(m, seg.array(name))
    return filters
