"""Compressed lineage codecs with in-situ query processing.

SubZero's encoders persist *sets of packed cell coordinates* (int64, ravel
order) that "can easily be larger than the original data arrays" (§VI-B).
"Compression and In-Situ Query Processing for Fine-Grained Array Lineage"
(Zhao & Krishnan, arXiv:2405.17701) shows that the right wire format is
workload-dependent — scattered sets want delta coding, contiguous regions
want interval coding — and that membership probes should run against the
encoded bytes instead of materialising the full cell array first.

This module provides that layer:

:class:`Codec`
    The interface: ``encode``/``decode``/``nbytes`` plus the decode-free
    probes ``contains_any`` / ``intersect`` / ``bounds`` / ``skip``.

Four concrete codecs, distinguished by a leading *tag byte* per value:

======  =====  ==========  ====================================================
tag     ascii  codec       wire layout after the tag byte
======  =====  ==========  ====================================================
``49``  ``I``  delta       flags, n (uvarint), width, base ``<q``, residuals
``52``  ``R``  raw         flags, n (uvarint), n little-endian int64 values
``56``  ``V``  interval    n, r (uvarints), gap/len widths, base ``<q``,
                           ``r - 1`` gaps, ``r`` run lengths minus one
``42``  ``B``  bitmap      n, m (uvarints), base ``<q``, ``m`` mask bytes;
                           bit ``j`` of byte ``i`` set ⇔ ``base + 8i + j``
                           is present (LSB-first within each byte)
======  =====  ==========  ====================================================

``DeltaCodec`` (tag ``0x49``)
    The repo's original delta + minimal-fixed-width scheme, byte-for-byte.
    Its historical magic byte doubles as its codec tag, so every value
    written before this subsystem existed still decodes — old flushed
    stores load unchanged.

``RawCodec`` (tag ``0x52``)
    Fixed-width 8-byte values.  Never smaller than delta on compressible
    data, but always *eligible*: it is the fallback when a set spans more
    than the int64 range and delta residuals would overflow.

``IntervalCodec`` (tag ``0x56``)
    Run-length coding over maximal ``+1``-stride runs.  Contiguous regions
    — convolution neighbourhoods, reshape/spatial blocks — collapse to a
    handful of ``(gap, length)`` pairs, and membership probes binary-search
    the run table without ever expanding the cells.

``BitmapCodec`` (tag ``0x42``)
    One bit per position across the value's span.  Dense-but-*ragged*
    regions — thresholded masks, sieved selections — fragment the interval
    run table into nearly one run per cell, while a bitmap stays at
    ``span / 8`` bytes regardless of raggedness; membership probes are
    decode-free byte masking against the encoded mask.

:func:`encode_cells` picks the smallest eligible encoding per value;
:func:`decode_cells` and the in-situ probes dispatch on the tag byte.
:class:`BatchProbe` amortises those probes across a whole value heap —
entries grouped by tag byte, each group lowered to one flat NumPy table and
answered for every entry at once — which is what the store scan paths use
instead of calling :func:`contains_any` / :func:`intersect` per entry.
Everything is vectorised with numpy; nothing here loops over cells.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.analysis import lockcheck
from repro.arrays.coords import expand_ranges, isin_sorted
from repro.errors import StorageError

__all__ = [
    "Codec",
    "DeltaCodec",
    "RawCodec",
    "IntervalCodec",
    "BitmapCodec",
    "BatchProbe",
    "TAG_DELTA",
    "TAG_RAW",
    "TAG_INTERVAL",
    "TAG_BITMAP",
    "codec_for_tag",
    "encode_uvarint",
    "decode_uvarint",
    "uvarint_len",
    "encode_cells",
    "encode_sorted_sets",
    "decode_cells",
    "cells_nbytes",
    "skip_cells",
    "skip_fields",
    "contains_any",
    "intersect",
    "decoded_bounds",
]

TAG_DELTA = 0x49  # ord('I'): the legacy magic byte doubles as the codec tag
TAG_RAW = 0x52  # ord('R')
TAG_INTERVAL = 0x56  # ord('V')
TAG_BITMAP = 0x42  # ord('B')

_FLAG_SORTED = 0x01
_WIDTHS = (1, 2, 4, 8)
_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}

#: widest span a bitmap may cover (a 16 MiB mask).  Selection would never
#: pick a mask anywhere near this large — it loses to delta long before —
#: but the cap keeps eligibility itself bounded: ``arr - base`` stays well
#: inside int64 and a forced ``encode`` can never allocate absurd masks.
_BITMAP_MAX_SPAN = 1 << 27


# -- varints (shared with :mod:`repro.storage.serialize`) -----------------------


def encode_uvarint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise StorageError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise StorageError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise StorageError("uvarint overflow")


def uvarint_len(value: int) -> int:
    """Encoded size of a uvarint without materialising the bytes."""
    if value < 0:
        raise StorageError(f"uvarint cannot encode negative value {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


def _width_for(max_value: int) -> int:
    for width in _WIDTHS:
        if max_value < (1 << (8 * width)):
            return width
    raise StorageError(f"residual {max_value} does not fit in 8 bytes")


def _as_int64(arr: np.ndarray) -> np.ndarray:
    return np.asarray(arr, dtype=np.int64).ravel()


def _is_sorted(arr: np.ndarray) -> bool:
    return bool(arr.size <= 1 or (arr[1:] >= arr[:-1]).all())


class Codec:
    """One wire format for an int64 cell set, identified by ``tag``.

    ``encode``/``nbytes`` take the raw array; a codec that cannot represent
    a given array exactly (overflowing residuals, non-contiguous data, …)
    reports ``nbytes() is None`` and refuses ``encode`` with
    :class:`~repro.errors.StorageError`.  The probe methods operate on the
    encoded bytes *in place* — ``buf`` may be a much larger buffer with the
    value starting at ``offset`` — and never materialise more than they
    must: ``bounds`` and ``skip`` read only headers/summaries, and
    ``contains_any``/``intersect`` reject via bounds before touching the
    payload.
    """

    tag: int = -1
    name: str = "abstract"

    # -- encoding ----------------------------------------------------------

    def nbytes(self, arr: np.ndarray) -> int | None:
        """Encoded size, or None when this codec cannot encode ``arr``."""
        raise NotImplementedError

    def encode(self, arr: np.ndarray) -> bytes:
        raise NotImplementedError

    # -- decoding ----------------------------------------------------------

    def decode(self, buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        """Return ``(array, next_offset)``; ``buf[offset]`` must be ``tag``."""
        raise NotImplementedError

    def skip(self, buf: bytes, offset: int = 0) -> int:
        """Next offset after this value, reading only the header."""
        raise NotImplementedError

    # -- in-situ probes ----------------------------------------------------

    def bounds(self, buf: bytes, offset: int = 0) -> tuple[int, int, int]:
        """``(lo, hi, count)`` without expanding cells; empty → ``(0, -1, 0)``."""
        raise NotImplementedError

    def contains_any(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> bool:
        """True when any value of ``sorted_query`` is in the encoded set."""
        raise NotImplementedError

    def intersect(
        self, buf: bytes, offset: int, sorted_query: np.ndarray
    ) -> np.ndarray:
        """The subset of ``sorted_query`` present in the encoded set."""
        raise NotImplementedError

    def _check_tag(self, buf: bytes, offset: int) -> None:
        if offset >= len(buf) or buf[offset] != self.tag:
            raise StorageError(f"value at offset {offset} is not a {self.name} value")


class DeltaCodec(Codec):
    """Delta + minimal-fixed-width coding (the repo's original format).

    Sorted sets store the first value plus non-negative deltas; unsorted
    sequences store offsets from their minimum; residuals use the narrowest
    of 1/2/4/8 bytes.  Ineligible when the value range exceeds int64 and the
    residuals would wrap negative.
    """

    tag = TAG_DELTA
    name = "delta"

    def _residuals(
        self, arr: np.ndarray, is_sorted: bool, d: np.ndarray | None = None
    ) -> tuple[np.ndarray, int, int] | None:
        """``(residuals, base, flags)`` or None when residuals overflow.

        ``d`` may carry a precomputed ``np.diff(arr)`` so selection shares
        one diff pass between the delta and interval planners.
        """
        if is_sorted:
            base = int(arr[0])
            residuals = np.diff(arr) if d is None else d
            flags = _FLAG_SORTED
        else:
            base = int(arr.min())
            residuals = arr - base
            flags = 0
        if residuals.size and int(residuals.min()) < 0:
            return None  # int64 overflow: span exceeds the residual range
        return residuals, base, flags

    @staticmethod
    def _planned_size(n: int, plan: tuple[np.ndarray, int, int]) -> int:
        residuals, _, flags = plan
        width = _width_for(int(residuals.max()) if residuals.size else 0)
        count = n - 1 if flags & _FLAG_SORTED else n
        return 2 + uvarint_len(n) + 1 + 8 + count * width

    def _encode_planned(
        self, arr: np.ndarray, plan: tuple[np.ndarray, int, int] | None
    ) -> bytes:
        n = arr.size
        header = bytearray([self.tag])
        if n == 0:
            header.append(0)  # flags
            header += encode_uvarint(0)
            return bytes(header)
        residuals, base, flags = plan
        width = _width_for(int(residuals.max()) if residuals.size else 0)
        header.append(flags)
        header += encode_uvarint(n)
        header.append(width)
        header += struct.pack("<q", base)
        return bytes(header) + residuals.astype(_DTYPES[width]).tobytes()

    def nbytes(self, arr: np.ndarray) -> int | None:
        arr = _as_int64(arr)
        if arr.size == 0:
            return 3
        plan = self._residuals(arr, _is_sorted(arr))
        return None if plan is None else self._planned_size(arr.size, plan)

    def encode(self, arr: np.ndarray) -> bytes:
        arr = _as_int64(arr)
        if arr.size == 0:
            return self._encode_planned(arr, None)
        plan = self._residuals(arr, _is_sorted(arr))
        if plan is None:
            raise StorageError("negative residual in delta encoding")
        return self._encode_planned(arr, plan)

    def _header(self, buf: bytes, offset: int) -> tuple[int, int, int, int, int, int]:
        """``(flags, n, width, base, payload_pos, count)``; n == 0 → width/base 0."""
        self._check_tag(buf, offset)
        pos = offset + 1
        if pos >= len(buf):
            raise StorageError("truncated int array header")
        flags = buf[pos]
        pos += 1
        n, pos = decode_uvarint(buf, pos)
        if n == 0:
            return flags, 0, 0, 0, pos, 0
        if pos >= len(buf):
            raise StorageError("truncated int array header")
        width = buf[pos]
        pos += 1
        if width not in _DTYPES:
            raise StorageError(f"bad residual width {width}")
        if pos + 8 > len(buf):
            raise StorageError("truncated int array header")
        (base,) = struct.unpack_from("<q", buf, pos)
        pos += 8
        count = n - 1 if flags & _FLAG_SORTED else n
        if pos + count * width > len(buf):
            raise StorageError("truncated int array payload")
        return flags, n, width, base, pos, count

    def decode(self, buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        flags, n, width, base, pos, count = self._header(buf, offset)
        if n == 0:
            return np.empty(0, dtype=np.int64), pos
        residuals = np.frombuffer(
            buf, dtype=_DTYPES[width], count=count, offset=pos
        ).astype(np.int64)
        end = pos + count * width
        if flags & _FLAG_SORTED:
            out = np.empty(n, dtype=np.int64)
            out[0] = base
            if count:
                np.cumsum(residuals, out=out[1:])
                out[1:] += base
        else:
            out = residuals + base
        return out, end

    def skip(self, buf: bytes, offset: int = 0) -> int:
        _, _, width, _, pos, count = self._header(buf, offset)
        return pos + count * width

    def bounds(self, buf: bytes, offset: int = 0) -> tuple[int, int, int]:
        flags, n, width, base, pos, count = self._header(buf, offset)
        if n == 0:
            return 0, -1, 0
        if count == 0:
            return base, base, n
        residuals = np.frombuffer(buf, dtype=_DTYPES[width], count=count, offset=pos)
        if flags & _FLAG_SORTED:
            return base, base + int(residuals.sum(dtype=np.uint64)), n
        return base, base + int(residuals.max()), n

    def contains_any(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> bool:
        return self.intersect(buf, offset, sorted_query).size > 0

    def intersect(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> np.ndarray:
        sorted_query = _as_int64(sorted_query)
        lo, hi, n = self.bounds(buf, offset)
        if n == 0 or sorted_query.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(sorted_query[-1]) < lo or int(sorted_query[0]) > hi:
            return np.empty(0, dtype=np.int64)  # rejected without decoding
        values, _ = self.decode(buf, offset)
        if not buf[offset + 1] & _FLAG_SORTED:
            values = np.sort(values)
        return sorted_query[isin_sorted(sorted_query, values)]


class RawCodec(Codec):
    """Fixed-width little-endian int64 values.

    The universal fallback: always eligible, trivially in-situ (probes run
    against a zero-copy view of the payload), never the smallest choice for
    data the other codecs can represent.
    """

    tag = TAG_RAW
    name = "raw"

    @staticmethod
    def _planned_size(n: int) -> int:
        return 2 + uvarint_len(n) + 8 * n

    def _encode_planned(self, arr: np.ndarray, is_sorted: bool) -> bytes:
        flags = _FLAG_SORTED if is_sorted else 0
        header = bytes([self.tag, flags]) + encode_uvarint(arr.size)
        return header + arr.astype("<i8").tobytes()

    def nbytes(self, arr: np.ndarray) -> int | None:
        arr = _as_int64(arr)
        return self._planned_size(arr.size)

    def encode(self, arr: np.ndarray) -> bytes:
        arr = _as_int64(arr)
        return self._encode_planned(arr, _is_sorted(arr))

    def _header(self, buf: bytes, offset: int) -> tuple[int, int, int]:
        """``(flags, n, payload_pos)``."""
        self._check_tag(buf, offset)
        pos = offset + 1
        if pos >= len(buf):
            raise StorageError("truncated int array header")
        flags = buf[pos]
        n, pos = decode_uvarint(buf, pos + 1)
        if pos + 8 * n > len(buf):
            raise StorageError("truncated int array payload")
        return flags, n, pos

    def _view(self, buf: bytes, offset: int) -> tuple[int, np.ndarray]:
        flags, n, pos = self._header(buf, offset)
        return flags, np.frombuffer(buf, dtype="<i8", count=n, offset=pos)

    def decode(self, buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        flags, n, pos = self._header(buf, offset)
        values = np.frombuffer(buf, dtype="<i8", count=n, offset=pos).astype(np.int64)
        return values, pos + 8 * n

    def skip(self, buf: bytes, offset: int = 0) -> int:
        _, n, pos = self._header(buf, offset)
        return pos + 8 * n

    def bounds(self, buf: bytes, offset: int = 0) -> tuple[int, int, int]:
        flags, view = self._view(buf, offset)
        if view.size == 0:
            return 0, -1, 0
        if flags & _FLAG_SORTED:
            return int(view[0]), int(view[-1]), view.size
        return int(view.min()), int(view.max()), view.size

    def contains_any(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> bool:
        return self.intersect(buf, offset, sorted_query).size > 0

    def intersect(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> np.ndarray:
        sorted_query = _as_int64(sorted_query)
        flags, view = self._view(buf, offset)
        if view.size == 0 or sorted_query.size == 0:
            return np.empty(0, dtype=np.int64)
        values = view if flags & _FLAG_SORTED else np.sort(view)
        if int(sorted_query[-1]) < int(values[0]) or int(sorted_query[0]) > int(values[-1]):
            return np.empty(0, dtype=np.int64)
        return sorted_query[isin_sorted(sorted_query, values)]


class IntervalCodec(Codec):
    """Run-length (interval) coding over maximal ``+1``-stride runs.

    Eligible only for strictly-increasing sets of at least two cells — the
    shape convolution / reshape / spatial operators emit.  The payload is a
    run table (inter-run gaps and run lengths at minimal fixed width), so a
    contiguous region of any size costs a near-constant handful of bytes,
    and membership probes binary-search ``O(runs)`` data instead of
    expanding ``O(cells)``.
    """

    tag = TAG_INTERVAL
    name = "interval"

    def _runs_of(
        self, arr: np.ndarray, is_sorted: bool, d: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(starts, lens)`` of maximal runs, or None when ineligible.

        ``is_sorted`` must come from a comparison-based check, NOT be
        inferred from the diffs: a descending extreme-span pair can wrap
        ``np.diff`` back to a *positive* value (e.g. ``[2**63-1, -2**63]``
        wraps to ``+1``) and would otherwise be mistaken for a run.  For a
        genuinely sorted array every wrapped diff is negative, so the
        ``d < 1`` test below correctly rejects both duplicates and
        overflowing gaps.  ``d`` may carry a precomputed ``np.diff(arr)``.
        """
        if arr.size < 2 or not is_sorted:
            return None
        if d is None:
            d = np.diff(arr)
        if (d < 1).any():  # duplicates or int64-overflow wrap
            return None
        breaks = np.flatnonzero(d != 1)
        starts = np.empty(breaks.size + 1, dtype=np.int64)
        starts[0] = arr[0]
        starts[1:] = arr[breaks + 1]
        ends = np.empty(breaks.size + 1, dtype=np.int64)
        ends[:-1] = arr[breaks]
        ends[-1] = arr[-1]
        return starts, ends - starts + 1

    @staticmethod
    def _widths(starts: np.ndarray, lens: np.ndarray) -> tuple[int, int]:
        ends = starts + lens - 1
        gaps = starts[1:] - ends[:-1]
        gw = _width_for(int(gaps.max()) if gaps.size else 0)
        lw = _width_for(int((lens - 1).max()))
        return gw, lw

    @classmethod
    def _planned_size(cls, n: int, plan: tuple[np.ndarray, np.ndarray]) -> int:
        starts, lens = plan
        r = starts.size
        gw, lw = cls._widths(starts, lens)
        return 1 + uvarint_len(n) + uvarint_len(r) + 2 + 8 + (r - 1) * gw + r * lw

    def _encode_planned(
        self, arr: np.ndarray, plan: tuple[np.ndarray, np.ndarray]
    ) -> bytes:
        starts, lens = plan
        r = starts.size
        ends = starts + lens - 1
        gaps = starts[1:] - ends[:-1]
        gw, lw = self._widths(starts, lens)
        header = bytearray([self.tag])
        header += encode_uvarint(arr.size)
        header += encode_uvarint(r)
        header.append(gw)
        header.append(lw)
        header += struct.pack("<q", int(starts[0]))
        return (
            bytes(header)
            + gaps.astype(_DTYPES[gw]).tobytes()
            + (lens - 1).astype(_DTYPES[lw]).tobytes()
        )

    def nbytes(self, arr: np.ndarray) -> int | None:
        arr = _as_int64(arr)
        plan = self._runs_of(arr, _is_sorted(arr))
        return None if plan is None else self._planned_size(arr.size, plan)

    def encode(self, arr: np.ndarray) -> bytes:
        arr = _as_int64(arr)
        plan = self._runs_of(arr, _is_sorted(arr))
        if plan is None:
            raise StorageError("interval codec requires a strictly-increasing set")
        return self._encode_planned(arr, plan)

    def _header(self, buf: bytes, offset: int) -> tuple[int, int, int, int, int, int]:
        """``(n, r, gw, lw, base, payload_pos)``."""
        self._check_tag(buf, offset)
        n, pos = decode_uvarint(buf, offset + 1)
        r, pos = decode_uvarint(buf, pos)
        if n < 2 or r < 1 or r > n:
            raise StorageError(f"bad interval run count {r} for {n} cells")
        if pos + 2 + 8 > len(buf):
            raise StorageError("truncated int array header")
        gw, lw = buf[pos], buf[pos + 1]
        if gw not in _DTYPES or lw not in _DTYPES:
            raise StorageError(f"bad interval widths ({gw}, {lw})")
        pos += 2
        (base,) = struct.unpack_from("<q", buf, pos)
        pos += 8
        if pos + (r - 1) * gw + r * lw > len(buf):
            raise StorageError("truncated int array payload")
        return n, r, gw, lw, base, pos

    def _run_table(
        self, buf: bytes, offset: int
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """``(starts, lens, n, next_offset)`` — O(runs), no cell expansion."""
        n, r, gw, lw, base, pos = self._header(buf, offset)
        gaps = np.frombuffer(buf, dtype=_DTYPES[gw], count=r - 1, offset=pos).astype(
            np.int64
        )
        pos += (r - 1) * gw
        lens = np.frombuffer(buf, dtype=_DTYPES[lw], count=r, offset=pos).astype(
            np.int64
        )
        pos += r * lw
        lens = lens + 1
        if int(lens.sum()) != n:
            raise StorageError("interval run lengths do not sum to the cell count")
        starts = np.empty(r, dtype=np.int64)
        starts[0] = base
        if r > 1:
            np.cumsum(lens[:-1] - 1 + gaps, out=starts[1:])
            starts[1:] += base
        return starts, lens, n, pos

    def decode(self, buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        # Expansion via one cumulative sum: stride 1 inside a run, a jump of
        # ``gap`` where the next run begins.  (A repeat+arange expansion is
        # ~1.5x slower on the small per-entry sets the stores decode.)
        n, r, gw, lw, base, pos = self._header(buf, offset)
        if r == 1:
            end = pos + lw
            if int.from_bytes(buf[pos:end], "little") + 1 != n:
                raise StorageError("interval run lengths do not sum to the cell count")
            return np.arange(base, base + n, dtype=np.int64), end
        gaps = np.frombuffer(buf, dtype=_DTYPES[gw], count=r - 1, offset=pos)
        pos += (r - 1) * gw
        lens_minus_1 = np.frombuffer(buf, dtype=_DTYPES[lw], count=r, offset=pos)
        pos += r * lw
        # positions where run j+1 starts: cumsum(len_0..len_j) with len=lm1+1
        boundaries = lens_minus_1[:-1].cumsum(dtype=np.int64)
        boundaries += np.arange(1, r, dtype=np.int64)
        if int(boundaries[-1]) + int(lens_minus_1[-1]) + 1 != n:
            raise StorageError("interval run lengths do not sum to the cell count")
        step = np.ones(n, dtype=np.int64)
        step[0] = base
        step[boundaries] = gaps  # assignment casts the narrow view in place
        return step.cumsum(), pos

    def skip(self, buf: bytes, offset: int = 0) -> int:
        _, r, gw, lw, _, pos = self._header(buf, offset)
        return pos + (r - 1) * gw + r * lw

    def bounds(self, buf: bytes, offset: int = 0) -> tuple[int, int, int]:
        starts, lens, n, _ = self._run_table(buf, offset)
        return int(starts[0]), int(starts[-1] + lens[-1] - 1), n

    def contains_any(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> bool:
        return self._run_mask(buf, offset, _as_int64(sorted_query)).any()

    def intersect(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> np.ndarray:
        sorted_query = _as_int64(sorted_query)
        return sorted_query[self._run_mask(buf, offset, sorted_query)]

    def _run_mask(self, buf: bytes, offset: int, query: np.ndarray) -> np.ndarray:
        if query.size == 0:
            return np.zeros(0, dtype=bool)
        n, r, gw, lw, base, pos = self._header(buf, offset)
        if int(query[-1]) < base:  # header-only reject, no payload read
            return np.zeros(query.size, dtype=bool)
        if r == 1:
            hi = base + int.from_bytes(buf[pos: pos + lw], "little")
            return (query >= base) & (query <= hi)
        gaps = np.frombuffer(buf, dtype=_DTYPES[gw], count=r - 1, offset=pos)
        # one up-front cast: int64 arithmetic against a <u8 view would
        # otherwise promote to float64 (binary ops) or refuse to cast
        # (in-place ops)
        lens_minus_1 = np.frombuffer(
            buf, dtype=_DTYPES[lw], count=r, offset=pos + (r - 1) * gw
        ).astype(np.int64)
        # start_{j+1} = start_j + (len_j - 1) + gap_j
        starts = np.empty(r, dtype=np.int64)
        starts[0] = base
        increments = gaps.astype(np.int64)
        increments += lens_minus_1[:-1]
        starts[1:] = increments.cumsum()
        starts[1:] += base
        ends = starts + lens_minus_1
        run = np.searchsorted(starts, query, side="right") - 1
        mask = run >= 0
        mask[mask] = query[mask] <= ends[run[mask]]
        return mask


class BitmapCodec(Codec):
    """One presence bit per position across the value's span.

    Eligible for strictly-increasing sets of at least two cells whose span
    stays under :data:`_BITMAP_MAX_SPAN`.  The payload is ``m`` mask bytes
    (LSB-first: bit ``j`` of byte ``i`` marks ``base + 8i + j``), so the
    footprint is span-proportional and *raggedness-proof*: a 50%-dense
    random mask costs one bit per position where the interval codec pays a
    whole ``(gap, len)`` pair per fragment and delta pays a byte per cell.
    Membership probes never expand cells — they gather mask bytes for the
    query window and test bits.
    """

    tag = TAG_BITMAP
    name = "bitmap"

    @staticmethod
    def _span_of(arr: np.ndarray, is_sorted: bool, d: np.ndarray | None = None) -> int | None:
        """The value's inclusive span, or None when ineligible.

        Like the interval codec, eligibility needs a comparison-based
        sortedness check (wrapped diffs of extreme pairs can fake a ``+1``
        step) plus strictly-positive diffs; the span itself is computed in
        Python ints so an extreme pair cannot overflow int64.
        """
        if arr.size < 2 or not is_sorted:
            return None
        if d is None:
            d = np.diff(arr)
        if (d < 1).any():  # duplicates or int64-overflow wrap
            return None
        span = int(arr[-1]) - int(arr[0]) + 1
        if span > _BITMAP_MAX_SPAN:
            return None
        return span

    @staticmethod
    def _planned_size(n: int, span: int) -> int:
        m = (span + 7) // 8
        return 1 + uvarint_len(n) + uvarint_len(m) + 8 + m

    def _encode_planned(self, arr: np.ndarray, plan: int) -> bytes:
        span = plan
        base = int(arr[0])
        bits = np.zeros(span, dtype=bool)
        bits[arr - base] = True
        mask = np.packbits(bits, bitorder="little")
        header = bytearray([self.tag])
        header += encode_uvarint(arr.size)
        header += encode_uvarint(mask.size)
        header += struct.pack("<q", base)
        return bytes(header) + mask.tobytes()

    def nbytes(self, arr: np.ndarray) -> int | None:
        arr = _as_int64(arr)
        span = self._span_of(arr, _is_sorted(arr))
        return None if span is None else self._planned_size(arr.size, span)

    def encode(self, arr: np.ndarray) -> bytes:
        arr = _as_int64(arr)
        span = self._span_of(arr, _is_sorted(arr))
        if span is None:
            raise StorageError(
                "bitmap codec requires a strictly-increasing set within "
                f"a {_BITMAP_MAX_SPAN}-position span"
            )
        return self._encode_planned(arr, span)

    def _header(self, buf: bytes, offset: int) -> tuple[int, int, int, int]:
        """``(n, m, base, payload_pos)``."""
        self._check_tag(buf, offset)
        n, pos = decode_uvarint(buf, offset + 1)
        m, pos = decode_uvarint(buf, pos)
        if n < 2 or m < 1 or n > 8 * m:
            raise StorageError(f"bad bitmap cell count {n} for {m} mask bytes")
        if pos + 8 + m > len(buf):
            raise StorageError("truncated int array payload")
        (base,) = struct.unpack_from("<q", buf, pos)
        return n, m, base, pos + 8

    def _mask(self, buf: bytes, offset: int) -> tuple[int, int, int, np.ndarray]:
        n, m, base, pos = self._header(buf, offset)
        return n, base, pos, np.frombuffer(buf, dtype=np.uint8, count=m, offset=pos)

    def decode(self, buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        n, base, pos, mask = self._mask(buf, offset)
        rel = np.flatnonzero(np.unpackbits(mask, bitorder="little"))
        if rel.size != n:
            raise StorageError("bitmap popcount does not match the cell count")
        return base + rel.astype(np.int64), pos + mask.size

    def skip(self, buf: bytes, offset: int = 0) -> int:
        _, m, _, pos = self._header(buf, offset)
        return pos + m

    def bounds(self, buf: bytes, offset: int = 0) -> tuple[int, int, int]:
        n, base, _, mask = self._mask(buf, offset)
        nz = np.flatnonzero(mask)
        if nz.size == 0:
            raise StorageError("bitmap popcount does not match the cell count")
        lo_byte = int(mask[nz[0]])
        hi_byte = int(mask[nz[-1]])
        lo = base + 8 * int(nz[0]) + ((lo_byte & -lo_byte).bit_length() - 1)
        hi = base + 8 * int(nz[-1]) + (hi_byte.bit_length() - 1)
        return lo, hi, n

    def contains_any(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> bool:
        return self._query_mask(buf, offset, _as_int64(sorted_query))[1].any()

    def intersect(self, buf: bytes, offset: int, sorted_query: np.ndarray) -> np.ndarray:
        sorted_query = _as_int64(sorted_query)
        window, present = self._query_mask(buf, offset, sorted_query)
        return sorted_query[window.start + np.flatnonzero(present)]

    def _query_mask(
        self, buf: bytes, offset: int, query: np.ndarray
    ) -> tuple[slice, np.ndarray]:
        """``(window, present)``: the query slice overlapping the mask's
        addressable range and a per-position hit mask — pure byte masking,
        no cell expansion."""
        _, m, base, pos = self._header(buf, offset)
        lo = np.searchsorted(query, base, side="left")
        # the trailing pad bits of the last mask byte may address past
        # int64; clamping is exact because no stored cell can exceed it
        cap = min(base + 8 * m - 1, 2**63 - 1)
        hi = np.searchsorted(query, cap, side="right")
        window = slice(int(lo), int(hi))
        rel = query[window] - base
        if rel.size == 0:
            return window, np.zeros(0, dtype=bool)
        mask = np.frombuffer(buf, dtype=np.uint8, count=m, offset=pos)
        present = (mask[rel >> 3] >> (rel & 7)) & 1
        return window, present.astype(bool)


DELTA = DeltaCodec()
RAW = RawCodec()
INTERVAL = IntervalCodec()
BITMAP = BitmapCodec()

#: selection order — ties go to the earliest codec, so singletons and other
#: size-ties keep the historical delta layout
_PRIORITY: tuple[Codec, ...] = (DELTA, INTERVAL, BITMAP, RAW)
_BY_TAG: dict[int, Codec] = {c.tag: c for c in _PRIORITY}


def codec_for_tag(tag: int) -> Codec:
    codec = _BY_TAG.get(tag)
    if codec is None:
        raise StorageError(f"bad int-array codec tag 0x{tag:02x}")
    return codec


def _codec_at(buf: bytes, offset: int) -> Codec:
    if offset >= len(buf):
        raise StorageError("truncated cell-set value")
    return codec_for_tag(buf[offset])


def _select(arr: np.ndarray) -> tuple[Codec, object, int]:
    """``(codec, plan, size)``: the smallest eligible codec for ``arr`` with
    its reusable encoding plan, analysing the array once.

    Delta wins ties, and values of one cell or fewer always use delta so the
    12-byte singleton layout that
    :func:`repro.core.lineage_store.encode_singleton_int_arrays` emits in
    bulk stays byte-identical.
    """
    n = arr.size
    if n == 0:
        return DELTA, None, 3
    is_sorted = _is_sorted(arr)
    d = np.diff(arr) if (is_sorted and n > 1) else None  # shared diff pass
    delta_plan = DELTA._residuals(arr, is_sorted, d)
    if n == 1:
        return DELTA, delta_plan, DELTA._planned_size(n, delta_plan)
    best: tuple[Codec, object, int] | None = None
    if delta_plan is not None:
        best = (DELTA, delta_plan, DELTA._planned_size(n, delta_plan))
    interval_plan = INTERVAL._runs_of(arr, is_sorted, d)
    if interval_plan is not None:
        size = INTERVAL._planned_size(n, interval_plan)
        if best is None or size < best[2]:
            best = (INTERVAL, interval_plan, size)
    span = BITMAP._span_of(arr, is_sorted, d)
    if span is not None:
        size = BITMAP._planned_size(n, span)
        if best is None or size < best[2]:
            best = (BITMAP, span, size)
    raw_size = RAW._planned_size(n)
    if best is None or raw_size < best[2]:
        best = (RAW, is_sorted, raw_size)  # always eligible
    return best


def encode_cells(arr: np.ndarray) -> bytes:
    """Serialize an int64 cell set with the smallest eligible codec."""
    arr = _as_int64(arr)
    codec, plan, _ = _select(arr)
    return codec._encode_planned(arr, plan)


def cells_nbytes(arr: np.ndarray) -> int:
    """Exact serialized size of :func:`encode_cells` without materialising it."""
    return _select(_as_int64(arr))[2]


# -- batched encoding (the deferred-capture write path) -------------------------

_INT64_MAX = np.iinfo(np.int64).max
# per-set winner codes inside encode_sorted_sets; fallback = interval/bitmap
_SEL_NONE, _SEL_DELTA, _SEL_RAW, _SEL_FALLBACK = 0, 1, 2, 3


def _uvarint_len_arr(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`uvarint_len` for non-negative int64 values."""
    v = values.astype(np.uint64, copy=True)
    lens = np.ones(v.shape, dtype=np.int64)
    v >>= np.uint64(7)
    while (v > 0).any():
        lens += v > 0
        v >>= np.uint64(7)
    return lens


def _width_arr(maxima: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_width_for` for non-negative int64 maxima."""
    return np.select(
        [maxima < (1 << 8), maxima < (1 << 16), maxima < (1 << 32)],
        [1, 2, 4],
        default=8,
    ).astype(np.int64)


def _scatter_uvarint(out: np.ndarray, pos: np.ndarray, values: np.ndarray) -> None:
    """Write ``uvarint(values[i])`` into ``out`` starting at ``pos[i]``."""
    pos = pos.astype(np.int64, copy=True)
    v = values.astype(np.uint64, copy=True)
    idx = np.arange(v.size)
    while idx.size:
        cur = v[idx]
        more = cur > np.uint64(0x7F)
        byte = (cur & np.uint64(0x7F)).astype(np.uint8)
        byte[more] |= np.uint8(0x80)
        out[pos[idx]] = byte
        idx = idx[more]
        if idx.size:
            pos[idx] += 1
            v[idx] >>= np.uint64(7)


def _scatter_fixed(
    out: np.ndarray, pos: np.ndarray, values: np.ndarray, dtype: str, width: int
) -> None:
    """Write each ``values[i]`` as ``width`` little-endian bytes at ``pos[i]``."""
    if values.size == 0:
        return
    narrow = np.ascontiguousarray(values.astype(dtype, copy=False))
    if width == 1:
        out[pos] = narrow.view(np.uint8)
        return
    out[pos[:, None] + np.arange(width)] = narrow.view(np.uint8).reshape(-1, width)


def encode_sorted_sets(
    values: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`encode_cells` over many pre-sorted sets at once.

    ``values`` concatenates ``len(offsets) - 1`` int64 segments, each sorted
    ascending; segment ``i`` spans ``values[offsets[i]:offsets[i+1]]``.
    Returns ``(buf, lengths)`` where ``buf`` (uint8) holds the back-to-back
    encodings and ``lengths[i]`` the byte size of set ``i`` — byte-identical
    to calling :func:`encode_cells` on every segment, but with selection,
    sizing, and the dominant delta/raw emission running as whole-batch NumPy
    passes.  Sets whose smallest codec is interval or bitmap (rare in
    captured lineage, which skews scattered) fall back to the per-set
    encoder; everything else never touches Python per set.
    """
    values = np.ascontiguousarray(values, dtype=np.int64).ravel()
    offsets = np.asarray(offsets, dtype=np.int64).ravel()
    n_sets = offsets.size - 1
    if n_sets <= 0:
        return np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.int64)
    n = np.diff(offsets)
    if (n < 0).any() or int(offsets[0]) != 0 or int(offsets[-1]) != values.size:
        raise StorageError("encode_sorted_sets offsets do not tile the value array")
    total_values = values.size

    lengths = np.empty(n_sets, dtype=np.int64)
    lengths[n == 0] = 3  # tag, flags, uvarint(0)
    lengths[n == 1] = 12  # the bulk singleton layout

    big = np.flatnonzero(n >= 2)
    selection = np.empty(0, dtype=np.int64)
    dv = np.empty(0, dtype=np.int64)
    dv_starts = np.empty(0, dtype=np.int64)
    uvl_n = np.empty(0, dtype=np.int64)
    dw = np.empty(0, dtype=np.int64)
    firsts = np.empty(0, dtype=np.int64)
    if big.size:
        # one global diff pass; diffs that straddle a set boundary are masked
        # out, leaving dv = the concatenation of every set's internal diffs
        d = values[1:] - values[:-1]
        valid = np.ones(max(total_values - 1, 0), dtype=bool)
        interior = offsets[1:-1]
        interior = interior[(interior > 0) & (interior < total_values)]
        valid[interior - 1] = False
        dv = d[valid]
        dcounts = np.maximum(n - 1, 0)
        dv_starts_all = np.zeros(n_sets, dtype=np.int64)
        np.cumsum(dcounts[:-1], out=dv_starts_all[1:])
        dv_starts = dv_starts_all[big]
        dmin = np.minimum.reduceat(dv, dv_starts)
        dmax = np.maximum.reduceat(dv, dv_starts)

        nb = n[big]
        firsts = values[offsets[:-1][big]]
        lasts = values[offsets[1:][big] - 1]
        uvl_n = _uvarint_len_arr(nb)

        # delta: sorted residuals are the diffs themselves
        delta_ok = dmin >= 0  # a wrapped (overflowing) diff shows as negative
        dw = _width_arr(np.maximum(dmax, 0))
        delta_size = 2 + uvl_n + 1 + 8 + (nb - 1) * dw

        # interval: maximal +1-stride runs, from one flag pass over values
        strict = dmin >= 1
        rs = np.zeros(total_values, dtype=bool)
        rs[offsets[:-1][n > 0]] = True  # each non-empty set opens a run
        rs1 = rs[1:]
        rs1[valid] |= dv != 1  # a non-unit diff opens a run
        run_starts_idx = np.flatnonzero(rs)
        run_lens = np.diff(np.append(run_starts_idx, total_values))
        owner = np.searchsorted(offsets, run_starts_idx, side="right") - 1
        rcnt = np.bincount(owner, minlength=n_sets)
        rfirst = np.zeros(n_sets, dtype=np.int64)
        np.cumsum(rcnt[:-1], out=rfirst[1:])
        r_big = rcnt[big]
        # reduceat over every set owning runs (singletons too) so a big
        # set's segment cannot absorb a later small set's runs
        has_runs = np.flatnonzero(rcnt > 0)
        maxlen_by_set = np.zeros(n_sets, dtype=np.int64)
        maxlen_by_set[has_runs] = np.maximum.reduceat(run_lens, rfirst[has_runs])
        maxlen = maxlen_by_set[big]
        lw = _width_arr(np.maximum(maxlen - 1, 0))
        gapmax = np.maximum.reduceat(np.where(dv > 1, dv, 0), dv_starts)
        gw = _width_arr(gapmax)
        interval_size = (
            1 + uvl_n + _uvarint_len_arr(r_big) + 2 + 8 + (r_big - 1) * gw + r_big * lw
        )

        # bitmap: span in int64 — a wrap past int64 shows as span < 1
        span = lasts - firsts + 1
        bitmap_ok = strict & (span >= 1) & (span <= _BITMAP_MAX_SPAN)
        m = (np.maximum(span, 0) + 7) // 8
        bitmap_size = 1 + uvl_n + _uvarint_len_arr(m) + 8 + m

        raw_size = 2 + uvl_n + 8 * nb

        # replicate _select: delta wins ties, then interval/bitmap/raw each
        # replace the incumbent only when strictly smaller
        best_size = np.where(delta_ok, delta_size, _INT64_MAX)
        selection = np.where(delta_ok, _SEL_DELTA, _SEL_NONE)
        take = strict & (interval_size < best_size)
        best_size = np.where(take, interval_size, best_size)
        selection = np.where(take, _SEL_FALLBACK, selection)
        take = bitmap_ok & (bitmap_size < best_size)
        best_size = np.where(take, bitmap_size, best_size)
        selection = np.where(take, _SEL_FALLBACK, selection)
        take = raw_size < best_size
        best_size = np.where(take, raw_size, best_size)
        selection = np.where(take, _SEL_RAW, selection)
        lengths[big] = best_size

    out_offsets = np.zeros(n_sets + 1, dtype=np.int64)
    np.cumsum(lengths, out=out_offsets[1:])
    out = np.zeros(int(out_offsets[-1]), dtype=np.uint8)
    p0 = out_offsets[:-1]

    # empty sets: tag byte only, flags/uvarint(0) stay zero
    out[p0[n == 0]] = TAG_DELTA

    ones = np.flatnonzero(n == 1)
    if ones.size:
        p = p0[ones]
        out[p] = TAG_DELTA
        out[p + 1] = _FLAG_SORTED
        out[p + 2] = 1  # uvarint(1)
        out[p + 3] = 1  # residual width
        _scatter_fixed(out, p + 4, values[offsets[:-1][ones]], "<i8", 8)

    if big.size:
        grp = selection == _SEL_DELTA
        if grp.any():
            p = p0[big][grp]
            nb_g = n[big][grp]
            out[p] = TAG_DELTA
            out[p + 1] = _FLAG_SORTED
            _scatter_uvarint(out, p + 2, nb_g)
            hp = p + 2 + uvl_n[grp]
            out[hp] = dw[grp].astype(np.uint8)
            _scatter_fixed(out, hp + 1, firsts[grp], "<i8", 8)
            payload = hp + 9
            res_starts = dv_starts[grp]
            widths = dw[grp]
            for width in _WIDTHS:
                ws = np.flatnonzero(widths == width)
                if not ws.size:
                    continue
                counts = nb_g[ws] - 1
                src = expand_ranges(res_starts[ws], counts)
                within = src - np.repeat(res_starts[ws], counts)
                tgt = np.repeat(payload[ws], counts) + within * width
                _scatter_fixed(out, tgt, dv[src], _DTYPES[width], width)

        grp = selection == _SEL_RAW
        if grp.any():
            p = p0[big][grp]
            nb_g = n[big][grp]
            out[p] = TAG_RAW
            out[p + 1] = _FLAG_SORTED
            _scatter_uvarint(out, p + 2, nb_g)
            payload = p + 2 + uvl_n[grp]
            starts = offsets[:-1][big][grp]
            src = expand_ranges(starts, nb_g)
            within = src - np.repeat(starts, nb_g)
            tgt = np.repeat(payload, nb_g) + within * 8
            _scatter_fixed(out, tgt, values[src], "<i8", 8)

        for j in np.flatnonzero(selection == _SEL_FALLBACK):
            s = int(big[j])
            enc = encode_cells(values[int(offsets[s]) : int(offsets[s + 1])])
            if len(enc) != int(lengths[s]):
                raise StorageError("batched codec sizing disagrees with encode_cells")
            start = int(p0[s])
            out[start : start + len(enc)] = np.frombuffer(enc, dtype=np.uint8)

    return out, lengths


def decode_cells(buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_cells`; returns ``(array, next_offset)``."""
    return _codec_at(buf, offset).decode(buf, offset)


def skip_cells(buf: bytes, offset: int = 0) -> int:
    """Offset just past the value at ``offset``, reading only its header."""
    return _codec_at(buf, offset).skip(buf, offset)


def skip_fields(buf: bytes, offset: int, end: int, field: int) -> int:
    """Offset of cell-set ``field`` within a multi-field value.

    A value spanning ``buf[offset:end)`` may hold one encoded cell set per
    input array back to back; this walks past the first ``field`` of them
    (headers only) and raises when the value holds no such field.
    """
    for _ in range(field):
        if offset >= end:
            raise StorageError(f"value has no cell-set field {field}")
        offset = skip_cells(buf, offset)
    if offset >= end:
        raise StorageError(f"value has no cell-set field {field}")
    return offset


def decoded_bounds(buf: bytes, offset: int = 0) -> tuple[int, int, int]:
    """``(lo, hi, count)`` of the encoded set; ``(0, -1, 0)`` when empty."""
    return _codec_at(buf, offset).bounds(buf, offset)


def contains_any(buf: bytes, sorted_query: np.ndarray, offset: int = 0) -> bool:
    """Decode-free membership: does the encoded set hit ``sorted_query``?"""
    return _codec_at(buf, offset).contains_any(buf, offset, sorted_query)


def intersect(buf: bytes, sorted_query: np.ndarray, offset: int = 0) -> np.ndarray:
    """The values of ``sorted_query`` present in the encoded set."""
    return _codec_at(buf, offset).intersect(buf, offset, sorted_query)


# -- batch scan engine -----------------------------------------------------------


class _LoweredHeap:
    """Flat per-tag tables lowered from a value heap (see BatchProbe)."""

    __slots__ = (
        "run_starts", "run_ends", "run_eid",
        "cell_values", "cell_eid",
        "bm_eid", "bm_base", "bm_cap", "bm_pos", "bm_len",
    )


class BatchProbe:
    """Vectorised per-entry probes over a heap of concatenated codec values.

    Takes a whole value heap — e.g. a ``RegionEntryTable``'s concatenated
    ``_vbuf`` — plus one value offset per entry, and answers
    :meth:`contains_any` / :meth:`intersect` for *every* entry in a constant
    number of NumPy passes per codec tag, instead of one Python-level probe
    call per entry:

    * **interval** values lower to one flat ``(start, end, entry)`` run
      table; the whole group is answered with two ``searchsorted`` calls
      against the sorted query, and only intersecting runs are ever
      materialised;
    * **delta** and **raw** values decode once into a single concatenated
      ``(value, entry)`` table answered with one ``searchsorted`` pass;
    * **bitmap** values stay encoded; a vectorised bounds pass rejects
      non-overlapping masks and only overlapping ones byte-mask their query
      window.

    Lowering happens lazily on first probe and is cached, so repeated scans
    over the same heap pay the per-entry header walk exactly once.  Answers
    are defined to match the per-entry probes bit for bit:
    ``contains_any(q)[e] == contains_any(buf, q, offsets[e])`` and each
    intersection equals ``intersect(buf, q, offsets[e])``.
    """

    def __init__(
        self,
        buf: bytes,
        offsets: np.ndarray,
        ends: np.ndarray | None = None,
    ):
        self._buf = buf
        self._offsets = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
        if ends is None:
            ends = np.full(self._offsets.shape, len(buf), dtype=np.int64)
        self._ends = np.ascontiguousarray(np.asarray(ends, dtype=np.int64))
        if self._ends.shape != self._offsets.shape:
            raise StorageError("batch probe offsets and ends must align")
        self.n_entries = int(self._offsets.size)
        self._lowered: _LoweredHeap | None = None
        # one thread lowers, everyone else waits and reuses the tables —
        # concurrent serving threads must not race the (expensive) cache fill
        self._lower_lock = lockcheck.make_lock("batchprobe.lower")

    # -- lowering ----------------------------------------------------------

    def _lower(self, ticker=None) -> _LoweredHeap:
        """One header walk over the heap, grouping entries by tag byte.

        The tag bytes are gathered in one vectorised pass, and ``ticker``
        is called once per *codec-tag batch* (at most once per tag), not
        once per entry: the cold lowering is an investment whose tables are
        cached for every later scan, so a query-time budget may only
        interrupt it at batch boundaries instead of aborting — and thereby
        discarding — a nearly-finished walk.
        """
        if self._lowered is not None:
            return self._lowered
        with self._lower_lock:
            return self._lower_locked(ticker)

    def _lower_locked(self, ticker=None) -> "_LoweredHeap":
        if self._lowered is not None:  # another thread finished the walk
            return self._lowered
        buf = self._buf
        run_s: list[np.ndarray] = []
        run_e: list[np.ndarray] = []
        run_id: list[np.ndarray] = []
        cell_v: list[np.ndarray] = []
        cell_id: list[np.ndarray] = []
        bm: list[tuple[int, int, int, int, int]] = []
        if self.n_entries:
            short = self._offsets >= self._ends
            if short.any():
                raise StorageError(
                    f"entry {int(np.argmax(short))} has no cell-set value"
                )
            src = np.frombuffer(buf, dtype=np.uint8)
            if int(self._offsets.max()) >= src.size:
                raise StorageError("batch probe offsets overrun the heap")
            tags = src[self._offsets]
            for tag in np.unique(tags):
                codec = codec_for_tag(int(tag))  # raises on unknown tags
                if ticker is not None:
                    ticker()
                # entry ids ascend within each tag group, so the interval
                # run table stays in (entry, run) order
                for e in np.flatnonzero(tags == tag):
                    e = int(e)
                    offset = int(self._offsets[e])
                    end = int(self._ends[e])
                    if codec.skip(buf, offset) > end:
                        raise StorageError(f"entry {e} value overruns its heap slot")
                    if codec.tag == TAG_INTERVAL:
                        starts, lens, _, _ = INTERVAL._run_table(buf, offset)
                        run_s.append(starts)
                        run_e.append(starts + lens - 1)
                        run_id.append(np.full(starts.size, e, dtype=np.int64))
                    elif codec.tag == TAG_BITMAP:
                        _, m, base, pos = BITMAP._header(buf, offset)
                        # clamp like _query_mask: pad bits may address past int64
                        cap = min(base + 8 * m - 1, 2**63 - 1)
                        bm.append((e, base, cap, pos, m))
                    else:  # delta / raw: expanded once into the concatenated table
                        values, _ = codec.decode(buf, offset)
                        if values.size:
                            cell_v.append(values)
                            cell_id.append(np.full(values.size, e, dtype=np.int64))
        lowered = _LoweredHeap()
        lowered.run_starts = _concat_i64(run_s)
        lowered.run_ends = _concat_i64(run_e)
        lowered.run_eid = _concat_i64(run_id)
        lowered.cell_values = _concat_i64(cell_v)
        lowered.cell_eid = _concat_i64(cell_id)
        cols = np.asarray(bm, dtype=np.int64).reshape(-1, 5).T
        lowered.bm_eid, lowered.bm_base, lowered.bm_cap, lowered.bm_pos, lowered.bm_len = cols
        self._lowered = lowered
        return lowered

    # -- lowered-table persistence ------------------------------------------

    #: flat int64 tables of a lowered heap, in persistence order; ``bm``
    #: additionally packs the bitmap descriptor columns as one (5, k) matrix
    LOWERED_NAMES = ("run_starts", "run_ends", "run_eid", "cell_values", "cell_eid", "bm")

    def lowered_tables(self, ticker=None) -> dict[str, np.ndarray]:
        """The lowered tables as flat int64 arrays, for persistence.

        ``bm`` is the ``(5, k)`` bitmap descriptor matrix ``(entry, base,
        cap, pos, len)``; positions index into the same heap buffer the
        probe was built over, so the tables round-trip alongside the heap.
        """
        t = self._lower(ticker)
        out = {
            name: getattr(t, name)
            for name in ("run_starts", "run_ends", "run_eid", "cell_values", "cell_eid")
        }
        out["bm"] = np.stack([t.bm_eid, t.bm_base, t.bm_cap, t.bm_pos, t.bm_len])
        return out

    @classmethod
    def from_lowered(cls, buf, n_entries: int, tables) -> "BatchProbe":
        """Reconstruct a probe from persisted lowered tables over ``buf``.

        The inverse of :meth:`lowered_tables`: no header walk and no decode
        happen — the probe is warm immediately, which is how a segment-backed
        store serves its first mismatched scan at cached-table speed.
        """
        probe = cls(buf, np.empty(0, dtype=np.int64))
        probe.n_entries = int(n_entries)
        t = _LoweredHeap()
        for name in ("run_starts", "run_ends", "run_eid", "cell_values", "cell_eid"):
            t_arr = np.asarray(tables[name], dtype=np.int64)
            setattr(t, name, t_arr)
        bm = np.asarray(tables["bm"], dtype=np.int64).reshape(5, -1)
        t.bm_eid, t.bm_base, t.bm_cap, t.bm_pos, t.bm_len = bm
        probe._lowered = t
        return probe

    def _bitmap_window(self, t: _LoweredHeap, query: np.ndarray):
        """Per-bitmap-entry query windows ``(lo, hi)`` after the vectorised
        bounds rejection (two searchsorted calls over all masks)."""
        lo = np.searchsorted(query, t.bm_base, side="left")
        hi = np.searchsorted(query, t.bm_cap, side="right")
        return lo, hi

    def _bitmap_hits(self, t: _LoweredHeap, j: int, query_window: np.ndarray) -> np.ndarray:
        """Boolean hit mask of one bitmap entry over its query window."""
        rel = query_window - int(t.bm_base[j])
        mask = np.frombuffer(
            self._buf, dtype=np.uint8, count=int(t.bm_len[j]), offset=int(t.bm_pos[j])
        )
        return ((mask[rel >> 3] >> (rel & 7)) & 1).astype(bool)

    # -- probes ------------------------------------------------------------

    def contains_any(self, sorted_query: np.ndarray, ticker=None) -> np.ndarray:
        """Per-entry verdicts: does the entry's set hit ``sorted_query``?"""
        query = _as_int64(sorted_query)
        verdict = np.zeros(self.n_entries, dtype=bool)
        if query.size == 0 or self.n_entries == 0:
            return verdict
        t = self._lower(ticker)
        if t.run_starts.size:
            lo = np.searchsorted(query, t.run_starts, side="left")
            hi = np.searchsorted(query, t.run_ends, side="right")
            verdict[t.run_eid[hi > lo]] = True
        if t.cell_values.size:
            pos = np.searchsorted(query, t.cell_values)
            inb = pos < query.size
            hit = np.zeros(t.cell_values.size, dtype=bool)
            hit[inb] = query[pos[inb]] == t.cell_values[inb]
            verdict[t.cell_eid[hit]] = True
        if t.bm_eid.size:
            lo, hi = self._bitmap_window(t, query)
            for j in np.flatnonzero((hi > lo) & ~verdict[t.bm_eid]):
                if self._bitmap_hits(t, int(j), query[lo[j]: hi[j]]).any():
                    verdict[t.bm_eid[j]] = True
        return verdict

    def intersect(
        self, sorted_query: np.ndarray, ticker=None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """``(hit_entry_ids, intersections)`` over the whole heap.

        ``hit_entry_ids`` is ascending; ``intersections[i]`` is exactly what
        the per-entry probe would return for that entry (the subset of
        ``sorted_query`` present, duplicates preserved).  Entries with empty
        intersections are omitted, so nothing non-intersecting is ever
        materialised.
        """
        query = _as_int64(sorted_query)
        results: dict[int, np.ndarray] = {}
        if query.size == 0 or self.n_entries == 0:
            return np.empty(0, dtype=np.int64), []
        t = self._lower(ticker)
        if t.run_starts.size:
            lo = np.searchsorted(query, t.run_starts, side="left")
            hi = np.searchsorted(query, t.run_ends, side="right")
            hit = hi > lo
            if hit.any():
                # runs were lowered in (entry, run) order, so the gathered
                # values arrive grouped by entry and ascending within it
                self._split_into(results, t.run_eid[hit], lo[hit], hi[hit], query)
        if t.cell_values.size:
            pos_l = np.searchsorted(query, t.cell_values, side="left")
            pos_r = np.searchsorted(query, t.cell_values, side="right")
            hit = pos_r > pos_l
            if hit.any():
                eid, lo, hi = t.cell_eid[hit], pos_l[hit], pos_r[hit]
                # delta values may be unsorted and duplicated within an
                # entry: order by (entry, query position) and keep each
                # matched query position once per entry
                order = np.lexsort((lo, eid))
                eid, lo, hi = eid[order], lo[order], hi[order]
                keep = np.ones(eid.size, dtype=bool)
                keep[1:] = (eid[1:] != eid[:-1]) | (lo[1:] != lo[:-1])
                self._split_into(results, eid[keep], lo[keep], hi[keep], query)
        if t.bm_eid.size:
            lo, hi = self._bitmap_window(t, query)
            for j in np.flatnonzero(hi > lo):
                window = query[lo[j]: hi[j]]
                vals = window[self._bitmap_hits(t, int(j), window)]
                if vals.size:
                    results[int(t.bm_eid[j])] = vals
        hit_ids = np.asarray(sorted(results), dtype=np.int64)
        return hit_ids, [results[int(e)] for e in hit_ids]

    @staticmethod
    def _split_into(
        results: dict[int, np.ndarray],
        eid: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        query: np.ndarray,
    ) -> None:
        """Materialise ``query[lo:hi)`` ranges grouped by non-decreasing
        ``eid`` into per-entry arrays (one gather, one split)."""
        counts = hi - lo
        values = query[expand_ranges(lo, counts)]
        boundaries = np.flatnonzero(np.diff(eid)) + 1
        entry_ids = eid[np.r_[0, boundaries]]
        pieces = np.split(values, np.cumsum(counts)[boundaries - 1])
        for entry, piece in zip(entry_ids, pieces):
            results[int(entry)] = piece


def _concat_i64(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
