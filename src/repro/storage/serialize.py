"""Compact binary serialization for lineage records.

The encoder (§VI-B) must persist *sets of cell coordinates* — which "can
easily be larger than the original data arrays" — so the wire format matters.
We bit-pack each coordinate into a single int64 (ravel order against the
array shape, as the paper does for small arrays) and hand integer sets to
the codec subsystem in :mod:`repro.storage.codecs`, which picks the smallest
of four tagged wire formats per value (delta/var-width, run-length
intervals, presence bitmaps, raw fixed-width) and offers decode-free
membership probes over the encoded bytes.

:func:`encode_int_array` / :func:`decode_int_array` / :func:`int_array_nbytes`
are kept as the historical entry points; they now dispatch on the per-value
codec tag byte.  The legacy delta format's magic byte ``0x49`` doubles as
that codec's tag, so values written before the codec subsystem existed
decode unchanged.  Inputs whose span exceeds the int64 range — which used to
make the delta residuals wrap negative and raise mid-workflow — now fall
back to the raw codec instead of failing.

File-level persistence does not use this module's framing: whole stores
flush into the checksummed, mmap-able segment container of
:mod:`repro.storage.segment` (codec-tagged values ride inside its byte
sections verbatim — see ``docs/storage_format.md``).  The length-prefixed
helpers here remain for in-value framing and the legacy pre-segment
loaders.

Everything is vectorised with numpy; nothing here loops over cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.storage.codecs import (
    cells_nbytes,
    decode_cells,
    decode_uvarint,
    encode_cells,
    encode_uvarint,
)

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_bytes",
    "decode_bytes",
    "encode_int_array",
    "decode_int_array",
    "int_array_nbytes",
]


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string."""
    return encode_uvarint(len(data)) + data


def decode_bytes(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    length, pos = decode_uvarint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise StorageError("truncated byte string")
    return bytes(buf[pos:end]), end


def encode_int_array(arr: np.ndarray) -> bytes:
    """Serialize an int64 array with the smallest eligible codec."""
    return encode_cells(arr)


def decode_int_array(buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_int_array`; returns ``(array, next_offset)``."""
    return decode_cells(buf, offset)


def int_array_nbytes(arr: np.ndarray) -> int:
    """Serialized size without materialising the bytes (used by cost model)."""
    return cells_nbytes(arr)
