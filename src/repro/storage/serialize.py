"""Compact binary serialization for lineage records.

The encoder (§VI-B) must persist *sets of cell coordinates* — which "can
easily be larger than the original data arrays" — so the wire format matters.
We bit-pack each coordinate into a single int64 (ravel order against the
array shape, as the paper does for small arrays) and then store integer sets
with a delta + minimal-fixed-width scheme:

* sorted sets store the first value plus non-negative deltas;
* unsorted sequences store offsets from their minimum;
* either way the residuals are written with the narrowest of 1/2/4/8 bytes.

Everything is vectorised with numpy; nothing here loops over cells.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import StorageError

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_bytes",
    "decode_bytes",
    "encode_int_array",
    "decode_int_array",
    "int_array_nbytes",
]

_WIDTHS = (1, 2, 4, 8)
_DTYPES = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}
_MAGIC = 0x49  # ord('I')
_FLAG_SORTED = 0x01


def encode_uvarint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise StorageError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Return ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise StorageError("truncated uvarint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise StorageError("uvarint overflow")


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string."""
    return encode_uvarint(len(data)) + data


def decode_bytes(buf: bytes, offset: int = 0) -> tuple[bytes, int]:
    length, pos = decode_uvarint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise StorageError("truncated byte string")
    return bytes(buf[pos:end]), end


def _width_for(max_value: int) -> int:
    for width in _WIDTHS:
        if max_value < (1 << (8 * width)):
            return width
    raise StorageError(f"residual {max_value} does not fit in 8 bytes")


def encode_int_array(arr: np.ndarray) -> bytes:
    """Serialize an int64 array; sorted inputs compress via delta coding."""
    arr = np.asarray(arr, dtype=np.int64).ravel()
    n = arr.size
    header = bytearray([_MAGIC])
    if n == 0:
        header.append(0)  # flags
        header += encode_uvarint(0)
        return bytes(header)
    is_sorted = bool(n == 1 or (arr[1:] >= arr[:-1]).all())
    if is_sorted:
        base = int(arr[0])
        residuals = np.diff(arr)
        flags = _FLAG_SORTED
    else:
        base = int(arr.min())
        residuals = arr - base
        flags = 0
    max_residual = int(residuals.max()) if residuals.size else 0
    if max_residual < 0:
        raise StorageError("negative residual in delta encoding")
    width = _width_for(max_residual)
    header.append(flags)
    header += encode_uvarint(n)
    header.append(width)
    header += struct.pack("<q", base)
    return bytes(header) + residuals.astype(_DTYPES[width]).tobytes()


def decode_int_array(buf: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_int_array`; returns ``(array, next_offset)``."""
    if offset >= len(buf) or buf[offset] != _MAGIC:
        raise StorageError("bad int-array magic byte")
    pos = offset + 1
    flags = buf[pos]
    pos += 1
    n, pos = decode_uvarint(buf, pos)
    if n == 0:
        return np.empty(0, dtype=np.int64), pos
    width = buf[pos]
    pos += 1
    if width not in _DTYPES:
        raise StorageError(f"bad residual width {width}")
    (base,) = struct.unpack_from("<q", buf, pos)
    pos += 8
    count = n - 1 if flags & _FLAG_SORTED else n
    end = pos + count * width
    if end > len(buf):
        raise StorageError("truncated int array payload")
    residuals = np.frombuffer(buf, dtype=_DTYPES[width], count=count, offset=pos).astype(
        np.int64
    )
    if flags & _FLAG_SORTED:
        out = np.empty(n, dtype=np.int64)
        out[0] = base
        if count:
            np.cumsum(residuals, out=out[1:])
            out[1:] += base
    else:
        out = residuals + base
    return out, end


def int_array_nbytes(arr: np.ndarray) -> int:
    """Serialized size without materialising the bytes (used by cost model)."""
    arr = np.asarray(arr, dtype=np.int64).ravel()
    n = arr.size
    if n == 0:
        return 2 + 1
    is_sorted = bool(n == 1 or (arr[1:] >= arr[:-1]).all())
    residuals = np.diff(arr) if is_sorted else arr - int(arr.min())
    max_residual = int(residuals.max()) if residuals.size else 0
    width = _width_for(max_residual)
    count = n - 1 if is_sorted else n
    return 2 + len(encode_uvarint(n)) + 1 + 8 + count * width
