"""Cost model: disk, runtime-overhead, and query-cost estimates.

Feeds both optimizers (§VII): the lineage-strategy ILP consumes
``disk_bytes`` / ``write_seconds`` / ``query_seconds`` per (operator,
strategy), and the query-time optimizer compares ``query_seconds`` of the
materialised strategies against re-execution at every step.

Estimates prefer *measured* values recorded by the statistics collector
(actual store sizes, actual write times, observed query times, observed
re-execution times) and fall back to closed-form formulas over the
operator's pair statistics gathered during a profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.modes import (
    EncodingKind,
    LineageMode,
    Orientation,
    StorageStrategy,
)
from repro.core.stats import OperatorStats, StatsCollector
from repro.errors import OptimizationError

__all__ = ["CostConstants", "CostModel"]


@dataclass(frozen=True)
class CostConstants:
    """Calibration constants (seconds / bytes per primitive operation).

    Absolute values matter less than ratios; they were calibrated once on
    the development machine with the microbenchmark generator.
    """

    hash_probe_s: float = 2.0e-6  # per query cell, direct hash lookup
    rtree_probe_s: float = 2.5e-5  # per query cell, spatial index descent
    scan_entry_s: float = 1.5e-6  # per stored entry, per-entry cursor (payload scans)
    batch_entry_s: float = 4.0e-7  # per stored entry, vectorised batch-scan pass
    decode_cell_s: float = 6.0e-8  # per lineage cell materialised
    map_cell_s: float = 4.0e-7  # per cell through a mapping function
    payload_apply_s: float = 3.0e-6  # per payload group expanded via map_p
    join_cell_s: float = 1.2e-7  # per captured pair joined after re-execution
    write_cell_s: float = 2.5e-7  # per cell encoded into a store
    index_entry_s: float = 1.2e-6  # per entry inserted into the R-tree
    key_bytes: int = 8
    ref_bytes: int = 8
    enc_cell_bytes: float = 9.0  # encoded cell fallback before codec sampling
    entry_overhead_bytes: int = 14
    rtree_entry_bytes: int = 40
    default_reexec_s: float = 0.05  # before any measurement exists
    # reopen-after-evict pricing: opening a store that the 2Q cache evicted
    # (or never opened) pays one segment open — mmap + manifest parse — plus
    # a page-in term proportional to the bytes the first probes touch.  This
    # is what makes the query-time optimizer memory-budget-aware: a strategy
    # whose segment was evicted competes against re-execution honestly.
    segment_open_s: float = 3.0e-4  # per segment (re)open under the cache
    reopen_byte_s: float = 2.0e-10  # per manifest byte paged back in
    # overlay read amplification: a store split across g generations answers
    # every read by consulting all g of them — one extra index probe pass /
    # batch-scan pass / payload-column stitch per extra generation.  This
    # per-generation surcharge is what lets the optimizer see un-compacted
    # appends and recommend compaction (overlay_penalty_seconds).
    gen_overlay_s: float = 2.5e-4  # per extra live generation consulted
    # bloom/zone filter probe: a generation whose segment persisted key
    # filters answers a matched probe with a decode-free membership check,
    # so filtered overlays pay this per cell per extra generation instead
    # of the full index-probe rate above.
    filter_probe_s: float = 2.0e-7  # per query cell, bloom + zone-map check
    # scatter fan-out: a partitioned catalog routes a mapped node's read to
    # one partition (no surcharge), but an unmapped node or broadcast plan
    # probes every partition's manifest/cache once — one extra partition
    # consulted costs one more child-catalog lookup.
    partition_probe_s: float = 5.0e-5  # per extra partition consulted

    @classmethod
    def calibrate(cls, n: int = 50_000, seed: int = 0) -> "CostConstants":
        """Measure this machine's per-primitive costs on synthetic stores.

        Calibrating tightens the query-time optimizer's decisions; the
        defaults are fine for correctness (only orderings matter).
        """
        import time

        import numpy as np

        from repro.storage.kvstore import HashStore
        from repro.storage.rtree import RTree

        rng = np.random.default_rng(seed)
        keys = rng.choice(4 * n, size=n, replace=False).astype(np.int64)

        store = HashStore("calib")
        store.put_many_fixed(keys, keys)
        store.finalize()
        probe_keys = keys[: max(1, n // 10)]
        start = time.perf_counter()
        store.lookup_refs(probe_keys)
        hash_probe = (time.perf_counter() - start) / probe_keys.size

        points = np.stack([keys % 1000, keys // 1000], axis=1)
        tree = RTree.from_points(points[: n // 5])
        start = time.perf_counter()
        for point in points[:200]:
            tree.query_point(point)
        rtree_probe = (time.perf_counter() - start) / 200

        start = time.perf_counter()
        count = 0
        for _ in store.scan():
            count += 1
            if count >= n // 5:
                break
        scan_entry = (time.perf_counter() - start) / max(1, count)

        # the batch-scan engine's per-entry cost: one vectorised membership
        # pass over the whole segment instead of a per-entry cursor
        from repro.arrays.coords import isin_sorted

        _, seg_values = store.items_fixed()
        sorted_probe = np.sort(probe_keys)
        start = time.perf_counter()
        isin_sorted(seg_values, sorted_probe)
        batch_entry = (time.perf_counter() - start) / max(1, seg_values.size)

        start = time.perf_counter()
        shape = (2000, 2000)
        coords = np.stack([keys % 2000, (keys // 2000) % 2000], axis=1)
        from repro.arrays import coords as C

        C.pack_coords(coords, shape)
        map_cell = (time.perf_counter() - start) / n

        base = cls()
        return cls(
            hash_probe_s=max(hash_probe, 1e-8),
            rtree_probe_s=max(rtree_probe, 1e-7),
            scan_entry_s=max(scan_entry, 1e-8),
            batch_entry_s=max(batch_entry, 1e-10),
            map_cell_s=max(map_cell, 1e-9),
            decode_cell_s=base.decode_cell_s,
            payload_apply_s=base.payload_apply_s,
            join_cell_s=base.join_cell_s,
            write_cell_s=base.write_cell_s,
            index_entry_s=base.index_entry_s,
        )


class CostModel:
    """Estimates keyed by (node, strategy); see module docstring."""

    def __init__(
        self, stats: StatsCollector, constants: CostConstants | None = None
    ):
        self.stats = stats
        self.k = constants or CostConstants()

    # -- helpers ------------------------------------------------------------

    def _entries(self, s: OperatorStats, strategy: StorageStrategy) -> float:
        """How many store entries the strategy materialises for this node."""
        if strategy.mode in (LineageMode.PAY, LineageMode.COMP):
            if strategy.encoding is EncodingKind.ONE:
                return float(s.n_payload_outcells)
            return float(s.n_payload_pairs)
        if strategy.encoding is EncodingKind.MANY:
            return float(s.n_pairs)
        if strategy.orientation is Orientation.BACKWARD:
            return float(s.n_outcells)
        return float(s.n_incells)

    # -- ILP inputs ------------------------------------------------------------

    def disk_bytes(self, node: str, strategy: StorageStrategy) -> float:
        """Bytes the strategy would occupy for ``node`` (measured if known).

        The value side of the Full layouts is priced with the codec-aware
        per-cell footprint the stats collector sampled through
        ``int_array_nbytes`` — so an operator whose lineage interval-codes
        (convolution, reshape) or bitmap-codes (dense-but-ragged masks)
        budgets at its real compressed size — with the flat
        ``enc_cell_bytes`` constant as the pre-profiling fallback.
        """
        if not strategy.stores_pairs:
            return 0.0
        s = self.stats.get(node)
        measured = s.disk_bytes.get(strategy.label)
        if measured is not None:
            return float(measured)
        k = self.k
        full_out = s.n_outcells - s.n_payload_outcells
        if strategy.mode in (LineageMode.PAY, LineageMode.COMP):
            per_pair_payload = s.payload_bytes_avg
            if strategy.encoding is EncodingKind.ONE:
                return s.n_payload_outcells * (k.key_bytes + per_pair_payload)
            return s.n_payload_outcells * k.key_bytes + s.n_payload_pairs * (
                per_pair_payload + k.entry_overhead_bytes + k.rtree_entry_bytes
            )
        backward = strategy.orientation is Orientation.BACKWARD
        cells_key = full_out if backward else s.n_incells
        cells_val = s.n_incells if backward else full_out
        per_cell = s.enc_in_bytes_per_cell if backward else s.enc_out_bytes_per_cell
        if per_cell is None:
            per_cell = k.enc_cell_bytes
        if strategy.encoding is EncodingKind.ONE:
            return (
                cells_key * (k.key_bytes + k.ref_bytes)
                + cells_val * per_cell
            )
        return (
            cells_key * k.key_bytes
            + cells_val * per_cell
            + s.n_pairs * (k.entry_overhead_bytes + k.rtree_entry_bytes)
        )

    def write_seconds(self, node: str, strategy: StorageStrategy) -> float:
        """Runtime overhead the strategy adds to the workflow for ``node``."""
        if not strategy.stores_pairs:
            return 0.0
        s = self.stats.get(node)
        measured = s.write_seconds.get(strategy.label)
        if measured is not None:
            return float(measured)
        k = self.k
        cells = s.n_outcells + (
            s.n_incells
            if strategy.mode is LineageMode.FULL
            else s.n_payload_pairs
        )
        seconds = cells * k.write_cell_s
        if strategy.encoding is EncodingKind.MANY:
            seconds += self._entries(s, strategy) * k.index_entry_s
        return seconds

    # -- per-step query cost ----------------------------------------------------------

    def reexec_seconds(self, node: str) -> float:
        s = self.stats.get(node)
        if s.reexec_seconds is not None:
            base = s.reexec_seconds
        elif s.compute_seconds:
            base = s.compute_seconds
        else:
            base = self.k.default_reexec_s
        return base + s.n_pairs * self.k.join_cell_s

    def query_seconds(
        self,
        node: str,
        strategy: StorageStrategy,
        direction_backward: bool,
        n_query_cells: int,
        lowered_ready: bool = False,
        reopen_bytes: int = 0,
        generations: int = 1,
        filtered: bool = False,
        fanout: int = 1,
    ) -> float:
        """Estimated cost of one query step over ``n_query_cells``.

        ``lowered_ready`` marks a store whose lowered batch-scan tables are
        already warm — cached from an earlier scan, or rehydrated from a
        segment's persisted tables — so a mismatched access is priced at
        the pure batch rate without the one-off lowering surcharge.

        ``reopen_bytes`` is the segment footprint a materialised access
        would have to (re)map first — nonzero when the store is on disk
        only because the serving cache evicted it (or never opened it).
        The surcharge makes the optimizer see the memory budget: a cheap
        probe against an evicted giant store may lose to re-execution.

        ``generations`` is how many live catalog generations the access
        would overlay (``runtime.generation_count``); every extra
        generation adds a probe/scan pass
        (:meth:`overlay_penalty_seconds`), so the optimizer sees
        un-compacted appends — and a strategy whose overlay grew expensive
        loses honestly to alternatives until a compaction runs.

        ``filtered`` marks an overlay whose every generation persisted its
        bloom/zone key filters (``catalog.filters_ready``): matched reads
        then skip non-owning generations after a cheap membership check,
        so the per-generation repeat is priced at the filter-probe rate.

        ``fanout`` is how many catalog partitions the access must scatter
        across (``runtime.partition_fanout``) — 1 for a monolithic catalog
        or a node the partition map covers; each extra partition adds one
        child-catalog probe, so the optimizer sees broadcast reads as
        honestly more expensive than targeted ones (and than mapping
        functions or re-execution, which never touch the catalog).
        """
        s = self.stats.get(node)
        k = self.k
        n = max(1, int(n_query_cells))
        fanin = max(1.0, s.fanin_avg)
        if strategy.mode is LineageMode.BLACKBOX:
            return self.reexec_seconds(node)
        if strategy.mode is LineageMode.MAP:
            return n * k.map_cell_s
        reopen = (
            k.segment_open_s + reopen_bytes * k.reopen_byte_s if reopen_bytes else 0.0
        )
        reopen += max(0, fanout - 1) * k.partition_probe_s
        measured = s.observed_query_seconds.get(
            self._observation_key(strategy, direction_backward)
        )
        if measured is not None:
            # observations were taken against the live overlay, so the
            # amplification is already folded into the EMA
            return measured + reopen
        overlay = self.overlay_penalty_seconds(
            node, strategy, direction_backward, n, generations, filtered=filtered
        )
        entries = self._entries(s, strategy)
        probe = (
            k.hash_probe_s
            if strategy.encoding is EncodingKind.ONE
            else k.rtree_probe_s
        )
        if strategy.mode is LineageMode.FULL:
            matched = (strategy.orientation is Orientation.BACKWARD) == direction_backward
            if matched:
                return reopen + overlay + n * probe + n * fanin * k.decode_cell_s
            # mismatched orientation: the batch-scan engine answers every
            # entry in a few vectorised passes, so the per-entry constant is
            # far below the per-entry cursor cost.  The decode term prices
            # the one-off lowering of the value heap; it disappears when the
            # lowered tables are already warm (cached, or served straight
            # from a segment's persisted tables).
            if lowered_ready:
                return reopen + overlay + entries * k.batch_entry_s
            return reopen + overlay + entries * (k.batch_entry_s + k.decode_cell_s)
        # payload / composite strategies are always backward-optimized
        if direction_backward:
            cost = reopen + overlay + n * probe + n * k.payload_apply_s
            if strategy.mode is LineageMode.COMP:
                cost += n * k.map_cell_s
            return cost
        cost = reopen + overlay + entries * (k.scan_entry_s + k.payload_apply_s / 8.0)
        if strategy.mode is LineageMode.COMP:
            cost += n * k.map_cell_s
        return cost

    def overlay_penalty_seconds(
        self,
        node: str,
        strategy: StorageStrategy,
        direction_backward: bool,
        n_query_cells: int,
        generations: int,
        filtered: bool = False,
    ) -> float:
        """Read-amplification surcharge of serving ``generations`` live
        generations instead of one compacted segment.

        Matched accesses repeat their per-cell index probe once per extra
        generation; every access additionally pays one fixed per-generation
        pass (``gen_overlay_s``: an extra batch-scan/lowered-table pass, or
        the payload-column stitch).  This is also the *estimated saving per
        query* a compaction buys, which is how ``SubZero.compaction_advice``
        ranks candidates.

        ``filtered`` means every generation carries persisted key filters:
        the matched repeat degrades from an index probe per generation to a
        bloom/zone check per generation (``filter_probe_s``) — much
        cheaper, but still growing with the generation count, so advice
        keeps firing and compaction still pays for itself eventually."""
        if generations <= 1 or not strategy.stores_pairs:
            return 0.0
        k = self.k
        extra = generations - 1
        penalty = extra * k.gen_overlay_s
        n = max(1, int(n_query_cells))
        probe = (
            k.hash_probe_s
            if strategy.encoding is EncodingKind.ONE
            else k.rtree_probe_s
        )
        matched = (
            strategy.mode in (LineageMode.PAY, LineageMode.COMP)
            or (strategy.orientation is Orientation.BACKWARD)
        ) == direction_backward
        if matched:
            if filtered:
                # filters skip non-owning generations after a membership
                # check; only the (rare) owning generation pays its probe
                penalty += extra * n * k.filter_probe_s
            else:
                penalty += extra * n * probe
        return penalty

    @staticmethod
    def _observation_key(strategy: StorageStrategy, direction_backward: bool) -> str:
        arrow = "b" if direction_backward else "f"
        return f"{strategy.label}|{arrow}"

    def record_observation(
        self,
        node: str,
        strategy: StorageStrategy,
        direction_backward: bool,
        seconds: float,
    ) -> None:
        self.stats.record_query(
            node, self._observation_key(strategy, direction_backward), seconds
        )

    # -- sanity -----------------------------------------------------------------------

    def require_profiled(self, node: str) -> OperatorStats:
        s = self.stats.get(node)
        if s.output_size == 0:
            raise OptimizationError(
                f"no statistics recorded for node {node!r}; run the workflow "
                "(or a profiling pass) before optimizing"
            )
        return s
