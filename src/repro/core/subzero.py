"""The SubZero facade: one object tying the whole system together.

Typical use::

    sz = SubZero(spec)
    sz.set_strategy("crd", COMP_ONE_B)        # or sz.optimize(...)
    instance = sz.run({"image": img})
    result = sz.backward_query(star_cells, ["detect", "merge", "crd"])

Re-running after changing strategies rebuilds the lineage stores (region
lineage is a cache; the versioned arrays are the ground truth).

Concurrent serving::

    with SubZero(spec, memory_budget_bytes=256 << 20) as sz:
        sz.resume(versions, wal=wal, lineage_dir="lineage/")
        results = sz.serve(queries, max_workers=8)

``serve`` fans a query batch across a thread pool; every worker thread
borrows stores through its own :class:`~repro.core.query.QuerySession`, so
the catalog's 2Q cache shares one mmap per store among the readers and
never closes a mapping under a pinned session.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

from repro.analysis import lockcheck
from repro.arrays.array import SciArray
from repro.arrays.versions import VersionStore
from repro.core.costmodel import CostConstants, CostModel
from repro.core.model import LineageQuery
from repro.core.modes import MAP, LineageMode, StorageStrategy
from repro.core.optimizer import (
    OptimizationResult,
    StrategyOptimizer,
    WorkloadProfile,
)
from repro.core.query import QueryExecutor, QueryRequest, QueryResult, QuerySession
from repro.core.runtime import LineageRuntime
from repro.core.stats import StatsCollector
from repro.errors import QueryError, WorkflowError
from repro.storage.wal import WriteAheadLog
from repro.workflow.executor import execute_workflow
from repro.workflow.instance import WorkflowInstance
from repro.workflow.spec import WorkflowSpec

__all__ = ["SubZero"]


class _InflightGauge:
    """Counts queries executing through :meth:`SubZero.serve` — the
    foreground-pressure signal the background-maintenance worker polls
    (idle == zero in flight)."""

    def __init__(self):
        self._lock = lockcheck.make_lock("subzero.serving.inflight")
        self._count = 0

    def enter(self) -> None:
        with self._lock:
            self._count += 1

    def exit(self) -> None:
        with self._lock:
            self._count -= 1

    def idle(self) -> bool:
        with self._lock:
            return self._count == 0


class SubZero:
    """Lineage-tracking workflow engine (the system of the paper)."""

    def __init__(
        self,
        spec: WorkflowSpec,
        constants: CostConstants | None = None,
        enable_entire_array: bool = True,
        enable_query_opt: bool = True,
        memory_budget_bytes: int | None = None,
        capture: str = "deferred",
    ):
        self.spec = spec
        self.stats = StatsCollector()
        self.cost_model = CostModel(self.stats, constants)
        self.enable_entire_array = enable_entire_array
        self.enable_query_opt = enable_query_opt
        #: cap on resident lineage-segment bytes when serving off a flushed
        #: catalog (2Q eviction of open stores); None keeps it unbounded
        self.memory_budget_bytes = memory_budget_bytes
        if capture not in ("deferred", "eager"):
            raise ValueError(
                f"capture must be 'deferred' or 'eager', got {capture!r}"
            )
        #: "deferred" (default) parks lwrite descriptors and lowers them on
        #: a background encode worker; "eager" encodes inline in the
        #: workflow thread (the pre-pipelining behaviour)
        self.capture = capture
        self._strategy_map: dict[str, tuple[StorageStrategy, ...]] = {}
        self.runtime: LineageRuntime | None = None
        self.instance: WorkflowInstance | None = None
        self.executor: QueryExecutor | None = None
        self.wal = WriteAheadLog()
        #: (runtime, future) of flush_lineage(wait=False) calls still in
        #: flight — joined (and their runtimes closed) by :meth:`close`
        self._background: list = []
        #: the background budgeted-compaction worker (started lazily by
        #: :meth:`serve` / :meth:`start_maintenance`, joined by :meth:`close`)
        self._maintenance = None
        #: foreground pressure signal for the maintenance worker: queries
        #: currently executing through :meth:`serve`
        self._serving = _InflightGauge()
        #: cached scatter-gather wrapper over the executor, rebuilt whenever
        #: the executor or the attached partitioned catalog changes
        self._scatter = None

    # -- strategy management ---------------------------------------------------

    def set_strategy(self, node: str, *strategies: StorageStrategy) -> None:
        """Assign lineage strategies to one node (takes effect on next run)."""
        if not self.spec.has_node(node):
            raise WorkflowError(f"unknown node {node!r}")
        self._strategy_map[node] = tuple(strategies)

    def apply_plan(self, plan: Mapping[str, list[StorageStrategy]]) -> None:
        for node, strategies in plan.items():
            self.set_strategy(node, *strategies)

    def use_mapping_where_possible(self) -> None:
        """Assign ``Map`` to every operator that declares mapping functions
        (the BlackBoxOpt baseline of Table II keeps everything else black-box)."""
        for name, node in self.spec.nodes.items():
            if LineageMode.MAP in node.operator.supported_modes():
                existing = self._strategy_map.get(name, ())
                if MAP not in existing:
                    self._strategy_map[name] = existing + (MAP,)

    def strategies(self) -> dict[str, tuple[StorageStrategy, ...]]:
        return dict(self._strategy_map)

    # -- execution -----------------------------------------------------------------

    def run(
        self, inputs: Mapping[str, SciArray], version_store: VersionStore | None = None
    ) -> WorkflowInstance:
        """Execute the workflow, materialising lineage per the current plan."""
        self.runtime = LineageRuntime(
            stats=self.stats, deferred=(self.capture == "deferred")
        )
        for node, strategies in self._strategy_map.items():
            self.runtime.set_strategies(node, strategies)
        self.instance = execute_workflow(
            self.spec,
            inputs,
            runtime=self.runtime,
            version_store=version_store,
            wal=self.wal,
        )
        self.executor = QueryExecutor(
            self.instance,
            self.runtime,
            cost_model=self.cost_model,
            enable_entire_array=self.enable_entire_array,
            enable_query_opt=self.enable_query_opt,
        )
        return self.instance

    def profile(self, inputs: Mapping[str, SciArray]) -> WorkflowInstance:
        """Run once in profiling mode: operators emit every pair form they
        support, statistics are collected, nothing is stored (the initial
        black-box phase that seeds the optimizer)."""
        self.runtime = LineageRuntime(stats=self.stats, profile=True)
        self.instance = execute_workflow(
            self.spec, inputs, runtime=self.runtime, wal=self.wal
        )
        self.executor = QueryExecutor(
            self.instance,
            self.runtime,
            cost_model=self.cost_model,
            enable_entire_array=self.enable_entire_array,
            enable_query_opt=self.enable_query_opt,
        )
        return self.instance

    # -- persistence / resumption ---------------------------------------------------

    def flush_lineage(
        self,
        directory: str,
        shard_threshold_bytes: int | None = None,
        append: bool = False,
        wait: bool = True,
        partitions=None,
    ):
        """Persist every materialised lineage store under ``directory`` as
        segment files plus a catalog manifest; returns bytes written.
        Stores larger than ``shard_threshold_bytes`` (when given) are split
        into ``.seg.0..k`` shard files a later reader maps piecemeal.

        ``append=True`` makes the flush *incremental*: this run's stores
        are written as delta generations over the catalog already at
        ``directory`` (O(delta), committed segments untouched) instead of
        re-flushing the world.  Readers overlay the generations
        transparently; call :meth:`compact_lineage` — ideally off the
        serving path — to merge them back into single segments.

        ``wait=False`` pipelines the flush: it is queued on the runtime's
        background worker (behind any encodes still in flight) and a
        :class:`~concurrent.futures.Future` of the byte count comes back
        immediately, so flushing generation ``N`` overlaps the workflow
        computing ``N+1``.  :meth:`close` joins every pending background
        flush and re-raises the first :class:`~repro.errors.StorageError`,
        so failures cannot be silently dropped.

        ``partitions=N`` (or an explicit node→partition-id mapping) splits
        the flush into a partitioned catalog root — N independent catalog
        directories under one ``partitions.json`` manifest (see
        :mod:`repro.storage.partition` and ``docs/partitioning.md``);
        :meth:`load_lineage` auto-detects the root and queries scatter
        across only the partitions that can match."""
        if self.runtime is None:
            raise WorkflowError("execute the workflow before flushing lineage")
        if wait:
            return self.runtime.flush_all(
                directory,
                shard_threshold_bytes=shard_threshold_bytes,
                append=append,
                partitions=partitions,
            )
        future = self.runtime.flush_all_async(
            directory,
            shard_threshold_bytes=shard_threshold_bytes,
            append=append,
            partitions=partitions,
        )
        self._background.append((self.runtime, future))
        return future

    def compact_lineage(
        self,
        node: str | None = None,
        strategy: StorageStrategy | None = None,
        budget_bytes: int | None = None,
        shard_threshold_bytes: int | None = None,
        parallel: int | None = None,
    ):
        """Merge the attached catalog's delta generations back into one
        segment per store, online (concurrent sessions keep serving; see
        :meth:`~repro.core.catalog.StoreCatalog.compact`).  Returns the
        :class:`~repro.core.catalog.CompactionReport`.

        On a partitioned catalog the sweep fans across the partitions on a
        small thread pool (their maintenance locks are independent);
        ``parallel`` caps the workers — ignored for a monolithic catalog,
        where the maintenance lock serialises compaction anyway."""
        if self.runtime is None or self.runtime.catalog is None:
            raise WorkflowError(
                "no lineage catalog attached; load_lineage/resume first"
            )
        catalog = self.runtime.catalog
        kwargs = dict(
            node=node,
            strategy=strategy,
            budget_bytes=budget_bytes,
            shard_threshold_bytes=shard_threshold_bytes,
        )
        if hasattr(catalog, "partition_ids"):
            kwargs["parallel"] = parallel
        return catalog.compact(**kwargs)

    def compaction_advice(
        self, n_query_cells: int = 64
    ) -> list[tuple[str, StorageStrategy, int, float]]:
        """Where compaction would pay: ``(node, strategy, generations,
        estimated seconds saved per query)`` for every multi-generation
        catalog store, costliest first.  The estimate is the cost model's
        overlay read-amplification penalty — the same term the query-time
        optimizer charges, so an empty list means queries already run at
        single-segment cost."""
        if self.runtime is None or self.runtime.catalog is None:
            return []
        catalog = self.runtime.catalog
        advice = []
        for node, strategy in catalog.keys():
            gens = catalog.generation_count(node, strategy)
            if gens <= 1:
                continue
            penalty = max(
                self.cost_model.overlay_penalty_seconds(
                    node, strategy, backward, n_query_cells, gens
                )
                for backward in (True, False)
            )
            advice.append((node, strategy, gens, penalty))
        advice.sort(key=lambda item: -item[3])
        return advice

    # -- background maintenance ----------------------------------------------------------

    def start_maintenance(
        self,
        budget_bytes: int | None = None,
        interval_s: float = 0.05,
    ):
        """Start (or return) the background budgeted-compaction worker.

        :meth:`serve` calls this automatically when a catalog is attached,
        so steady-state serving needs zero manual :meth:`compact_lineage`
        calls; call it directly to run maintenance under an embedded query
        loop.  The worker consumes :meth:`compaction_advice` one budgeted
        slice at a time, only while no :meth:`serve` query is in flight,
        and is joined by :meth:`close` (or :meth:`stop_maintenance`)."""
        from repro.serving.maintenance import DEFAULT_BUDGET_BYTES, MaintenanceWorker

        if self._maintenance is not None and self._maintenance.running:
            return self._maintenance
        self._maintenance = MaintenanceWorker(
            self,
            is_idle=self._serving.idle,
            stats=self.stats,
            budget_bytes=(
                budget_bytes if budget_bytes is not None else DEFAULT_BUDGET_BYTES
            ),
            interval_s=interval_s,
        )
        return self._maintenance.start()

    def stop_maintenance(self, timeout: float | None = 30.0) -> None:
        """Stop and join the maintenance worker (no-op when none is
        running); re-raises the first failure it captured, once."""
        worker, self._maintenance = self._maintenance, None
        if worker is not None:
            worker.stop(timeout)

    def load_lineage(
        self, directory: str, memory_budget_bytes: int | None = None
    ) -> int:
        """Attach a flushed lineage catalog for lazy serving.

        Only the manifest is read; individual stores open (mmap-backed, no
        decode) on the first query that needs them.  Returns the number of
        stores the catalog records.  ``memory_budget_bytes`` (defaulting to
        the facade-level budget) bounds the open-store cache."""
        if self.runtime is None:
            self.runtime = LineageRuntime(stats=self.stats)
        if memory_budget_bytes is None:
            memory_budget_bytes = self.memory_budget_bytes
        loaded = self.runtime.load_all(
            directory, memory_budget_bytes=memory_budget_bytes
        )
        if self.instance is not None:
            self.executor = QueryExecutor(
                self.instance,
                self.runtime,
                cost_model=self.cost_model,
                enable_entire_array=self.enable_entire_array,
                enable_query_opt=self.enable_query_opt,
            )
        return loaded

    def resume(
        self,
        versions: VersionStore,
        wal: WriteAheadLog | None = None,
        lineage_dir: str | None = None,
    ) -> WorkflowInstance:
        """Rebuild a queryable engine in a fresh process without re-running.

        The instance comes back from the WAL + version store (black-box
        lineage, §V-a); ``lineage_dir`` additionally attaches a flushed
        region-lineage catalog, so backward/forward queries — including
        mismatched-orientation scans, served from the segments' persisted
        lowered tables — run straight off disk."""
        from repro.workflow.recovery import recover_instance

        self.instance = recover_instance(self.spec, versions, wal or self.wal)
        if self.runtime is None:
            self.runtime = LineageRuntime(stats=self.stats)
        if lineage_dir is not None:
            self.runtime.load_all(
                lineage_dir, memory_budget_bytes=self.memory_budget_bytes
            )
        self.executor = QueryExecutor(
            self.instance,
            self.runtime,
            cost_model=self.cost_model,
            enable_entire_array=self.enable_entire_array,
            enable_query_opt=self.enable_query_opt,
        )
        return self.instance

    # -- queries ------------------------------------------------------------------------

    def _require_executor(self) -> QueryExecutor:
        if self.executor is None:
            raise QueryError("execute the workflow before running lineage queries")
        return self.executor

    def _dispatch_request(
        self, executor: QueryExecutor, request: QueryRequest, session
    ) -> QueryResult:
        """Route one request: straight through the executor for a
        monolithic catalog, through the cached
        :class:`~repro.storage.partition.ScatterGatherExecutor` (which
        records the partition fan-out plan) for a partitioned one."""
        catalog = self.runtime.catalog if self.runtime is not None else None
        if catalog is None or not hasattr(catalog, "partition_ids"):
            return executor.execute_request(request, session=session)
        scatter = self._scatter
        if (
            scatter is None
            or scatter._executor is not executor
            or scatter.catalog is not catalog
        ):
            from repro.storage.partition import ScatterGatherExecutor

            scatter = self._scatter = ScatterGatherExecutor(executor, catalog)
        return scatter.execute_request(request, session=session)

    def session(self) -> QuerySession:
        """A borrow scope for a batch of queries: catalog stores touched
        through it stay pinned (immune to cache eviction, one shared mmap)
        until the session closes.  Use as a context manager::

            with sz.session() as session:
                for q in queries:
                    sz.execute_query(q, session=session)
        """
        if self.runtime is None:
            raise QueryError("execute or resume the workflow before opening a session")
        return QuerySession(self.runtime)

    def serve(
        self,
        queries: Sequence[LineageQuery | QueryRequest],
        max_workers: int = 4,
    ) -> list[QueryResult]:
        """Execute a batch of lineage queries on a thread pool.

        Accepts :class:`~repro.core.query.QueryRequest` objects (the
        serializable surface the network daemon speaks) and legacy
        :class:`~repro.core.model.LineageQuery` values interchangeably.
        Results come back in input order.  Each worker thread runs queries
        through its own :class:`~repro.core.query.QuerySession`, so all
        threads share one mmap per store (open-once/share-many) and the
        memory budget's eviction never closes a store under a reader.
        ``max_workers <= 1`` runs sequentially — through one session, so a
        single-worker batch gets the same pinning (no eviction churn
        mid-batch) as the threaded path.
        """
        executor = self._require_executor()
        if not queries:
            return []
        if (
            self.runtime is not None
            and self.runtime.catalog is not None
            and (self._maintenance is None or not self._maintenance.running)
        ):
            # autonomous maintenance rides the serve loop: compaction
            # slices run only between queries (the in-flight counter is
            # the idle signal) and keep running between serve() batches
            # until close()
            self.start_maintenance()

        def run_one(query, session: QuerySession) -> QueryResult:
            self._serving.enter()
            try:
                if isinstance(query, QueryRequest):
                    return self._dispatch_request(executor, query, session)
                return executor.execute(query, session=session)
            finally:
                self._serving.exit()

        if max_workers <= 1:
            with QuerySession(self.runtime) as session:
                return [run_one(q, session) for q in queries]
        local = threading.local()
        sessions: list[QuerySession] = []
        sessions_lock = lockcheck.make_lock("subzero.serve.sessions")

        def run(query) -> QueryResult:
            session = getattr(local, "session", None)
            if session is None:
                session = QuerySession(self.runtime)
                local.session = session
                with sessions_lock:
                    sessions.append(session)
            return run_one(query, session)

        try:
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="subzero-serve"
            ) as pool:
                return list(pool.map(run, queries))
        finally:
            for session in sessions:
                session.close()

    def query(
        self, request: QueryRequest, session: QuerySession | None = None
    ) -> QueryResult:
        """Execute one :class:`~repro.core.query.QueryRequest` — the
        canonical query entry point.

        The same frozen, serializable request object drives the embedded
        API, :meth:`serve`, and the network daemon
        (:mod:`repro.serving`), so ``sz.query(r)`` and a daemon answering
        ``r.to_dict()`` over the wire are provably the same query.  Over a
        partitioned catalog the request is planned and accounted by the
        scatter-gather layer first (see :meth:`_dispatch_request`)."""
        return self._dispatch_request(self._require_executor(), request, session)

    def backward_query(self, cells, path, session=None, **overrides) -> QueryResult:
        """Backward query along an explicit path.  Convenience wrapper for
        :meth:`query`; keyword overrides are deprecated — set the
        corresponding :class:`QueryRequest` fields instead."""
        fields = self._override_fields("backward_query", overrides)
        return self.query(
            QueryRequest.backward(cells, path, **fields), session=session
        )

    def forward_query(self, cells, path, session=None, **overrides) -> QueryResult:
        """Forward query along an explicit path (see :meth:`backward_query`)."""
        fields = self._override_fields("forward_query", overrides)
        return self.query(
            QueryRequest.forward(cells, path, **fields), session=session
        )

    def execute_query(
        self, query: LineageQuery | QueryRequest, session=None, **overrides
    ) -> QueryResult:
        """Execute a :class:`QueryRequest` (preferred) or a legacy
        :class:`LineageQuery`.  Keyword overrides are deprecated in favor
        of the request's ``entire_array``/``query_opt`` fields."""
        if isinstance(query, QueryRequest):
            fields = self._override_fields("execute_query", overrides)
            if fields:
                query = query.with_overrides(**fields)
            return self.query(query, session=session)
        fields = self._override_fields("execute_query", overrides)
        return self._require_executor().execute(
            query,
            enable_entire_array=fields.get("entire_array"),
            enable_query_opt=fields.get("query_opt"),
            session=session,
        )

    def trace_back(self, cells, from_node: str, to: str, session=None, **overrides) -> QueryResult:
        """Backward query with the path inferred (shortest dataflow route
        from ``from_node``'s output back to node or source ``to``)."""
        fields = self._override_fields("trace_back", overrides)
        return self.query(
            QueryRequest.backward(cells, start=from_node, end=to, **fields),
            session=session,
        )

    def trace_forward(self, cells, from_name: str, to_node: str, session=None, **overrides) -> QueryResult:
        """Forward query with the path inferred (``from_name`` may be a
        source or a node; the trace ends at ``to_node``'s output)."""
        fields = self._override_fields("trace_forward", overrides)
        return self.query(
            QueryRequest.forward(cells, start=from_name, end=to_node, **fields),
            session=session,
        )

    #: legacy ``**overrides`` kwarg -> QueryRequest field (the shim's map)
    _OVERRIDE_FIELDS = {
        "enable_entire_array": "entire_array",
        "enable_query_opt": "query_opt",
    }

    @classmethod
    def _override_fields(cls, method: str, overrides: Mapping) -> dict:
        """Back-compat shim: map deprecated ``**overrides`` kwargs onto
        :class:`QueryRequest` fields with a :class:`DeprecationWarning`;
        reject unknown kwargs loudly (they used to vanish into the soup)."""
        if not overrides:
            return {}
        fields = {}
        for key, value in overrides.items():
            replacement = cls._OVERRIDE_FIELDS.get(key)
            if replacement is None:
                raise TypeError(
                    f"{method}() got an unexpected keyword argument {key!r}"
                )
            warnings.warn(
                f"{method}(..., {key}=...) is deprecated; build a "
                f"QueryRequest with {replacement}={value!r} instead "
                "(the kwargs shim will be removed next release)",
                DeprecationWarning,
                stacklevel=3,
            )
            fields[replacement] = value
        return fields

    # -- optimization ----------------------------------------------------------------------

    def optimize(
        self,
        workload: list[LineageQuery] | WorkloadProfile,
        max_disk_bytes: float,
        max_runtime_seconds: float | None = None,
        beta: float = 1.0,
        pinned: Mapping[str, list[StorageStrategy]] | None = None,
        apply: bool = True,
    ) -> OptimizationResult:
        """Pick the optimal strategy mix for a sample workload and budget.

        Requires statistics — run :meth:`profile` (or :meth:`run`) first.
        """
        if isinstance(workload, WorkloadProfile):
            profile = workload
        else:
            profile = WorkloadProfile.from_queries(list(workload))
        operators = {
            name: node.operator for name, node in self.spec.nodes.items()
        }
        for name in operators:
            self.cost_model.require_profiled(name)
        optimizer = StrategyOptimizer(self.cost_model)
        result = optimizer.optimize(
            operators,
            profile,
            max_disk_bytes=max_disk_bytes,
            max_runtime_seconds=max_runtime_seconds,
            beta=beta,
            pinned=dict(pinned) if pinned else None,
        )
        if apply:
            self.apply_plan(result.plan)
        return result

    # -- lifecycle ------------------------------------------------------------------------------

    def close(self) -> None:
        """Join pending background flushes, then release every open lineage
        mapping (catalog cache included).

        Safe to call twice; a closed engine can still re-run or re-load —
        closing only drops what is currently mapped.  The first exception a
        background flush or encode raised (typically a
        :class:`~repro.errors.StorageError`) re-raises here, after every
        runtime has released its mappings.  The background-maintenance
        worker is joined first — an active budgeted compaction slice runs
        to completion — and a failure it captured re-raises here exactly
        once, alongside the flush errors (first failure wins)."""
        background, self._background = self._background, []
        first: BaseException | None = None
        worker, self._maintenance = self._maintenance, None
        if worker is not None:
            try:
                worker.stop()
            except BaseException as exc:
                first = exc
        for runtime, future in background:
            try:
                future.result()
            except BaseException as exc:
                if first is None:
                    first = exc
        for runtime, _ in background:
            if runtime is self.runtime:
                continue
            try:
                runtime.close()
            except BaseException as exc:
                if first is None:
                    first = exc
        if self.runtime is not None:
            try:
                self.runtime.close()
            except BaseException as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first

    def __enter__(self) -> "SubZero":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting -----------------------------------------------------------------------------

    def lineage_disk_bytes(self) -> int:
        """Bytes held by every materialised lineage store."""
        return self.runtime.total_disk_bytes() if self.runtime else 0

    def workflow_seconds(self) -> float:
        """Wall time of the last run, including lineage generation/encoding."""
        if self.instance is None:
            return 0.0
        return (
            self.instance.total_compute_seconds()
            + self.instance.total_lineage_seconds()
        )

    def input_bytes(self) -> int:
        return self.instance.versions.input_bytes() if self.instance else 0

    def base_storage_bytes(self) -> int:
        return self.instance.versions.total_bytes() if self.instance else 0
