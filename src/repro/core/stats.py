"""Runtime statistics collector (the architecture's Statistics Collector).

The optimizer's cost model is driven by measurements the runtime gathers as
operators execute and as queries run (§III: the runtime "sends lineage and
other statistics to the Optimizer"; the query executor "sends statistics
(e.g., query fanout and fanin) to the optimizer to refine future
optimizations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrays import coords as C
from repro.core.model import BufferSink
from repro.storage import serialize as ser

__all__ = ["OperatorStats", "StatsCollector"]

#: how many region pairs :meth:`StatsCollector.record_sink` samples when
#: predicting codec-compressed footprints (the rest is extrapolated)
ENC_SAMPLE_PAIRS = 256

#: serialized bytes of a one-cell codec value (the stable singleton layout),
#: derived from the codec layer so it can never drift from the wire format
_SINGLETON_BYTES = ser.int_array_nbytes(np.zeros(1, dtype=np.int64))


def _segmented_nbytes(values: np.ndarray, offsets: np.ndarray) -> int:
    """Codec-priced bytes of the cell sets ``values[offsets[i]:offsets[i+1]]``
    in one vectorised pass (byte-identical to pricing each sorted set through
    ``int_array_nbytes``, per the ``encode_sorted_sets`` equivalence)."""
    from repro.storage import codecs

    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    counts = np.diff(offsets)
    owner = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    order = np.lexsort((values, owner))
    _, lengths = codecs.encode_sorted_sets(values[order], offsets)
    return int(lengths.sum())


@dataclass
class OperatorStats:
    """Everything the cost model knows about one workflow node."""

    node: str
    compute_seconds: float = 0.0
    n_pairs: int = 0
    n_outcells: int = 0
    n_incells: int = 0
    payload_bytes: int = 0
    n_payload_pairs: int = 0
    n_payload_outcells: int = 0
    output_size: int = 0
    input_sizes: tuple[int, ...] = ()
    # codec-predicted serialized footprints (sampled via int_array_nbytes,
    # extrapolated to the whole sink); zero until a run provided shapes
    enc_in_bytes: int = 0
    enc_out_bytes: int = 0
    # measured per strategy label
    write_seconds: dict[str, float] = field(default_factory=dict)
    disk_bytes: dict[str, int] = field(default_factory=dict)
    # observed at query time
    reexec_seconds: float | None = None
    observed_query_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def fanout_avg(self) -> float:
        """Mean output cells per region pair."""
        return self.n_outcells / self.n_pairs if self.n_pairs else 0.0

    @property
    def fanin_avg(self) -> float:
        """Mean input cells per region pair (payload pairs excluded)."""
        full = self.n_pairs - self.n_payload_pairs
        return self.n_incells / full if full else 0.0

    @property
    def payload_bytes_avg(self) -> float:
        return self.payload_bytes / self.n_payload_pairs if self.n_payload_pairs else 0.0

    @property
    def enc_in_bytes_per_cell(self) -> float | None:
        """Codec-aware encoded bytes per input cell (None when unmeasured)."""
        if self.enc_in_bytes <= 0 or self.n_incells <= 0:
            return None
        return self.enc_in_bytes / self.n_incells

    @property
    def enc_out_bytes_per_cell(self) -> float | None:
        """Codec-aware encoded bytes per output cell (None when unmeasured)."""
        full_out = self.n_outcells - self.n_payload_outcells
        if self.enc_out_bytes <= 0 or full_out <= 0:
            return None
        return self.enc_out_bytes / full_out


class StatsCollector:
    """Accumulates :class:`OperatorStats` across runs and queries."""

    def __init__(self):
        self._stats: dict[str, OperatorStats] = {}
        #: last serving-cache snapshot the query layer reported: hit/miss/
        #: evict counts, open-mapping count, resident bytes.  Surfaced so
        #: benchmarks and ``explain()`` can watch serving regressions.
        self.serving: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "open_mappings": 0,
            "resident_bytes": 0,
            # lock-order validator counters (non-zero only under
            # REPRO_LOCKCHECK=1; see repro.analysis.lockcheck)
            "lockcheck_locks": 0,
            "lockcheck_max_held": 0,
            "lockcheck_cycles": 0,
            "lockcheck_held_io": 0,
        }
        #: deferred-capture counters: foreground seconds spent recording
        #: descriptors, pairs/bytes captured in deferred form, and seconds
        #: the background encode worker spent lowering them
        self.capture: dict[str, float] = {
            "capture_seconds": 0.0,
            "deferred_pairs": 0,
            "deferred_bytes": 0,
            "encode_thread_seconds": 0.0,
        }
        #: background-maintenance counters: budgeted compaction slices the
        #: maintenance worker ran, bytes it merged, and wall seconds it
        #: spent doing so (all while the admission gate was idle)
        self.maintenance: dict[str, float] = {
            "compactions_run": 0,
            "bytes_merged": 0,
            "maintenance_seconds": 0.0,
        }

    def get(self, node: str) -> OperatorStats:
        if node not in self._stats:
            self._stats[node] = OperatorStats(node=node)
        return self._stats[node]

    def __contains__(self, node: str) -> bool:
        return node in self._stats

    def nodes(self) -> list[str]:
        return sorted(self._stats)

    # -- runtime-side hooks ---------------------------------------------------

    def record_run(
        self,
        node: str,
        compute_seconds: float,
        output_size: int,
        input_sizes: tuple[int, ...],
    ) -> None:
        stats = self.get(node)
        stats.compute_seconds = compute_seconds
        stats.output_size = output_size
        stats.input_sizes = input_sizes

    def record_sink(
        self,
        node: str,
        sink: BufferSink,
        out_shape: tuple[int, ...] | None = None,
        in_shapes: tuple[tuple[int, ...], ...] | None = None,
    ) -> None:
        """Derive pair/fan statistics from what an operator emitted.

        When the caller provides the array shapes, a sample of the region
        pairs is additionally priced through the codec layer
        (:func:`repro.storage.serialize.int_array_nbytes`), so the cost
        model sees *compressed* footprints — contiguous convolution or
        reshape lineage interval-codes, and dense-but-ragged masks
        bitmap-code, to a fraction of the old per-cell constant — instead
        of a flat bytes-per-cell guess.
        """
        stats = self.get(node)
        n_pairs = n_out = n_in = pay_bytes = n_pay = n_pay_out = 0
        for pair in sink.pairs:
            n_pairs += 1
            n_out += pair.fanout
            if pair.is_payload:
                n_pay += 1
                n_pay_out += pair.fanout
                pay_bytes += len(pair.payload)
            else:
                n_in += sum(int(cells.shape[0]) for cells in pair.incells)
        for batch in sink.elementwise:
            n_pairs += batch.count
            n_out += batch.count
            n_in += batch.count * len(batch.incells)
        for pbatch in sink.payload_batches:
            n_pairs += pbatch.count
            n_pay += pbatch.count
            n_out += pbatch.count
            n_pay_out += pbatch.count
            if hasattr(pbatch.payloads, "nbytes"):
                pay_bytes += int(pbatch.payloads.nbytes)
            else:
                pay_bytes += sum(len(p) for p in pbatch.payloads)
        region_batches = list(sink.region_batches)
        for rb in region_batches:
            n_pairs += rb.count
            n_out += int(rb.out_coords.shape[0])
            if rb.is_payload:
                n_pay += rb.count
                n_pay_out += int(rb.out_coords.shape[0])
                pay_bytes += len(rb.payloads)
            else:
                n_in += sum(int(arr.shape[0]) for arr in rb.in_coords)
        stats.n_pairs = n_pairs
        stats.n_outcells = n_out
        stats.n_incells = n_in
        stats.payload_bytes = pay_bytes
        stats.n_payload_pairs = n_pay
        stats.n_payload_outcells = n_pay_out
        # the cell counts above were overwritten for this sink; stale codec
        # samples from an earlier (or not-yet-priced) call must not linger
        stats.enc_in_bytes = 0
        stats.enc_out_bytes = 0
        if out_shape is not None and in_shapes is not None:
            self.price_sink(node, sink, out_shape, in_shapes)

    def price_sink(
        self,
        node: str,
        sink: BufferSink,
        out_shape: tuple[int, ...],
        in_shapes: tuple[tuple[int, ...], ...],
    ) -> None:
        """Codec-price ``sink``'s full pairs into ``enc_in/out_bytes``.

        Split from :meth:`record_sink` so deferred capture can run the
        sampling on the background encode worker — pricing costs real codec
        passes, which must not land on the workflow thread."""
        full_pairs = [p for p in sink.pairs if not p.is_payload]
        n_elem = sum(batch.count for batch in sink.elementwise)
        stats = self.get(node)
        enc_in, enc_out = self._predict_encoded_bytes(
            full_pairs, n_elem, list(sink.region_batches), out_shape, in_shapes
        )
        stats.enc_in_bytes = enc_in
        stats.enc_out_bytes = enc_out

    @staticmethod
    def _predict_encoded_bytes(
        full_pairs: list,
        n_elem: int,
        region_batches: list,
        out_shape: tuple[int, ...],
        in_shapes: tuple[tuple[int, ...], ...],
    ) -> tuple[int, int]:
        """Codec-priced (input-side, output-side) bytes for the full pairs.

        Prices up to :data:`ENC_SAMPLE_PAIRS` pairs exactly — sorted packed
        coordinates through ``int_array_nbytes``, which mirrors the codec
        selection byte-for-byte — and extrapolates the rest linearly.
        Elementwise batches contribute the fixed singleton layout per cell.
        """
        sample = full_pairs[:ENC_SAMPLE_PAIRS]
        in_bytes = out_bytes = 0
        for pair in sample:
            for i, cells in enumerate(pair.incells):
                packed = np.sort(C.pack_coords(cells, in_shapes[i]))
                in_bytes += ser.int_array_nbytes(packed)
            packed = np.sort(C.pack_coords(pair.outcells, out_shape))
            out_bytes += ser.int_array_nbytes(packed)
        if sample and len(full_pairs) > len(sample):
            scale = len(full_pairs) / len(sample)
            in_bytes = int(in_bytes * scale)
            out_bytes = int(out_bytes * scale)
        full_batches = [rb for rb in region_batches if not rb.is_payload]
        total_rb = sum(rb.count for rb in full_batches)
        if total_rb:
            # one vectorised codec pass over the leading sample of each
            # batch — the per-pair pricing loop would cost more than the
            # deferred capture path it measures
            rb_in = rb_out = sampled = 0
            for rb in full_batches:
                take = min(rb.count, ENC_SAMPLE_PAIRS - sampled)
                if take == 0:
                    break
                out_off = rb.out_offsets[: take + 1]
                rb_out += _segmented_nbytes(
                    C.pack_coords(rb.out_coords[: out_off[-1]], out_shape), out_off
                )
                for i, cells in enumerate(rb.in_coords):
                    in_off = rb.in_offsets[i][: take + 1]
                    rb_in += _segmented_nbytes(
                        C.pack_coords(cells[: in_off[-1]], in_shapes[i]), in_off
                    )
                sampled += take
            scale = total_rb / sampled
            in_bytes += int(rb_in * scale)
            out_bytes += int(rb_out * scale)
        arity = max(1, len(in_shapes))
        in_bytes += n_elem * arity * _SINGLETON_BYTES
        out_bytes += n_elem * _SINGLETON_BYTES
        return in_bytes, out_bytes

    def record_store(
        self, node: str, strategy_label: str, write_seconds: float, disk_bytes: int
    ) -> None:
        stats = self.get(node)
        stats.write_seconds[strategy_label] = (
            stats.write_seconds.get(strategy_label, 0.0) + write_seconds
        )
        stats.disk_bytes[strategy_label] = disk_bytes

    # -- query-side hooks ----------------------------------------------------------

    def record_reexec(self, node: str, seconds: float) -> None:
        stats = self.get(node)
        if stats.reexec_seconds is None:
            stats.reexec_seconds = seconds
        else:  # exponential moving average keeps estimates fresh
            stats.reexec_seconds = 0.5 * stats.reexec_seconds + 0.5 * seconds

    def record_query(self, node: str, strategy_label: str, seconds: float) -> None:
        stats = self.get(node)
        prev = stats.observed_query_seconds.get(strategy_label)
        if prev is None:
            stats.observed_query_seconds[strategy_label] = seconds
        else:
            stats.observed_query_seconds[strategy_label] = 0.5 * prev + 0.5 * seconds

    def record_serving(self, snapshot: dict[str, int]) -> None:
        """Record the catalog cache's counters (cumulative snapshot, not a
        delta) as reported after a query finishes."""
        self.serving = dict(snapshot)

    # -- capture-side hooks ------------------------------------------------------

    def record_capture(self, seconds: float, pairs: int, nbytes: int) -> None:
        """Account one node's foreground deferred-capture work: descriptor
        recording time plus the pairs/bytes parked for background encoding."""
        self.capture["capture_seconds"] += seconds
        self.capture["deferred_pairs"] += int(pairs)
        self.capture["deferred_bytes"] += int(nbytes)

    def record_encode_thread(self, seconds: float) -> None:
        """Account time the pipelined-flush worker spent lowering deferred
        descriptors into the per-strategy stores."""
        self.capture["encode_thread_seconds"] += seconds

    # -- maintenance-side hooks --------------------------------------------------

    def record_maintenance(
        self, compactions: int, bytes_merged: int, seconds: float
    ) -> None:
        """Account one background-maintenance slice: compactions completed,
        segment bytes rewritten by the merge, wall time spent."""
        self.maintenance["compactions_run"] += int(compactions)
        self.maintenance["bytes_merged"] += int(bytes_merged)
        self.maintenance["maintenance_seconds"] += seconds

    # -- persistence ------------------------------------------------------------
    #
    # Profiling a big workflow is expensive; persisting the collector lets a
    # later session optimize without re-profiling.

    def save(self, path: str) -> None:
        import dataclasses
        import json
        import os

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        payload = {
            node: dataclasses.asdict(stats) for node, stats in self._stats.items()
        }
        for entry in payload.values():
            entry["input_sizes"] = list(entry["input_sizes"])
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "StatsCollector":
        import json

        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        collector = cls()
        for node, entry in payload.items():
            entry["input_sizes"] = tuple(entry["input_sizes"])
            collector._stats[node] = OperatorStats(**entry)
        return collector
