"""Region lineage data model: region pairs, batches, frontiers, query paths.

Region lineage (§IV-c) represents lineage as *region pairs* — an all-to-all
relationship between a set of output cells and a set of input cells per
input array.  Payload pairs replace the input cells with a small opaque blob
that a payload function (``map_p``) expands back into input cells at query
time (§V-A.3).

Operators emit pairs through the :class:`LineageSink` API.  Two *batch*
forms exist so hot loops (e.g. one pair per pixel across a megapixel image)
can hand the runtime whole coordinate arrays instead of a million Python
objects; a batch row ``i`` denotes its own independent region pair.

The query executor tracks intermediate results as a :class:`Frontier` — the
paper's in-memory boolean array with one bit per cell, which deduplicates
for free and makes "all bits set" checks cheap (§VI-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arrays import coords as C
from repro.errors import LineageError, QueryError

__all__ = [
    "RegionPair",
    "ElementwiseBatch",
    "PayloadBatch",
    "RegionBatch",
    "LineageSink",
    "BufferSink",
    "Frontier",
    "Direction",
    "QueryStep",
    "LineageQuery",
]


@dataclass(frozen=True)
class RegionPair:
    """All-to-all lineage between ``outcells`` and per-input ``incells``.

    Exactly one of ``incells`` / ``payload`` is set: full pairs carry the
    input cells themselves, payload pairs carry the developer's blob.
    """

    outcells: np.ndarray  # (n_out, ndim_out)
    incells: tuple[np.ndarray, ...] | None = None
    payload: bytes | None = None

    def __post_init__(self) -> None:
        if (self.incells is None) == (self.payload is None):
            raise LineageError("a region pair carries either input cells or a payload")
        if self.outcells.ndim != 2 or self.outcells.shape[0] == 0:
            raise LineageError("a region pair needs at least one output cell")

    @property
    def is_payload(self) -> bool:
        return self.payload is not None

    def fanin(self, input_idx: int = 0) -> int:
        if self.incells is None:
            raise LineageError("payload pairs have no materialised input cells")
        return int(self.incells[input_idx].shape[0])

    @property
    def fanout(self) -> int:
        return int(self.outcells.shape[0])


@dataclass(frozen=True)
class ElementwiseBatch:
    """``n`` one-to-one region pairs: row ``i`` of ``outcells`` depends on
    row ``i`` of each ``incells`` array."""

    outcells: np.ndarray  # (n, ndim_out)
    incells: tuple[np.ndarray, ...]  # each (n, ndim_in_i)

    def __post_init__(self) -> None:
        n = self.outcells.shape[0]
        for arr in self.incells:
            if arr.shape[0] != n:
                raise LineageError("elementwise batch arrays must align row-wise")

    @property
    def count(self) -> int:
        return int(self.outcells.shape[0])


@dataclass(frozen=True)
class PayloadBatch:
    """``n`` payload pairs: output cell ``i`` carries ``payloads[i]``.

    ``payloads`` may be a list of byte strings or a ``(n, w)`` uint8 array
    for fixed-width payloads (the fast path).
    """

    outcells: np.ndarray  # (n, ndim_out)
    payloads: list[bytes] | np.ndarray

    def __post_init__(self) -> None:
        n = self.outcells.shape[0]
        if isinstance(self.payloads, np.ndarray):
            if self.payloads.ndim != 2 or self.payloads.shape[0] != n:
                raise LineageError("fixed-width payloads must be a (n, w) uint8 array")
        elif len(self.payloads) != n:
            raise LineageError("payload list must align with output cells")

    @property
    def count(self) -> int:
        return int(self.outcells.shape[0])

    def payload_at(self, i: int) -> bytes:
        if isinstance(self.payloads, np.ndarray):
            return self.payloads[i].tobytes()
        return self.payloads[i]


@dataclass(frozen=True)
class RegionBatch:
    """``n`` independent region pairs in columnar form.

    Pair ``i`` relates ``out_coords[out_offsets[i]:out_offsets[i+1]]`` to
    either ``in_coords[k][in_offsets[k][i]:in_offsets[k][i+1]]`` per input
    ``k`` (full pairs) or ``payloads[payload_offsets[i]:payload_offsets[i+1]]``
    (payload pairs).  This is the deferred-materialisation descriptor: one
    batch carries thousands of pairs with zero per-pair Python objects, and
    the stores lower it to codecs/hash tables in whole-array passes.
    """

    out_coords: np.ndarray  # (K, ndim_out) int64
    out_offsets: np.ndarray  # (n+1,) int64, monotone, [0] == 0
    in_coords: tuple[np.ndarray, ...] | None = None  # per input: (M_k, ndim_k)
    in_offsets: tuple[np.ndarray, ...] | None = None  # per input: (n+1,)
    payloads: bytes | None = None  # concatenated pair payloads
    payload_offsets: np.ndarray | None = None  # (n+1,)

    def __post_init__(self) -> None:
        if (self.in_coords is None) == (self.payloads is None):
            raise LineageError("a region batch carries either input cells or payloads")
        if self.out_offsets.ndim != 1 or self.out_offsets.size == 0:
            raise LineageError("region batch offsets must be non-empty 1-D arrays")
        n = self.out_offsets.size - 1
        if int(self.out_offsets[0]) != 0 or int(self.out_offsets[-1]) != len(
            self.out_coords
        ):
            raise LineageError("region batch out_offsets do not cover out_coords")
        if (np.diff(self.out_offsets) < 1).any():
            raise LineageError("every region pair needs at least one output cell")
        if self.in_coords is not None:
            if self.in_offsets is None or len(self.in_offsets) != len(self.in_coords):
                raise LineageError("region batch needs one offset array per input")
            for arr, off in zip(self.in_coords, self.in_offsets):
                if off.size != n + 1 or int(off[0]) != 0 or int(off[-1]) != len(arr):
                    raise LineageError("region batch in_offsets do not cover in_coords")
        else:
            off = self.payload_offsets
            if off is None or off.size != n + 1 or int(off[0]) != 0 or int(
                off[-1]
            ) != len(self.payloads):
                raise LineageError("region batch payload_offsets do not cover payloads")

    @property
    def is_payload(self) -> bool:
        return self.payloads is not None

    @property
    def count(self) -> int:
        return int(self.out_offsets.size - 1)

    @property
    def arity(self) -> int:
        return len(self.in_coords) if self.in_coords is not None else 0

    def pair_at(self, i: int) -> RegionPair:
        """Materialise pair ``i`` as a :class:`RegionPair` (slow path)."""
        outcells = self.out_coords[int(self.out_offsets[i]) : int(self.out_offsets[i + 1])]
        if self.in_coords is not None:
            incells = tuple(
                arr[int(off[i]) : int(off[i + 1])]
                for arr, off in zip(self.in_coords, self.in_offsets)
            )
            return RegionPair(outcells=outcells, incells=incells)
        lo = int(self.payload_offsets[i])
        hi = int(self.payload_offsets[i + 1])
        return RegionPair(outcells=outcells, payload=self.payloads[lo:hi])


class LineageSink:
    """Receiver for an operator's ``lwrite`` calls (see Table I).

    The workflow runtime installs a buffering sink; the re-executor installs
    a capturing sink.  Subclasses override the ``add_*`` hooks;
    :meth:`add_region_batch` has a pair-decomposing default so existing
    custom sinks keep working with batch-emitting operators.
    """

    def add_pair(self, pair: RegionPair) -> None:
        raise NotImplementedError

    def add_elementwise(self, batch: ElementwiseBatch) -> None:
        raise NotImplementedError

    def add_payload_batch(self, batch: PayloadBatch) -> None:
        raise NotImplementedError

    def add_region_batch(self, batch: RegionBatch) -> None:
        for i in range(batch.count):
            self.add_pair(batch.pair_at(i))


@dataclass
class BufferSink(LineageSink):
    """In-memory sink used by the runtime and the re-executor."""

    pairs: list[RegionPair] = field(default_factory=list)
    elementwise: list[ElementwiseBatch] = field(default_factory=list)
    payload_batches: list[PayloadBatch] = field(default_factory=list)
    region_batches: list[RegionBatch] = field(default_factory=list)

    def add_pair(self, pair: RegionPair) -> None:
        self.pairs.append(pair)

    def add_elementwise(self, batch: ElementwiseBatch) -> None:
        self.elementwise.append(batch)

    def add_payload_batch(self, batch: PayloadBatch) -> None:
        self.payload_batches.append(batch)

    def add_region_batch(self, batch: RegionBatch) -> None:
        self.region_batches.append(batch)

    @property
    def n_pairs(self) -> int:
        return (
            len(self.pairs)
            + sum(b.count for b in self.elementwise)
            + sum(b.count for b in self.payload_batches)
            + sum(b.count for b in self.region_batches)
        )

    def clear(self) -> None:
        self.pairs.clear()
        self.elementwise.clear()
        self.payload_batches.clear()
        self.region_batches.clear()


class Frontier:
    """Deduplicating set of cells over one array, backed by a boolean mask."""

    __slots__ = ("shape", "_mask")

    def __init__(self, shape: Sequence[int], mask: np.ndarray | None = None):
        self.shape = tuple(int(s) for s in shape)
        if mask is None:
            self._mask = np.zeros(self.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != self.shape:
                raise QueryError(f"mask shape {mask.shape} != frontier shape {self.shape}")
            self._mask = mask

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_coords(cls, coords: np.ndarray, shape: Sequence[int]) -> "Frontier":
        frontier = cls(shape)
        frontier.add_coords(coords)
        return frontier

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Frontier":
        return cls(shape, mask=np.ones(tuple(shape), dtype=bool))

    # -- mutation ---------------------------------------------------------------

    def add_coords(self, coords: np.ndarray) -> None:
        arr = C.validate_coords(coords, self.shape)
        if arr.shape[0]:
            self._mask[tuple(arr.T)] = True

    def add_packed(self, packed: np.ndarray) -> None:
        if packed.size:
            self._mask.reshape(-1)[packed] = True

    def add_mask(self, mask: np.ndarray) -> None:
        self._mask |= mask

    def set_all(self) -> None:
        self._mask[...] = True

    # -- views ------------------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        return self._mask

    def coords(self) -> np.ndarray:
        return C.mask_to_coords(self._mask)

    def packed(self) -> np.ndarray:
        return np.nonzero(self._mask.reshape(-1))[0].astype(np.int64)

    @property
    def count(self) -> int:
        return int(self._mask.sum())

    @property
    def is_empty(self) -> bool:
        return not self._mask.any()

    @property
    def is_full(self) -> bool:
        return bool(self._mask.all())

    def __contains__(self, coord) -> bool:
        arr = C.validate_coords(np.asarray([coord]), self.shape)
        return bool(self._mask[tuple(arr[0])])

    def __repr__(self) -> str:
        return f"Frontier(shape={self.shape}, count={self.count})"


class Direction(enum.Enum):
    """Lineage query direction (§IV)."""

    BACKWARD = "backward"
    FORWARD = "forward"


@dataclass(frozen=True)
class QueryStep:
    """One hop of a query path: an operator node and which of its inputs the
    path passes through (``idx`` in the paper's notation)."""

    node: str
    input_idx: int = 0


@dataclass(frozen=True)
class LineageQuery:
    """``execute_query(C, ((P1, idx1), ..., (Pm, idxm)))`` from §IV.

    ``cells`` index the starting array: the output of ``path[0]`` for
    backward queries, or input ``path[0].input_idx`` of that node for
    forward queries.
    """

    cells: np.ndarray
    path: tuple[QueryStep, ...]
    direction: Direction

    def __post_init__(self) -> None:
        if not self.path:
            raise QueryError("a lineage query needs a non-empty operator path")
        object.__setattr__(self, "cells", C.as_coord_array(self.cells))
        object.__setattr__(
            self,
            "path",
            tuple(
                step if isinstance(step, QueryStep) else QueryStep(*step)
                for step in self.path
            ),
        )
