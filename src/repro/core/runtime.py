"""The lineage runtime: strategy assignment, sinks, encoding, accounting.

This is the architecture's *Runtime* box (§III): operators send lineage to
it as they process data; it buffers region pairs, encodes them via the
strategy-specific stores, and forwards statistics to the collector that
feeds the optimizer.
"""

from __future__ import annotations

import time

from repro.core.lineage_store import OpLineageStore, make_store
from repro.core.model import BufferSink
from repro.core.modes import BLACKBOX, LineageMode, StorageStrategy
from repro.core.stats import StatsCollector
from repro.errors import LineageError
from repro.ops.base import Operator

__all__ = ["LineageRuntime"]

# Modes that require the operator to execute its lineage-recording code.
_PAIR_MODES = (LineageMode.FULL, LineageMode.PAY, LineageMode.COMP)


class LineageRuntime:
    """Owns every per-(node, strategy) lineage store for one workflow run."""

    def __init__(self, stats: StatsCollector | None = None, profile: bool = False):
        self.stats = stats if stats is not None else StatsCollector()
        #: when True, operators are asked to emit every pair form they can,
        #: the statistics are recorded, and nothing is stored — the paper's
        #: initial black-box phase that feeds the optimizer.
        self.profile = profile
        self._strategies: dict[str, tuple[StorageStrategy, ...]] = {}
        self._stores: dict[tuple[str, StorageStrategy], OpLineageStore] = {}

    # -- strategy assignment ---------------------------------------------------

    def set_strategies(self, node: str, strategies) -> None:
        """Assign the storage strategies for ``node`` (next run applies them)."""
        if isinstance(strategies, StorageStrategy):
            strategies = (strategies,)
        deduped: list[StorageStrategy] = []
        for strategy in strategies:
            if strategy not in deduped:
                deduped.append(strategy)
        self._strategies[node] = tuple(deduped)

    def apply_plan(self, plan: dict[str, list[StorageStrategy]]) -> None:
        for node, strategies in plan.items():
            self.set_strategies(node, strategies)

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        """Assigned strategies; black-box is always implicitly available."""
        return self._strategies.get(node, (BLACKBOX,))

    def validate_against(self, node: str, op: Operator) -> None:
        supported = op.supported_modes() | {LineageMode.BLACKBOX}
        for strategy in self.strategies_for(node):
            if strategy.mode not in supported:
                raise LineageError(
                    f"node {node!r}: operator does not support mode "
                    f"{strategy.mode} (supported: {sorted(m.value for m in supported)})"
                )

    # -- run-time hooks used by the workflow executor -----------------------------

    def cur_modes(self, node: str, op: Operator) -> frozenset[LineageMode]:
        """The ``cur_modes`` argument for this node's ``run()`` call."""
        if self.profile:
            modes = op.supported_modes() & set(_PAIR_MODES)
            return frozenset(modes) if modes else frozenset({LineageMode.BLACKBOX})
        modes = {
            s.mode for s in self.strategies_for(node) if s.mode in _PAIR_MODES
        }
        return frozenset(modes) if modes else frozenset({LineageMode.BLACKBOX})

    def prepare_node(self, node: str, op: Operator) -> None:
        """Create the stores for a node once its schemas are bound."""
        self.validate_against(node, op)
        for strategy in self.strategies_for(node):
            if not strategy.stores_pairs:
                continue
            key = (node, strategy)
            self._stores[key] = make_store(
                node, strategy, op.output_shape, op.input_shapes
            )

    def ingest(
        self,
        node: str,
        sink: BufferSink,
        out_shape: tuple[int, ...] | None = None,
        in_shapes: tuple[tuple[int, ...], ...] | None = None,
    ) -> float:
        """Encode everything an operator emitted; returns seconds spent.

        When the executor passes the operator's array shapes, the stats
        collector also prices a sample of the pairs through the codec layer
        so the optimizer later budgets against compressed footprints.
        """
        self.stats.record_sink(node, sink, out_shape=out_shape, in_shapes=in_shapes)
        if self.profile:
            return 0.0
        total = 0.0
        for strategy in self.strategies_for(node):
            store = self._stores.get((node, strategy))
            if store is None:
                continue
            start = time.perf_counter()
            store.ingest(sink)
            store.finalize_if_possible()
            elapsed = time.perf_counter() - start
            store.write_seconds += elapsed
            total += elapsed
            self.stats.record_store(
                node, strategy.label, elapsed, store.disk_bytes()
            )
        return total

    # -- query-side accessors ---------------------------------------------------------

    def store_for(self, node: str, strategy: StorageStrategy) -> OpLineageStore | None:
        return self._stores.get((node, strategy))

    def stores_for_node(self, node: str) -> list[OpLineageStore]:
        return [
            store for (n, _), store in self._stores.items() if n == node
        ]

    # -- accounting ---------------------------------------------------------------------

    def total_disk_bytes(self) -> int:
        return sum(store.disk_bytes() for store in self._stores.values())

    def disk_bytes_by_node(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (node, _), store in self._stores.items():
            out[node] = out.get(node, 0) + store.disk_bytes()
        return out

    def total_write_seconds(self) -> float:
        return sum(store.write_seconds for store in self._stores.values())

    def clear_stores(self) -> None:
        self._stores.clear()

    # -- persistence --------------------------------------------------------------------

    @staticmethod
    def _store_dirname(node: str, strategy: StorageStrategy) -> str:
        parts = [node, strategy.mode.value]
        if strategy.encoding is not None:
            parts.append(strategy.encoding.value)
        if strategy.orientation is not None:
            parts.append(strategy.orientation.value)
        return "__".join(parts)

    def flush_all(self, directory: str) -> int:
        """Persist every lineage store under ``directory`` with a manifest;
        returns total bytes written.  Region lineage stays a cache — this
        just lets a later session skip rebuilding it."""
        import json
        import os

        os.makedirs(directory, exist_ok=True)
        manifest = []
        total = 0
        for (node, strategy), store in self._stores.items():
            sub = self._store_dirname(node, strategy)
            total += store.flush_to(os.path.join(directory, sub))
            manifest.append(
                {
                    "node": node,
                    "mode": strategy.mode.value,
                    "encoding": strategy.encoding.value if strategy.encoding else None,
                    "orientation": (
                        strategy.orientation.value if strategy.orientation else None
                    ),
                    "out_shape": list(store.out_shape),
                    "in_shapes": [list(s) for s in store.in_shapes],
                    "dir": sub,
                }
            )
        with open(os.path.join(directory, "manifest.json"), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        return total

    def load_all(self, directory: str) -> int:
        """Recreate every store recorded in ``directory``'s manifest."""
        import json
        import os

        from repro.core.lineage_store import make_store
        from repro.core.modes import EncodingKind, Orientation

        with open(os.path.join(directory, "manifest.json"), encoding="utf-8") as fh:
            manifest = json.load(fh)
        loaded = 0
        for entry in manifest:
            strategy = StorageStrategy(
                mode=LineageMode(entry["mode"]),
                encoding=EncodingKind(entry["encoding"]) if entry["encoding"] else None,
                orientation=(
                    Orientation(entry["orientation"]) if entry["orientation"] else None
                ),
            )
            store = make_store(
                entry["node"],
                strategy,
                tuple(entry["out_shape"]),
                tuple(tuple(s) for s in entry["in_shapes"]),
            )
            store.load_from(os.path.join(directory, entry["dir"]))
            self._stores[(entry["node"], strategy)] = store
            existing = self._strategies.get(entry["node"], ())
            if strategy not in existing:
                self._strategies[entry["node"]] = existing + (strategy,)
            loaded += 1
        return loaded
