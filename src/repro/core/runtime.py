"""The lineage runtime: strategy assignment, sinks, encoding, accounting.

This is the architecture's *Runtime* box (§III): operators send lineage to
it as they process data; it buffers region pairs, encodes them via the
strategy-specific stores, and forwards statistics to the collector that
feeds the optimizer.
"""

from __future__ import annotations

import time

from repro.analysis import lockcheck
from repro.core.capture import CapturePipeline, DeferredSink, sink_nbytes
from repro.core.lineage_store import OpLineageStore, make_store
from repro.core.model import BufferSink
from repro.core.modes import BLACKBOX, LineageMode, StorageStrategy
from repro.core.stats import StatsCollector
from repro.errors import LineageError
from repro.ops.base import Operator

__all__ = ["LineageRuntime"]

# Modes that require the operator to execute its lineage-recording code.
_PAIR_MODES = (LineageMode.FULL, LineageMode.PAY, LineageMode.COMP)


class LineageRuntime:
    """Owns every per-(node, strategy) lineage store for one workflow run."""

    def __init__(
        self,
        stats: StatsCollector | None = None,
        profile: bool = False,
        deferred: bool = False,
    ):
        self.stats = stats if stats is not None else StatsCollector()
        #: when True, operators are asked to emit every pair form they can,
        #: the statistics are recorded, and nothing is stored — the paper's
        #: initial black-box phase that feeds the optimizer.
        self.profile = profile
        #: when True, :meth:`ingest` parks each node's sink and lowers it on
        #: the background encode worker instead of encoding in the workflow
        #: thread (deferred materialisation; see :mod:`repro.core.capture`)
        self.deferred = deferred
        self._capture = CapturePipeline()
        self._strategies: dict[str, tuple[StorageStrategy, ...]] = {}
        self._stores: dict[tuple[str, StorageStrategy], OpLineageStore] = {}
        #: lazy-open view over a flushed workflow (attached by load_all);
        #: stores it records are opened on first access via store_for
        self._catalog = None

    # -- strategy assignment ---------------------------------------------------

    def set_strategies(self, node: str, strategies) -> None:
        """Assign the storage strategies for ``node`` (next run applies them)."""
        if isinstance(strategies, StorageStrategy):
            strategies = (strategies,)
        deduped: list[StorageStrategy] = []
        for strategy in strategies:
            if strategy not in deduped:
                deduped.append(strategy)
        self._strategies[node] = tuple(deduped)

    def apply_plan(self, plan: dict[str, list[StorageStrategy]]) -> None:
        for node, strategies in plan.items():
            self.set_strategies(node, strategies)

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        """Assigned strategies; black-box is always implicitly available."""
        return self._strategies.get(node, (BLACKBOX,))

    def validate_against(self, node: str, op: Operator) -> None:
        supported = op.supported_modes() | {LineageMode.BLACKBOX}
        for strategy in self.strategies_for(node):
            if strategy.mode not in supported:
                raise LineageError(
                    f"node {node!r}: operator does not support mode "
                    f"{strategy.mode} (supported: {sorted(m.value for m in supported)})"
                )

    # -- run-time hooks used by the workflow executor -----------------------------

    def cur_modes(self, node: str, op: Operator) -> frozenset[LineageMode]:
        """The ``cur_modes`` argument for this node's ``run()`` call."""
        if self.profile:
            modes = op.supported_modes() & set(_PAIR_MODES)
            return frozenset(modes) if modes else frozenset({LineageMode.BLACKBOX})
        modes = {
            s.mode for s in self.strategies_for(node) if s.mode in _PAIR_MODES
        }
        return frozenset(modes) if modes else frozenset({LineageMode.BLACKBOX})

    def prepare_node(self, node: str, op: Operator) -> None:
        """Create the stores for a node once its schemas are bound."""
        self.validate_against(node, op)
        for strategy in self.strategies_for(node):
            if not strategy.stores_pairs:
                continue
            key = (node, strategy)
            self._stores[key] = make_store(
                node, strategy, op.output_shape, op.input_shapes
            )

    def make_sink(self) -> BufferSink:
        """The sink the executor should install for one node's run —
        a :class:`DeferredSink` in deferred mode so the captured
        descriptors are recognisably parked for the background worker."""
        return DeferredSink() if self.deferred else BufferSink()

    def ingest(
        self,
        node: str,
        sink: BufferSink,
        out_shape: tuple[int, ...] | None = None,
        in_shapes: tuple[tuple[int, ...], ...] | None = None,
    ) -> float:
        """Encode everything an operator emitted; returns *foreground*
        seconds spent.

        Eager mode lowers the sink into every assigned store inline.
        Deferred mode records statistics, parks the sink, and submits the
        lowering to the background encode worker — the workflow thread pays
        only descriptor-recording time (``capture_seconds``), and the
        encode cost lands on ``encode_thread_seconds`` where it overlaps
        the next node's compute.

        When the executor passes the operator's array shapes, the stats
        collector also prices a sample of the pairs through the codec layer
        so the optimizer later budgets against compressed footprints.
        """
        start = time.perf_counter()
        if self.deferred and not self.profile:
            # counts only — the codec-priced footprint sampling runs real
            # encode passes and belongs on the background worker
            self.stats.record_sink(node, sink)
            stores = [
                (strategy, self._stores[(node, strategy)])
                for strategy in self.strategies_for(node)
                if (node, strategy) in self._stores
            ]
            if stores or (out_shape is not None and in_shapes is not None):
                self._capture.submit(
                    lambda: self._encode_sink(
                        node, stores, sink, out_shape, in_shapes
                    )
                )
            elapsed = time.perf_counter() - start
            self.stats.record_capture(elapsed, sink.n_pairs, sink_nbytes(sink))
            return elapsed
        self.stats.record_sink(node, sink, out_shape=out_shape, in_shapes=in_shapes)
        if self.profile:
            return 0.0
        total = 0.0
        for strategy in self.strategies_for(node):
            store = self._stores.get((node, strategy))
            if store is None:
                continue
            start = time.perf_counter()
            store.ingest(sink)
            store.finalize_if_possible()
            elapsed = time.perf_counter() - start
            store.write_seconds += elapsed
            total += elapsed
            self.stats.record_store(
                node, strategy.label, elapsed, store.disk_bytes()
            )
        return total

    def _encode_sink(
        self, node: str, stores, sink: BufferSink, out_shape, in_shapes
    ) -> None:
        """Background half of a deferred ingest: codec-price the sink for
        the optimizer, then lower one node's parked descriptors into every
        assigned store (runs on the single encode worker, preserving each
        store's single-writer contract)."""
        total = 0.0
        if out_shape is not None and in_shapes is not None:
            start = time.perf_counter()
            self.stats.price_sink(node, sink, out_shape, in_shapes)
            total += time.perf_counter() - start
        for strategy, store in stores:
            start = time.perf_counter()
            store.ingest(sink)
            store.finalize_if_possible()
            elapsed = time.perf_counter() - start
            store.write_seconds += elapsed
            total += elapsed
            self.stats.record_store(
                node, strategy.label, elapsed, store.disk_bytes()
            )
        self.stats.record_encode_thread(total)

    def drain_capture(self) -> None:
        """Join every in-flight background encode/flush job; re-raises the
        first failure (typically a :class:`~repro.errors.StorageError`).
        Cheap no-op when nothing was ever deferred."""
        self._capture.drain()

    # -- query-side accessors ---------------------------------------------------------

    @property
    def catalog(self):
        """The attached :class:`~repro.core.catalog.StoreCatalog`, or None."""
        return self._catalog

    def session(self):
        """A :class:`~repro.core.query.QuerySession` over this runtime:
        catalog-backed stores borrowed through it are pinned (never evicted
        mid-read) until the session closes."""
        from repro.core.query import QuerySession

        return QuerySession(self)

    def resident_store(
        self, node: str, strategy: StorageStrategy
    ) -> OpLineageStore | None:
        """The in-memory (ingested or legacy-loaded) store only — never
        opens anything from the catalog."""
        return self._stores.get((node, strategy))

    def store_for(self, node: str, strategy: StorageStrategy) -> OpLineageStore | None:
        """The store serving (node, strategy) — opened lazily from the
        attached catalog on first access when not resident.

        Catalog stores are cached *in the catalog* (subject to its 2Q
        eviction budget), not copied into the runtime, so this method never mutates
        runtime state.  Readers that must survive eviction (concurrent
        serving) should borrow through :meth:`session` instead."""
        store = self._stores.get((node, strategy))
        if store is None and self._catalog is not None:
            store = self._catalog.open_store(node, strategy)
        return store

    def store_resident(self, node: str, strategy: StorageStrategy) -> bool:
        """True when a query on (node, strategy) needs no segment (re)open:
        the store is in memory, or currently open in the catalog cache."""
        if (node, strategy) in self._stores:
            return True
        return self._catalog is not None and self._catalog.is_open(node, strategy)

    def reopen_bytes(self, node: str, strategy: StorageStrategy) -> int:
        """Segment bytes a query would have to (re)map before serving this
        store — 0 when resident, the manifest size when the store is only
        on disk (never opened, or evicted).  Feeds the cost model's
        reopen-after-evict pricing."""
        if self.store_resident(node, strategy):
            return 0
        if self._catalog is not None:
            return self._catalog.manifest_bytes(node, strategy)
        return 0

    def partition_fanout(self, node: str) -> int:
        """How many catalog partitions a read on ``node`` must probe — 1
        for a monolithic (or no) catalog, the owning partition or the
        broadcast width for a partitioned one.  Feeds the cost model's
        scatter fan-out pricing."""
        fanout = getattr(self._catalog, "partition_fanout", None)
        if fanout is None:
            return 1
        return fanout(node)

    def serving_stats(self) -> dict[str, int]:
        """The catalog cache's hit/miss/evict/open-mapping counters (zeros
        when no catalog is attached; a partitioned catalog adds its
        scatter/probe counters), plus the lock-order validator's
        counters — all zero unless ``REPRO_LOCKCHECK=1`` instrumented the
        locks (see :mod:`repro.analysis.lockcheck`) — plus the deferred-
        capture counters (capture/encode-thread seconds, parked pairs and
        bytes), plus the generation-filter and background-maintenance
        counters."""
        if self._catalog is not None:
            stats = self._catalog.stats()
        else:
            stats = {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "open_mappings": 0,
                "resident_bytes": 0,
                "filter_probes": 0,
                "generations_skipped": 0,
                "bloom_fp": 0,
            }
        stats.update(lockcheck.stats())
        stats.update(self.stats.capture)
        stats.update(self.stats.maintenance)
        return stats

    def stores_for_node(self, node: str) -> list[OpLineageStore]:
        """Resident stores only — catalog entries stay unopened (use
        :meth:`store_for` per strategy to materialise one deliberately)."""
        return [
            store for (n, _), store in self._stores.items() if n == node
        ]

    def lowered_ready(self, node: str, strategy: StorageStrategy) -> bool:
        """True when (node, strategy)'s mismatched scans would run off warm
        lowered tables — resident-and-cached, or persisted in the catalog's
        segment.  Answered without opening anything."""
        store = self._stores.get((node, strategy))
        if store is not None:
            return store.lowered_ready()
        if self._catalog is not None:
            return self._catalog.lowered_ready(node, strategy)
        return False

    def filters_ready(self, node: str, strategy: StorageStrategy) -> bool:
        """True when a catalog-served overlay of (node, strategy) can skip
        non-owning generations via persisted key filters.  Resident stores
        answer False: they are a single generation, nothing to skip."""
        if (node, strategy) in self._stores:
            return False
        if self._catalog is not None:
            return self._catalog.filters_ready(node, strategy)
        return False

    def generation_count(self, node: str, strategy: StorageStrategy) -> int:
        """How many catalog generations a query on (node, strategy) must
        overlay — 1 for resident or compacted stores.  Feeds the cost
        model's read-amplification pricing, answered from the manifest."""
        if (node, strategy) in self._stores:
            return 1
        if self._catalog is not None:
            return max(1, self._catalog.generation_count(node, strategy))
        return 1

    # -- accounting ---------------------------------------------------------------------
    #
    # Catalog-backed stores always report their manifest (segment file)
    # size — opened or not — so the totals neither force a segment open
    # nor drift as queries lazily open or the cache evicts stores; resident
    # stores report their logical footprint.

    def total_disk_bytes(self) -> int:
        total = sum(store.disk_bytes() for store in self._stores.values())
        if self._catalog is not None:
            total += sum(
                entry.nbytes
                for entry in self._catalog.entries()
                if entry.key not in self._stores
            )
        return total

    def disk_bytes_by_node(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for key, store in self._stores.items():
            out[key[0]] = out.get(key[0], 0) + store.disk_bytes()
        if self._catalog is not None:
            for entry in self._catalog.entries():
                if entry.key not in self._stores:
                    out[entry.node] = out.get(entry.node, 0) + entry.nbytes
        return out

    def total_write_seconds(self) -> float:
        return sum(store.write_seconds for store in self._stores.values())

    def clear_stores(self) -> None:
        self.close()
        self._stores.clear()

    def close(self) -> None:
        """Stop the background encode worker (re-raising the first failure
        a background job parked), then release every mapping this runtime
        holds open: the catalog's open-store cache, and any resident store
        hydrated straight from a segment.  Mappings are released even when
        a background encode failed — the failure propagates afterwards."""
        try:
            self._capture.close()
        finally:
            if self._catalog is not None:
                self._catalog.close()
                self._catalog = None
            for store in self._stores.values():
                if store._segment is not None:
                    store.close()

    def __enter__(self) -> "LineageRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- persistence --------------------------------------------------------------------

    def flush_all(
        self,
        directory: str,
        shard_threshold_bytes: int | None = None,
        append: bool = False,
        partitions=None,
    ) -> int:
        """Drain any in-flight background encodes, then persist every
        lineage store (see :meth:`_flush_all_now` for the write itself);
        returns total bytes written."""
        self.drain_capture()
        return self._flush_all_now(
            directory,
            shard_threshold_bytes=shard_threshold_bytes,
            append=append,
            partitions=partitions,
        )

    def flush_all_async(
        self,
        directory: str,
        shard_threshold_bytes: int | None = None,
        append: bool = False,
        partitions=None,
    ):
        """Queue the flush on the background encode worker and return its
        :class:`~concurrent.futures.Future` (resolving to bytes written).

        The worker is a single FIFO thread, so the flush job necessarily
        runs *after* every encode submitted before it — no drain is needed
        (and draining inside the job would self-join).  The caller must
        eventually observe the future (``SubZero.close`` joins pending
        flushes), at which point any :class:`~repro.errors.StorageError`
        re-raises."""
        return self._capture.submit(
            lambda: self._flush_all_now(
                directory,
                shard_threshold_bytes=shard_threshold_bytes,
                append=append,
                partitions=partitions,
            )
        )

    def _flush_all_now(
        self,
        directory: str,
        shard_threshold_bytes: int | None = None,
        append: bool = False,
        partitions=None,
    ) -> int:
        """Persist every lineage store under ``directory`` as one segment
        each (lowered batch-scan tables included; sharded into
        ``.seg.0..k`` files above ``shard_threshold_bytes`` when given)
        plus a workflow manifest (``catalog.json``); returns total bytes
        written.  Region lineage stays a cache — this just lets a later
        session serve it straight off disk instead of rebuilding it.

        ``append=True`` turns the flush incremental: only the *resident*
        stores (this run's lineage) are written, as delta generations of
        whatever catalog already lives at ``directory`` — committed
        segments are never rewritten, so the cost is O(delta), not
        O(catalog).  A later ``load_all`` overlays the generations;
        :meth:`~repro.core.catalog.StoreCatalog.compact` merges them back.
        An attached catalog for the same directory is appended in place
        (its open records are retired so new borrows see the delta).

        When a catalog is attached and ``append`` is False, its entries
        that no query has opened yet are borrowed (pinned) *one at a time*
        as the writer reaches them, so a lazy ``load_all`` followed by a
        ``flush_all`` is lossless, a cache eviction racing the flush can
        never close a store mid-write, and peak resident bytes overshoot
        the memory budget by at most one store rather than the whole
        workflow.  A multi-generation catalog entry is re-flushed as its
        merged (compacted) segment.

        ``partitions`` (an int or a node→partition-id mapping) splits the
        flush into a :class:`~repro.storage.partition.PartitionedCatalog`
        root instead of one monolithic catalog; omitted, a full flush over
        an attached partitioned catalog to its own directory preserves the
        existing layout, and ``append=True`` to a partitioned root routes
        each delta to its owning partition (``partitions`` itself cannot
        combine with ``append`` — appends never re-partition)."""
        import os

        from repro.core.catalog import StoreCatalog
        from repro.storage.partition import PartitionedCatalog, is_partitioned_root

        resident = dict(self._stores)
        catalog = self._catalog

        if append:
            if partitions is not None:
                raise LineageError(
                    "append=True cannot re-partition; flush the catalog fresh "
                    "with partitions=... instead"
                )
            if catalog is not None and os.path.abspath(
                catalog.directory
            ) == os.path.abspath(directory):
                return catalog.append_stores(
                    resident, shard_threshold_bytes=shard_threshold_bytes
                )
            if is_partitioned_root(directory):
                root = PartitionedCatalog.open(directory)
                try:
                    return root.append_stores(
                        resident, shard_threshold_bytes=shard_threshold_bytes
                    )
                finally:
                    root.close()
            appended, total = StoreCatalog.append(
                directory, resident, shard_threshold_bytes=shard_threshold_bytes
            )
            appended.close()
            return total

        if partitions is None and catalog is not None and hasattr(
            catalog, "node_map"
        ) and os.path.abspath(catalog.directory) == os.path.abspath(directory):
            # re-flushing a partitioned root onto itself keeps its layout
            partitions = catalog.node_map()

        class _Stores:
            """One-at-a-time borrowing view consumed by StoreCatalog.write."""

            @staticmethod
            def items():
                yield from resident.items()
                if catalog is None:
                    return
                for key in catalog.keys():
                    if key in resident:
                        continue
                    record = catalog.borrow(*key)
                    if record is None:
                        continue
                    try:
                        yield key, record.store
                    finally:
                        # runs as soon as the writer advances past this
                        # store (or abandons the iteration)
                        catalog.release(record)

        if partitions is not None:
            root, total = PartitionedCatalog.write(
                directory,
                _Stores(),
                partitions=partitions,
                shard_threshold_bytes=shard_threshold_bytes,
            )
            root.close()
            return total
        _, total = StoreCatalog.write(
            directory, _Stores(), shard_threshold_bytes=shard_threshold_bytes
        )
        return total

    def load_all(self, directory: str, memory_budget_bytes: int | None = None) -> int:
        """Attach the catalog flushed to ``directory``; returns the number
        of stores it records.

        Nothing is materialised here: the manifest alone is read, the
        recorded strategies are registered so the query planner sees them,
        and each store's segment is opened lazily (mmap-backed) the first
        time a query asks for it via :meth:`store_for` or a session.
        ``memory_budget_bytes`` bounds the catalog's open-store cache (2Q
        eviction); None keeps it unbounded.  A directory holding a
        ``partitions.json`` root manifest attaches as a
        :class:`~repro.storage.partition.PartitionedCatalog` (the budget is
        split across its partitions); directories flushed before the
        segmented format (a ``manifest.json`` with per-component ``.bin``
        files) still load, eagerly, via the legacy fallback."""
        import os

        from repro.core.catalog import MANIFEST_NAME, StoreCatalog
        from repro.storage.partition import PartitionedCatalog, is_partitioned_root

        if is_partitioned_root(directory):
            return self.attach_catalog(
                PartitionedCatalog.open(
                    directory, memory_budget_bytes=memory_budget_bytes
                )
            )
        if not os.path.exists(os.path.join(directory, MANIFEST_NAME)) and os.path.exists(
            os.path.join(directory, "manifest.json")
        ):
            return self._load_legacy_manifest(directory)
        return self.attach_catalog(
            StoreCatalog.open(directory, memory_budget_bytes=memory_budget_bytes)
        )

    def _load_legacy_manifest(self, directory: str) -> int:
        """Eagerly recreate every store of a pre-segment ``manifest.json``
        flush (the old directory-of-``.bin``-files layout)."""
        import json
        import os

        from repro.core.modes import EncodingKind, Orientation

        with open(os.path.join(directory, "manifest.json"), encoding="utf-8") as fh:
            manifest = json.load(fh)
        loaded = 0
        for entry in manifest:
            strategy = StorageStrategy(
                mode=LineageMode(entry["mode"]),
                encoding=EncodingKind(entry["encoding"]) if entry["encoding"] else None,
                orientation=(
                    Orientation(entry["orientation"]) if entry["orientation"] else None
                ),
            )
            store = make_store(
                entry["node"],
                strategy,
                tuple(entry["out_shape"]),
                tuple(tuple(s) for s in entry["in_shapes"]),
            )
            store.load_legacy_components(os.path.join(directory, entry["dir"]))
            self._stores[(entry["node"], strategy)] = store
            existing = self._strategies.get(entry["node"], ())
            if strategy not in existing:
                self._strategies[entry["node"]] = existing + (strategy,)
            loaded += 1
        return loaded

    def attach_catalog(self, catalog) -> int:
        """Serve queries from an already-open :class:`StoreCatalog`."""
        self._catalog = catalog
        for node, strategy in catalog.keys():
            existing = self._strategies.get(node, ())
            if strategy not in existing:
                self._strategies[node] = existing + (strategy,)
        return len(catalog)
