"""Source-agnostic read union over the live pieces of one lineage store.

A ``(node, strategy)`` key can be served by more than one physical store
at once, for two independent reasons:

* **Generations.**  An incremental flush (``flush_lineage(append=True)``)
  leaves the key split across the base segment plus one delta segment per
  appended run (``<name>.gen.<g>.seg``, see :mod:`repro.storage.segment`)
  until a compaction merges them.
* **Partitions.**  A partitioned catalog
  (:class:`~repro.storage.partition.PartitionedCatalog`) splits a
  workflow's lineage by node subset; a key that lands in several
  partitions (an explicit multi-assignment, or a re-mapped append) is
  served by one store per partition.

In both cases queries must see the *union* — lineage accumulates, it is
never overwritten — and :class:`OverlayStore` is that union view over any
list of :data:`LineageSource` members (oldest/lowest-precedence first).
It answers the whole read API by consulting all of them, newest first,
merging per-cell verdicts with OR and cell sets by concatenation.  The
merge code is deliberately unaware of *why* the key is split: a
generation overlay and a partition union run the identical paths (one
implementation, per the roadmap — not two parallel merge engines), and a
partition union whose members are themselves generation overlays simply
nests.

Design points:

* **Each source keeps its own indexes.**  Matched probes run one hash
  lookup / R-tree descent per source; mismatched scans run each
  source's vectorised :class:`~repro.storage.codecs.BatchProbe` pass
  over that source's (persisted) lowered tables.  Nothing is rebuilt
  at open time — that is what makes appends cheap — but every extra
  source adds a probe pass, which is the *read amplification* the cost
  model prices (:meth:`~repro.core.costmodel.CostModel.overlay_penalty_seconds`)
  and :meth:`~repro.core.catalog.StoreCatalog.compact` removes.
* **Payload scans pay the amplification most visibly**: the executor's
  columnar forward scan wants one ``(keys, koff, vbuf, voff)`` surface, so
  the overlay concatenates the sources' columns on first use (cached —
  sources are immutable once opened).
* The overlay is read-only: ingest/absorb go to the concrete layouts.  A
  full (non-append) re-flush of an overlay collapses it — the segment it
  writes is the compacted merge.

Query answers over an overlay are *set-identical* to the same lineage in
one store: every public read returns packed cell sets (or per-cell
verdicts) that the executor deduplicates, so concatenation across
sources is exact, even when sources overlap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import lockcheck
from repro.core.lineage_store import OpLineageStore, _concat, make_store

__all__ = ["FilterStats", "LineageSource", "OverlayStore"]

#: The union-member contract.  Anything that answers the
#: :class:`~repro.core.lineage_store.OpLineageStore` read API can be a
#: member of an :class:`OverlayStore`: a concrete single-segment store
#: (one generation, or one partition's compacted key), or another overlay
#: (a partition union over per-partition generation overlays nests).  The
#: alias exists so call sites can say what they mean — "a list of lineage
#: sources" — without caring which physical split produced them.
LineageSource = OpLineageStore


class FilterStats:
    """Shared counters for the overlay's source-skip filters.

    One instance is owned by the :class:`~repro.core.catalog.StoreCatalog`
    (or the partitioned root) and injected into every overlay it opens, so
    the serving stats see the whole process's filter effectiveness; a
    standalone overlay makes its own.  Counter names keep the historical
    ``generations_*`` spelling — generations are by far the common source
    kind — but a skipped partition member counts identically.  Counters
    accumulate once per read call (not per source) to keep the hot path
    to a single short lock acquisition.
    """

    __slots__ = ("_lock", "filter_probes", "generations_skipped", "bloom_fp")

    def __init__(self):
        self._lock = lockcheck.make_lock("overlay.filterstats")
        #: generation probes that had a filter to consult
        self.filter_probes = 0
        #: probes answered False — the generation's read was skipped
        self.generations_skipped = 0
        #: probes answered True whose read then matched nothing (bloom /
        #: zone false positives; the overlay read stayed correct, just paid)
        self.bloom_fp = 0

    def record(self, probes: int, skipped: int, fp: int) -> None:
        if not (probes or skipped or fp):
            return
        with self._lock:
            self.filter_probes += probes
            self.generations_skipped += skipped
            self.bloom_fp += fp

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "filter_probes": self.filter_probes,
                "generations_skipped": self.generations_skipped,
                "bloom_fp": self.bloom_fp,
            }


class _OverlaySegments:
    """Accounting/lifecycle shim standing in for a single segment handle.

    The serving cache charges an open store by ``store._segment``'s mapped
    bytes; an overlay's footprint is the sum of its sources' mappings
    (each of which may itself be a lazily-mapped sharded segment, or a
    nested overlay carrying this same shim).
    """

    __slots__ = ("_stores",)

    def __init__(self, stores: list[LineageSource]):
        self._stores = stores

    def mapped_bytes(self) -> int:
        total = 0
        for store in self._stores:
            seg = store._segment
            if seg is None:
                continue
            mapped = getattr(seg, "mapped_bytes", None)
            total += mapped() if mapped is not None else seg.nbytes
        return total


class OverlayStore(OpLineageStore):
    """Union view over one key's lineage sources (see module docstring).

    ``kind`` labels what split produced the sources — ``"generation"``
    (the catalog's delta overlay) or ``"partition"`` (a scatter-gather
    union over per-partition stores).  It changes nothing about the merge;
    it exists so diagnostics can say which union they are looking at.
    """

    def __init__(
        self,
        stores: list[LineageSource],
        filter_stats: FilterStats | None = None,
        kind: str = "generation",
    ):
        if not stores:
            raise ValueError("an overlay needs at least one source")
        first = stores[0]
        super().__init__(first.node, first.strategy, first.out_shape, first.in_shapes)
        for other in stores[1:]:
            self._check_absorb(other)
        #: the sources, oldest/lowest-precedence first (reads iterate
        #: newest first)
        self._sources: list[LineageSource] = list(stores)
        self.kind = kind
        self._segment = _OverlaySegments(self._sources)
        #: cached concatenation of the sources' payload columns
        self._merged_payload: tuple | None = None
        self._plock = lockcheck.make_lock("overlay.payload")
        #: source-skip counters (shared with the owning catalog)
        self._fstats = filter_stats if filter_stats is not None else FilterStats()

    # -- introspection -------------------------------------------------------

    @property
    def sources(self) -> int:
        """How many lineage sources this union consults."""
        return len(self._sources)

    def source_stores(self) -> list[LineageSource]:
        return list(self._sources)

    @property
    def generations(self) -> int:
        """Source count under its historical name (generation overlays)."""
        return len(self._sources)

    def generation_stores(self) -> list[LineageSource]:
        return list(self._sources)

    @property
    def _gens(self) -> list[LineageSource]:
        # pre-refactor internal name, kept readable for callers/tests that
        # still reach for it
        return self._sources

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._plock:
            self._segment = None
            self._merged_payload = None
        for store in self._sources:
            store.close()

    def finalize_if_possible(self) -> None:
        for store in self._sources:
            store.finalize_if_possible()

    def warm_lowered_tables(self) -> None:
        for store in self._sources:
            store.warm_lowered_tables()

    def lowered_ready(self) -> bool:
        return all(store.lowered_ready() for store in self._sources)

    def persists_filters(self) -> bool:
        # a flush of the overlay writes the merged concrete store, whose
        # layout is the generations' layout
        return self._sources[0].persists_filters()

    # -- writes are a layout concern ------------------------------------------

    def ingest(self, sink) -> None:
        raise NotImplementedError("OverlayStore is read-only; ingest into a run store")

    # -- persistence: a full flush collapses the overlay -----------------------

    def merged_store(self) -> OpLineageStore:
        """Materialise the union as one concrete store (the compaction
        product): a fresh layout-store absorbing every generation, oldest
        first, finalized and independent of the generations' mappings."""
        merged = make_store(self.node, self.strategy, self.out_shape, self.in_shapes)
        for store in self._sources:
            merged.absorb(store)
        merged.finalize_if_possible()
        return merged

    def flush_segment(
        self,
        path: str,
        shard_threshold_bytes: int | None = None,
        stale_sink: list | None = None,
    ) -> int:
        return self.merged_store().flush_segment(
            path,
            shard_threshold_bytes=shard_threshold_bytes,
            stale_sink=stale_sink,
        )

    # -- matched-orientation reads --------------------------------------------
    #
    # Every matched read consults each generation's persisted bloom/zone
    # filter (``filter_decision``) before touching it: a False is a proof
    # of absence, so the generation's probe is skipped outright — this is
    # what turns an O(generations) matched read back into ~O(1) on stores
    # whose deltas partition the key space.  A None (no filter: resident
    # store or pre-filter segment) always reads.  Counters accumulate once
    # per call on the shared :class:`FilterStats`.

    def backward_full(self, qpacked, only_input=None):
        qpacked = np.asarray(qpacked)
        matched = np.zeros(qpacked.size, dtype=bool)
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        probes = skipped = fp = 0
        for store in reversed(self._sources):
            decision = store.filter_decision("b", qpacked)
            if decision is not None:
                probes += 1
                if not decision:
                    skipped += 1
                    continue
            m, per = store.backward_full(qpacked, only_input=only_input)
            if decision and not m.any():
                fp += 1
            matched |= m
            for i, cells in enumerate(per):
                if cells.size:
                    per_input[i].append(cells)
        self._fstats.record(probes, skipped, fp)
        return matched, [_concat(parts) for parts in per_input]

    def forward_full(self, qpacked, input_idx):
        qpacked = np.asarray(qpacked)
        tag = f"f{input_idx}"
        parts: list[np.ndarray] = []
        probes = skipped = fp = 0
        for store in reversed(self._sources):
            decision = store.filter_decision(tag, qpacked)
            if decision is not None:
                probes += 1
                if not decision:
                    skipped += 1
                    continue
            cells = store.forward_full(qpacked, input_idx)
            if decision and cells.size == 0:
                fp += 1
            parts.append(cells)
        self._fstats.record(probes, skipped, fp)
        return _concat(parts)

    def backward_payload(self, qpacked):
        qpacked = np.asarray(qpacked)
        matched = np.zeros(qpacked.size, dtype=bool)
        pairs = []
        probes = skipped = fp = 0
        for store in reversed(self._sources):
            decision = store.filter_decision("b", qpacked)
            if decision is not None:
                probes += 1
                if not decision:
                    skipped += 1
                    continue
            m, p = store.backward_payload(qpacked)
            if decision and not m.any():
                fp += 1
            matched |= m
            pairs.extend(p)
        self._fstats.record(probes, skipped, fp)
        return matched, pairs

    def backward_payload_rows(self, qpacked):
        qpacked = np.asarray(qpacked)
        matched = np.zeros(qpacked.size, dtype=bool)
        hit_parts: list[np.ndarray] = []
        payloads: list = []
        probes = skipped = fp = 0
        try:
            for store in reversed(self._sources):
                decision = store.filter_decision("b", qpacked)
                if decision is not None:
                    probes += 1
                    if not decision:
                        # a filtered-out generation contributes nothing, so
                        # it cannot force the pair-based fallback either
                        skipped += 1
                        continue
                rows = store.backward_payload_rows(qpacked)
                if rows is None:  # a *Many generation: use the pair-based path
                    return None
                m, hits, values = rows
                if decision and not m.any():
                    fp += 1
                matched |= m
                if hits.size:
                    hit_parts.append(hits)
                    payloads.extend(values)
        finally:
            self._fstats.record(probes, skipped, fp)
        return matched, _concat(hit_parts), payloads

    # -- mismatched-orientation reads ------------------------------------------

    def scan_forward_full(self, qpacked, input_idx, ticker=None):
        return np.unique(
            _concat(
                [
                    store.scan_forward_full(qpacked, input_idx, ticker=ticker)
                    for store in reversed(self._sources)
                ]
            )
        )

    def scan_backward_full(self, qpacked, ticker=None):
        matched = np.zeros(np.asarray(qpacked).size, dtype=bool)
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        for store in reversed(self._sources):
            m, per = store.scan_backward_full(qpacked, ticker=ticker)
            matched |= m
            for i, cells in enumerate(per):
                if cells.size:
                    per_input[i].append(cells)
        return matched, [_concat(parts) for parts in per_input]

    def payload_entries(self):
        """Concatenated columnar payload surface across the generations.

        Built once and cached (generations are immutable once opened); this
        concat IS the payload-path read amplification compaction removes —
        a compacted store hands back its own columns with no copy.
        """
        with self._plock:
            if self._merged_payload is None:
                key_parts: list[np.ndarray] = []
                klen_parts: list[np.ndarray] = []
                vbuf_parts: list[bytes] = []
                vlen_parts: list[np.ndarray] = []
                for store in self._sources:
                    keys, koff, vbuf, voff = store.payload_entries()
                    if koff.size <= 1:
                        continue
                    key_parts.append(np.asarray(keys, dtype=np.int64))
                    klen_parts.append(np.diff(np.asarray(koff, dtype=np.int64)))
                    vbuf_parts.append(bytes(vbuf))
                    vlen_parts.append(np.diff(np.asarray(voff, dtype=np.int64)))
                if not key_parts:
                    empty = np.empty(0, dtype=np.int64)
                    zero = np.zeros(1, dtype=np.int64)
                    self._merged_payload = (empty, zero, b"", zero)
                else:
                    klens = np.concatenate(klen_parts)
                    vlens = np.concatenate(vlen_parts)
                    koff = np.zeros(klens.size + 1, dtype=np.int64)
                    np.cumsum(klens, out=koff[1:])
                    voff = np.zeros(vlens.size + 1, dtype=np.int64)
                    np.cumsum(vlens, out=voff[1:])
                    self._merged_payload = (
                        np.concatenate(key_parts),
                        koff,
                        b"".join(vbuf_parts),
                        voff,
                    )
            return self._merged_payload

    def overridden_keys(self) -> np.ndarray:
        return np.unique(
            _concat([store.overridden_keys() for store in self._sources])
        )

    # -- accounting ------------------------------------------------------------

    def disk_bytes(self) -> int:
        return sum(store.disk_bytes() for store in self._sources)

    @property
    def n_entries(self) -> int:
        return sum(store.n_entries for store in self._sources)
