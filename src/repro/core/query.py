"""Lineage query executor (§VI-C) with the query-time optimizer (§VII-A).

A query walks a path of operators, joining the current cell frontier with
each operator's lineage.  Intermediate results live in a boolean array with
one bit per cell (deduplication for free); the *entire-array optimization*
short-circuits steps whose operators are annotated safe; and the query-time
optimizer chooses, per step, between the materialised strategies and
re-execution — dynamically switching to re-execution if the materialised
access exceeds its budget, which bounds the worst case near 2x black-box.

Store access is batch-first: matched backward steps ask the store to decode
only the traversed input's field (``backward_full(..., only_input=idx)``),
and mismatched-orientation steps run the stores' vectorised batch-scan
paths (one :class:`~repro.storage.codecs.BatchProbe` pass over the value
heap) rather than per-entry cursor loops, so the wall-clock the budget
meters is dominated by a few NumPy passes.

Concurrency: query execution *borrows* stores through a
:class:`QuerySession` — catalog-backed stores are pinned on first touch and
unpinned when the session closes, so the catalog's 2Q eviction can never
close a mapping under a reader, and execution never mutates runtime state.
``QueryExecutor.backward`` / ``forward`` are therefore safe to call from
many threads at once (each call gets its own implicit session unless one is
passed in); lowered-table warming is serialized per store, so two threads
cannot race a cache fill.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.arrays import coords as C
from repro.core.costmodel import CostModel
from repro.core.lineage_store import OpLineageStore
from repro.core.model import Direction, Frontier, LineageQuery, QueryStep
from repro.core.modes import BLACKBOX, LineageMode, Orientation, StorageStrategy
from repro.core.reexec import ReExecutor
from repro.core.runtime import LineageRuntime
from repro.errors import CoordinateError, QueryError
from repro.ops.base import Operator
from repro.workflow.instance import WorkflowInstance

__all__ = [
    "QueryExecutor",
    "QueryRequest",
    "QueryResult",
    "QuerySession",
    "StepStats",
    "REQUEST_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
]

#: version stamped into ``QueryRequest.to_dict()`` / parsed by ``from_dict``;
#: bump only on a breaking change to the field set (additive fields with
#: defaults do not need a bump — ``from_dict`` ignores unknown keys)
REQUEST_SCHEMA_VERSION = 1
#: version stamped into ``QueryResult.to_dict()`` — the wire format the
#: serving daemon returns; documented field-by-field in docs/serving.md
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class QueryRequest:
    """One lineage query as a frozen, serializable value.

    This is the public query surface — the same object drives the embedded
    API (:meth:`SubZero.query <repro.core.subzero.SubZero.query>`), batch
    serving (:meth:`SubZero.serve`), and the network daemon
    (:mod:`repro.serving`): ``request -> to_dict() -> JSON -> from_dict()``
    round-trips losslessly, so an embedded and a networked caller are
    provably issuing the *same* query.

    The traversal is given either as an explicit ``path`` (the paper's
    ``((P1, idx1), ..., (Pm, idxm))``) or as ``start``/``end`` endpoints
    resolved against the workflow spec at execution time (the shortest
    dataflow route, like ``trace_back``/``trace_forward``).  Exactly one
    of the two forms must be set.

    ``entire_array`` / ``query_opt`` override the engine's §VI-C / §VII-A
    optimizations for this request only; ``None`` keeps the engine default.
    """

    direction: str
    cells: tuple[tuple[int, ...], ...]
    path: tuple[tuple[str, int], ...] | None = None
    start: str | None = None
    end: str | None = None
    entire_array: bool | None = None
    query_opt: bool | None = None

    def __post_init__(self) -> None:
        direction = self.direction
        if isinstance(direction, Direction):
            direction = direction.value
        if direction not in (Direction.BACKWARD.value, Direction.FORWARD.value):
            raise QueryError(
                f"direction must be 'backward' or 'forward', got {self.direction!r}"
            )
        object.__setattr__(self, "direction", direction)
        cells = _coerce_cells(self.cells)
        if cells.shape[0] == 0:
            raise QueryError("a query request needs at least one cell")
        object.__setattr__(
            self, "cells", tuple(tuple(int(v) for v in row) for row in cells)
        )
        if self.path is not None:
            steps = tuple(_as_step(s) for s in self.path)
            if not steps:
                raise QueryError("an explicit path must be non-empty")
            object.__setattr__(
                self, "path", tuple((s.node, s.input_idx) for s in steps)
            )
        has_endpoints = self.start is not None or self.end is not None
        if (self.path is None) == (not has_endpoints):
            raise QueryError(
                "a query request carries either an explicit path or "
                "start/end endpoints, not both"
            )
        if has_endpoints and (self.start is None or self.end is None):
            raise QueryError("endpoint requests need both start and end")
        for flag in ("entire_array", "query_opt"):
            value = getattr(self, flag)
            if value is not None and not isinstance(value, bool):
                raise QueryError(f"{flag} must be True, False, or None")

    # -- convenience constructors -------------------------------------------

    @classmethod
    def backward(cls, cells, path=None, *, start=None, end=None, **flags) -> "QueryRequest":
        return cls(Direction.BACKWARD.value, _freeze_cells(cells), _freeze_path(path),
                   start=start, end=end, **flags)

    @classmethod
    def forward(cls, cells, path=None, *, start=None, end=None, **flags) -> "QueryRequest":
        return cls(Direction.FORWARD.value, _freeze_cells(cells), _freeze_path(path),
                   start=start, end=end, **flags)

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> dict:
        """The versioned JSON-ready form (schema ``subzero.request`` v1).

        Optional fields that hold their default are omitted, so the wire
        form of a plain path query stays minimal and stable.
        """
        obj: dict = {
            "v": REQUEST_SCHEMA_VERSION,
            "direction": self.direction,
            "cells": [list(c) for c in self.cells],
        }
        if self.path is not None:
            obj["path"] = [[node, idx] for node, idx in self.path]
        if self.start is not None:
            obj["start"] = self.start
            obj["end"] = self.end
        if self.entire_array is not None:
            obj["entire_array"] = self.entire_array
        if self.query_opt is not None:
            obj["query_opt"] = self.query_opt
        return obj

    @classmethod
    def from_dict(cls, obj) -> "QueryRequest":
        """Parse :meth:`to_dict` output; raises :class:`QueryError` on a
        malformed or newer-versioned payload.  Unknown keys are ignored
        (additive schema evolution)."""
        if not isinstance(obj, dict):
            raise QueryError(f"query request must be an object, got {type(obj).__name__}")
        version = obj.get("v", REQUEST_SCHEMA_VERSION)
        if not isinstance(version, int) or version > REQUEST_SCHEMA_VERSION:
            raise QueryError(
                f"query request schema v{version!r} is newer than supported "
                f"v{REQUEST_SCHEMA_VERSION}"
            )
        try:
            path = obj.get("path")
            return cls(
                direction=obj["direction"],
                cells=tuple(tuple(int(v) for v in c) for c in obj["cells"]),
                path=tuple((str(n), int(i)) for n, i in path) if path is not None else None,
                start=obj.get("start"),
                end=obj.get("end"),
                entire_array=obj.get("entire_array"),
                query_opt=obj.get("query_opt"),
            )
        except QueryError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed query request: {exc}") from exc

    # -- resolution ---------------------------------------------------------

    def to_query(self, spec) -> LineageQuery:
        """Resolve to the executable :class:`LineageQuery`, inferring the
        path from the endpoints (shortest dataflow route over ``spec``)
        when this request carries them."""
        if self.path is not None:
            path = self.path
        elif self.direction == Direction.BACKWARD.value:
            path = tuple(spec.lineage_path(self.start, self.end))
        else:
            # forward: start names the source/input, end the target node
            path = tuple(reversed(spec.lineage_path(self.end, self.start)))
        return LineageQuery(
            cells=np.asarray(self.cells, dtype=np.int64),
            path=tuple(QueryStep(node, idx) for node, idx in path),
            direction=Direction(self.direction),
        )

    @classmethod
    def from_query(cls, query: LineageQuery, **flags) -> "QueryRequest":
        """Lift an executable :class:`LineageQuery` into the serializable
        request form (the inverse of :meth:`to_query` for explicit paths).
        ``flags`` set the per-request overrides, e.g.
        ``from_query(q, entire_array=False)``."""
        return cls(
            direction=query.direction,
            cells=_freeze_cells(query.cells),
            path=tuple((s.node, s.input_idx) for s in query.path),
            **flags,
        )

    def with_overrides(self, **fields) -> "QueryRequest":
        """A copy with the given fields replaced (requests are frozen)."""
        return replace(self, **fields)


def _coerce_cells(cells) -> np.ndarray:
    """Cells to an (n, ndim) int64 array; malformed cells are a
    :class:`QueryError` (the request surface's error type), not a bare
    coordinate error."""
    try:
        return C.as_coord_array(cells)
    except CoordinateError as exc:
        raise QueryError(f"invalid query cells: {exc}") from exc


def _freeze_cells(cells) -> tuple[tuple[int, ...], ...]:
    arr = _coerce_cells(cells)
    return tuple(tuple(int(v) for v in row) for row in arr)


def _freeze_path(path) -> tuple[tuple[str, int], ...] | None:
    if path is None:
        return None
    steps = tuple(_as_step(s) for s in path)
    return tuple((s.node, s.input_idx) for s in steps)


class QuerySession:
    """A borrow scope for catalog-backed stores.

    Every store a query step touches is obtained through the session:
    resident stores pass straight through; catalog stores are *borrowed*
    (pinned) on first touch and cached for the session's lifetime, then
    released (unpinned) on :meth:`close`.  Pinning guarantees cache
    eviction never closes a mapping this session is reading — eviction of
    a pinned store is deferred until its last pin drops.

    Sessions are cheap; the executor opens one per query when the caller
    does not supply one.  For batches, reusing a session across queries
    keeps its stores pinned (hot) between them.  A session must be used by
    one thread at a time; concurrent threads each take their own.
    """

    def __init__(self, runtime: "LineageRuntime"):
        self.runtime = runtime
        self._borrowed: dict = {}  # key -> catalog _OpenStore record
        self._closed = False

    def store_for(self, node: str, strategy: StorageStrategy) -> OpLineageStore | None:
        """The store serving (node, strategy), pinned for this session when
        it comes from the catalog; None when nothing serves the key."""
        if self._closed:
            raise QueryError("query session is closed")
        store = self.runtime.resident_store(node, strategy)
        if store is not None:
            return store
        catalog = self.runtime.catalog
        if catalog is None:
            return None
        key = (node, strategy)
        held = self._borrowed.get(key)
        if held is None:
            record = catalog.borrow(node, strategy)
            if record is None:
                return None
            held = (catalog, record)
            self._borrowed[key] = held
        return held[1].store

    def pinned_count(self) -> int:
        return len(self._borrowed)

    def close(self) -> None:
        """Release every pin.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        held, self._borrowed = list(self._borrowed.values()), {}
        for catalog, record in held:
            catalog.release(record)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _BudgetExceeded(Exception):
    """Internal: materialised access blew through its time budget."""


class _Budget:
    """Wall-clock budget.

    ``tick`` tests the deadline on every call because every call site is
    now per *batch*, not per entry: BatchProbe's lowering walk ticks once
    per codec-tag batch, the blob/table field-offset walks tick once per
    walk, and payload scans tick per column pass.  That keeps the check
    itself off the hot path — and means a cold lowering walk can only be
    interrupted at batch boundaries, so a budget that fires mid-scan no
    longer throws away an almost-finished (and cacheable) lowering.
    """

    __slots__ = ("deadline", "_start")

    def __init__(self, seconds: float | None):
        self.deadline = seconds
        self._start = time.perf_counter()

    def tick(self) -> None:
        if self.deadline is not None and time.perf_counter() - self._start > self.deadline:
            raise _BudgetExceeded


@dataclass
class StepStats:
    """What happened at one query step (for benchmarks and debugging)."""

    node: str
    direction: Direction
    method: str
    seconds: float
    cells_in: int
    cells_out: int
    switched_to_blackbox: bool = False
    shortcut: str | None = None
    #: cells a store returned that fell outside the target array and were
    #: discarded — nonzero values point at store/encoder bugs that silent
    #: clipping used to mask
    dropped_cells: int = 0

    def to_dict(self) -> dict:
        """JSON-ready form; part of the ``QueryResult.to_dict`` schema."""
        return {
            "node": self.node,
            "direction": self.direction.value,
            "method": self.method,
            "seconds": self.seconds,
            "cells_in": self.cells_in,
            "cells_out": self.cells_out,
            "switched_to_blackbox": self.switched_to_blackbox,
            "shortcut": self.shortcut,
            "dropped_cells": self.dropped_cells,
        }


@dataclass
class QueryResult:
    """Final frontier plus per-step diagnostics."""

    frontier: Frontier
    steps: list[StepStats] = field(default_factory=list)
    #: serving-cache snapshot taken when the query finished (hits, misses,
    #: evictions, open_mappings, resident_bytes); None without a catalog
    cache: dict | None = None

    @property
    def coords(self) -> np.ndarray:
        return self.frontier.coords()

    @property
    def count(self) -> int:
        return self.frontier.count

    @property
    def seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    def to_dict(self) -> dict:
        """The versioned JSON-ready form (schema ``subzero.result`` v1) —
        the wire format the serving daemon returns, documented field by
        field in docs/serving.md.

        Deterministic fields — ``shape``, ``count``, ``coords`` (row-major
        scan order of the final frontier), and the structural step fields —
        are identical for identical requests against identical lineage;
        ``seconds`` (wall clock) and ``cache`` (serving-cache snapshot) are
        run diagnostics and excluded from any equivalence comparison
        (:func:`repro.serving.protocol.canonical_result`)."""
        return {
            "v": RESULT_SCHEMA_VERSION,
            "shape": list(self.frontier.shape),
            "count": self.count,
            "coords": self.coords.tolist(),
            "seconds": self.seconds,
            "steps": [s.to_dict() for s in self.steps],
            "cache": self.cache,
        }

    def explain(self) -> str:
        """Human-readable per-step execution report (EXPLAIN ANALYZE-style)."""
        lines = [
            f"lineage query: {len(self.steps)} steps, "
            f"{self.count} result cells, {self.seconds * 1e3:.2f} ms total"
        ]
        width = max((len(s.node) for s in self.steps), default=4)
        for i, s in enumerate(self.steps):
            extras = []
            if s.shortcut:
                extras.append(s.shortcut)
            if s.switched_to_blackbox:
                extras.append("switched-to-blackbox")
            if s.dropped_cells:
                extras.append(f"dropped={s.dropped_cells}")
            note = f"  [{', '.join(extras)}]" if extras else ""
            lines.append(
                f"  {i + 1:>2}. {s.node:<{width}}  {s.direction.value:<8} "
                f"via {s.method:<14} {s.cells_in:>8} -> {s.cells_out:<8} cells  "
                f"{s.seconds * 1e3:8.2f} ms{note}"
            )
        if self.cache is not None:
            c = self.cache
            lines.append(
                f"  serving cache: {c.get('hits', 0)} hits / "
                f"{c.get('misses', 0)} misses / {c.get('evictions', 0)} evictions, "
                f"{c.get('open_mappings', 0)} open mappings "
                f"({c.get('resident_bytes', 0)} resident bytes)"
            )
            if c.get("deferred_pairs", 0) or c.get("capture_seconds", 0.0):
                lines.append(
                    f"  deferred capture: {c.get('deferred_pairs', 0)} pairs / "
                    f"{c.get('deferred_bytes', 0)} bytes parked, "
                    f"{c.get('capture_seconds', 0.0) * 1e3:.2f} ms foreground, "
                    f"{c.get('encode_thread_seconds', 0.0) * 1e3:.2f} ms encode thread"
                )
            if c.get("filter_probes", 0):
                lines.append(
                    f"  generation filters: {c.get('filter_probes', 0)} probes, "
                    f"{c.get('generations_skipped', 0)} generations skipped, "
                    f"{c.get('bloom_fp', 0)} bloom false positives"
                )
            if c.get("compactions_run", 0):
                lines.append(
                    f"  background maintenance: {c.get('compactions_run', 0)} "
                    f"compactions, {c.get('bytes_merged', 0)} bytes merged, "
                    f"{c.get('maintenance_seconds', 0.0) * 1e3:.2f} ms"
                )
            if c.get("partitions", 0):
                lines.append(
                    f"  partitioned catalog: {c.get('partitions', 0)} partitions "
                    f"({c.get('partitions_degraded', 0)} degraded), "
                    f"{c.get('partition_probes', 0)} probes "
                    f"({c.get('targeted_probes', 0)} targeted / "
                    f"{c.get('broadcast_probes', 0)} broadcast), "
                    f"{c.get('scatter_queries', 0)} scatter plans "
                    f"({c.get('scatter_broadcasts', 0)} broadcast)"
                )
        return "\n".join(lines)


class QueryExecutor:
    """Executes backward/forward lineage queries over an executed workflow."""

    def __init__(
        self,
        instance: WorkflowInstance,
        runtime: LineageRuntime,
        cost_model: CostModel | None = None,
        enable_entire_array: bool = True,
        enable_query_opt: bool = True,
    ):
        self.instance = instance
        self.runtime = runtime
        self.cost_model = cost_model or CostModel(runtime.stats)
        self.enable_entire_array = enable_entire_array
        self.enable_query_opt = enable_query_opt
        self.reexec = ReExecutor(instance, runtime.stats)

    # -- public API ----------------------------------------------------------

    def backward(self, cells, path, **overrides) -> QueryResult:
        """Trace ``cells`` (in the output of ``path[0]``) back through the path."""
        query = LineageQuery(
            cells=np.asarray(cells),
            path=tuple(_as_step(s) for s in path),
            direction=Direction.BACKWARD,
        )
        return self.execute(query, **overrides)

    def forward(self, cells, path, **overrides) -> QueryResult:
        """Trace ``cells`` (in input ``idx`` of ``path[0]``) forward through the path."""
        query = LineageQuery(
            cells=np.asarray(cells),
            path=tuple(_as_step(s) for s in path),
            direction=Direction.FORWARD,
        )
        return self.execute(query, **overrides)

    def execute_request(
        self, request: QueryRequest, session: QuerySession | None = None
    ) -> QueryResult:
        """Run one :class:`QueryRequest` — the serializable surface the
        embedded API, ``serve()``, and the network daemon all share.
        Endpoint requests are resolved against the executed workflow's
        spec; ``entire_array``/``query_opt`` override the engine defaults
        for this request only."""
        query = request.to_query(self.instance.spec)
        return self.execute(
            query,
            enable_entire_array=request.entire_array,
            enable_query_opt=request.query_opt,
            session=session,
        )

    def execute(
        self,
        query: LineageQuery,
        enable_entire_array: bool | None = None,
        enable_query_opt: bool | None = None,
        session: QuerySession | None = None,
    ) -> QueryResult:
        """Run one lineage query.

        ``session`` lets a caller share one borrow scope (pinned stores)
        across queries; without one, a session is opened for this call and
        closed before returning.  With per-call or per-thread sessions,
        this method is safe to invoke concurrently from many threads.
        """
        entire = (
            self.enable_entire_array
            if enable_entire_array is None
            else enable_entire_array
        )
        opt = self.enable_query_opt if enable_query_opt is None else enable_query_opt
        backward = query.direction is Direction.BACKWARD
        if backward:
            self.instance.validate_backward_path(query.path)
            start_shape = self.instance.output_shape(query.path[0].node)
        else:
            self.instance.validate_forward_path(query.path)
            first = query.path[0]
            start_shape = self.instance.operator(first.node).input_shapes[
                first.input_idx
            ]
        owns_session = session is None
        if owns_session:
            session = QuerySession(self.runtime)
        try:
            frontier = Frontier.from_coords(query.cells, start_shape)
            result = QueryResult(frontier=frontier)
            for step in query.path:
                frontier, stats = self._execute_step(
                    step, frontier, backward, entire, opt, session
                )
                result.steps.append(stats)
                result.frontier = frontier
        finally:
            if owns_session:
                session.close()
        snapshot = self.runtime.serving_stats()
        if self.runtime.catalog is not None:
            result.cache = snapshot
        self.runtime.stats.record_serving(snapshot)
        return result

    # -- one step ------------------------------------------------------------------

    def _execute_step(
        self,
        step: QueryStep,
        frontier: Frontier,
        backward: bool,
        entire: bool,
        opt: bool,
        session: QuerySession,
    ) -> tuple[Frontier, StepStats]:
        node, idx = step.node, step.input_idx
        op = self.instance.operator(node)
        out_shape = op.output_shape
        in_shape = op.input_shapes[idx]
        target_shape = in_shape if backward else out_shape
        start = time.perf_counter()
        next_frontier = Frontier(target_shape)
        direction = Direction.BACKWARD if backward else Direction.FORWARD

        if frontier.is_empty:
            return next_frontier, StepStats(
                node, direction, "empty", 0.0, 0, 0, shortcut="empty-frontier"
            )

        # Entire-array optimization (§VI-C): exact for all-to-all operators,
        # and manually-annotated safe operators under a full frontier.
        if entire and op.all_to_all:
            next_frontier.set_all()
            seconds = time.perf_counter() - start
            return next_frontier, StepStats(
                node, direction, "all-to-all", seconds,
                frontier.count, next_frontier.count, shortcut="all-to-all",
            )
        if entire and frontier.is_full and op.entire_array_ok(backward):
            next_frontier.set_all()
            seconds = time.perf_counter() - start
            return next_frontier, StepStats(
                node, direction, "entire-array", seconds,
                frontier.count, next_frontier.count, shortcut="entire-array",
            )

        qpacked = frontier.packed()
        strategy = self._choose_strategy(node, op, backward, qpacked.size, opt)
        budget = None
        if opt and strategy.stores_pairs:
            blackbox_estimate = self.cost_model.reexec_seconds(node)
            budget = _Budget(max(2.0 * blackbox_estimate, 0.05))
        switched = False
        try:
            packed = self._run_strategy(
                node, op, strategy, qpacked, idx, backward, out_shape, in_shape,
                budget, session,
            )
        except _BudgetExceeded:
            switched = True
            packed = self._run_strategy(
                node, op, BLACKBOX, qpacked, idx, backward, out_shape, in_shape,
                None, session,
            )
        dropped = 0
        if packed.size:
            in_range = (packed >= 0) & (packed < int(np.prod(target_shape)))
            dropped = int(packed.size - np.count_nonzero(in_range))
            packed = packed[in_range]
            next_frontier.add_packed(np.unique(packed))
        seconds = time.perf_counter() - start
        self.cost_model.record_observation(
            node, strategy if not switched else BLACKBOX, backward, seconds
        )
        label = strategy.label if not switched else f"{strategy.label}->Blackbox"
        return next_frontier, StepStats(
            node,
            direction,
            label,
            seconds,
            frontier.count,
            next_frontier.count,
            switched_to_blackbox=switched,
            dropped_cells=dropped,
        )

    # -- strategy selection (query-time optimizer, §VII-A) ----------------------------

    def _choose_strategy(
        self, node: str, op: Operator, backward: bool, n_cells: int, opt: bool
    ) -> StorageStrategy:
        assigned = list(self.runtime.strategies_for(node))
        if not opt:
            # Static behaviour: blindly use the stored lineage (mapping
            # first, then whatever was materialised), re-executing only when
            # nothing was stored — matches Figure 6(b).  Configurations that
            # store both orientations (FullBoth/PayBoth) use the one whose
            # index matches the query direction; single-orientation
            # configurations are used even when mismatched.
            for strategy in assigned:
                if strategy.mode is LineageMode.MAP:
                    return strategy
            stored = [s for s in assigned if s.stores_pairs]
            for strategy in stored:
                if self._orientation_matches(strategy, backward):
                    return strategy
            if stored:
                return stored[0]
            return BLACKBOX
        candidates = list(assigned)
        if BLACKBOX not in candidates:
            candidates.append(BLACKBOX)
        best, best_cost = None, float("inf")
        for strategy in candidates:
            cost = self.cost_model.query_seconds(
                node,
                strategy,
                backward,
                n_cells,
                lowered_ready=self.runtime.lowered_ready(node, strategy),
                reopen_bytes=self.runtime.reopen_bytes(node, strategy),
                # multi-generation scan planning: an un-compacted store pays
                # one probe/scan pass per live generation, so its overlay
                # amplification competes honestly here — discounted to the
                # filter-probe rate when every generation persisted filters
                generations=self.runtime.generation_count(node, strategy),
                filtered=self.runtime.filters_ready(node, strategy),
                # scatter fan-out: materialised reads on a partitioned
                # catalog pay one child-catalog probe per extra partition
                fanout=self.runtime.partition_fanout(node),
            )
            if cost < best_cost:
                best, best_cost = strategy, cost
        return best if best is not None else BLACKBOX

    @staticmethod
    def _orientation_matches(strategy: StorageStrategy, backward: bool) -> bool:
        """Payload/composite stores are backward-indexed; full stores carry
        an explicit orientation."""
        if strategy.mode in (LineageMode.PAY, LineageMode.COMP):
            return backward
        matched = strategy.orientation is Orientation.BACKWARD
        return matched == backward

    # -- strategy dispatch ------------------------------------------------------------

    def _run_strategy(
        self,
        node: str,
        op: Operator,
        strategy: StorageStrategy,
        qpacked: np.ndarray,
        idx: int,
        backward: bool,
        out_shape: tuple[int, ...],
        in_shape: tuple[int, ...],
        budget: _Budget | None,
        session: QuerySession,
    ) -> np.ndarray:
        if strategy.mode is LineageMode.BLACKBOX:
            if backward:
                return self.reexec.trace_backward(node, qpacked, idx)
            return self.reexec.trace_forward(node, qpacked, idx)
        if strategy.mode is LineageMode.MAP:
            if backward:
                coords = C.unpack_coords(qpacked, out_shape)
                return C.pack_coords(op.map_b_many(coords, idx), in_shape)
            coords = C.unpack_coords(qpacked, in_shape)
            return C.pack_coords(op.map_f_many(coords, idx), out_shape)
        # borrow through the session: catalog stores come back pinned, so
        # eviction can never close this mapping while the step is reading it
        store = session.store_for(node, strategy)
        if store is None:
            raise QueryError(
                f"strategy {strategy.label} assigned to {node!r} but no store exists; "
                "was the workflow executed after assigning strategies?"
            )
        ticker = budget.tick if budget is not None else None
        if strategy.mode is LineageMode.FULL:
            # the scan paths forward the ticker into BatchProbe's cold
            # lowering loop (the one remaining per-entry walk), so a huge
            # first scan can still abort to re-execution near the deadline
            if backward:
                if strategy.orientation is Orientation.BACKWARD:
                    # matched path: decode only the traversed input's field
                    _, per_input = store.backward_full(qpacked, only_input=idx)
                else:
                    _, per_input = store.scan_backward_full(qpacked, ticker=ticker)
                return per_input[idx]
            if strategy.orientation is Orientation.FORWARD:
                return store.forward_full(qpacked, idx)
            return store.scan_forward_full(qpacked, idx, ticker=ticker)
        # PAY / COMP
        if backward:
            return self._payload_backward(op, store, strategy, qpacked, idx, out_shape, in_shape)
        return self._payload_forward(op, store, strategy, qpacked, idx, out_shape, in_shape, budget)

    def _payload_backward(
        self,
        op: Operator,
        store: OpLineageStore,
        strategy: StorageStrategy,
        qpacked: np.ndarray,
        idx: int,
        out_shape: tuple[int, ...],
        in_shape: tuple[int, ...],
    ) -> np.ndarray:
        rows = store.backward_payload_rows(qpacked)
        if rows is not None:
            # One-entry-per-cell layout: expand every hit in one vectorised
            # map_p batch instead of grouping pair objects.
            matched, hit_packed, payloads = rows
            parts = []
            if hit_packed.size:
                coords = C.unpack_coords(hit_packed, out_shape)
                cells, _ = op.map_p_batch(coords, payloads, idx)
                parts.append(C.pack_coords(cells, in_shape))
            if strategy.mode is LineageMode.COMP:
                unmatched = qpacked[~matched]
                if unmatched.size:
                    coords = C.unpack_coords(unmatched, out_shape)
                    parts.append(C.pack_coords(op.map_b_many(coords, idx), in_shape))
            if not parts:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(parts)
        matched, pairs = store.backward_payload(qpacked)
        parts: list[np.ndarray] = []
        single_coords: list[np.ndarray] = []
        single_payloads: list[bytes] = []
        for cells_packed, payload in pairs:
            coords = C.unpack_coords(cells_packed, out_shape)
            if coords.shape[0] == 1:
                single_coords.append(coords)
                single_payloads.append(payload)
            else:
                cells = op.map_p_many(coords, payload, idx)
                parts.append(C.pack_coords(cells, in_shape))
        if single_coords:
            coords = np.concatenate(single_coords)
            cells, _ = op.map_p_batch(coords, single_payloads, idx)
            parts.append(C.pack_coords(cells, in_shape))
        if strategy.mode is LineageMode.COMP:
            unmatched = qpacked[~matched]
            if unmatched.size:
                coords = C.unpack_coords(unmatched, out_shape)
                parts.append(C.pack_coords(op.map_b_many(coords, idx), in_shape))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def _payload_forward(
        self,
        op: Operator,
        store: OpLineageStore,
        strategy: StorageStrategy,
        qpacked: np.ndarray,
        idx: int,
        out_shape: tuple[int, ...],
        in_shape: tuple[int, ...],
        budget: _Budget | None,
    ) -> np.ndarray:
        query = np.sort(qpacked)
        parts: list[np.ndarray] = []
        # columnar scan surface: one key-length split over the whole store,
        # then one vectorised map_p batch for the single-cell entries —
        # the per-entry cursor loop this path used to run is gone
        keys, koff, vbuf, voff = store.payload_entries()
        if budget is not None:
            budget.tick()
        n_entries = koff.size - 1
        if n_entries:
            klens = np.diff(koff)
            single = np.flatnonzero(klens == 1)
            multi = np.flatnonzero(klens != 1)
            if single.size:
                out_packed = np.asarray(keys[koff[single]], dtype=np.int64)
                starts = voff[single]
                vlens = voff[single + 1] - starts
                width = int(vlens[0])
                if (vlens == width).all():
                    # fixed-width payloads: one fancy-indexed gather into an
                    # (n, width) matrix, no per-entry byte slicing
                    raw = np.frombuffer(vbuf, dtype=np.uint8)
                    payloads = raw[starts[:, None] + np.arange(width, dtype=np.int64)]
                else:
                    payloads = [bytes(vbuf[voff[e]: voff[e + 1]]) for e in single]
                coords = C.unpack_coords(out_packed, out_shape)
                cells, rows = op.map_p_batch(coords, payloads, idx)
                inp = C.pack_coords(cells, in_shape)
                hit_rows = np.unique(rows[C.isin_sorted(inp, query)])
                if hit_rows.size:
                    parts.append(out_packed[hit_rows])
            for e in multi:
                # multi-cell region-pair payloads: map_p is op-defined per
                # pair, so these few entries keep a per-pair call
                if budget is not None:
                    budget.tick()
                e = int(e)
                out_packed = np.asarray(keys[koff[e]: koff[e + 1]], dtype=np.int64)
                payload = bytes(vbuf[voff[e]: voff[e + 1]])
                coords = C.unpack_coords(out_packed, out_shape)
                if op.payload_uniform:
                    cells = op.map_p_many(coords, payload, idx)
                    if C.isin_sorted(C.pack_coords(cells, in_shape), query).any():
                        parts.append(out_packed)
                else:
                    for i in range(coords.shape[0]):
                        cells = op.map_p_many(coords[i: i + 1], payload, idx)
                        if C.isin_sorted(C.pack_coords(cells, in_shape), query).any():
                            parts.append(out_packed[i: i + 1])
        if strategy.mode is LineageMode.COMP:
            coords = C.unpack_coords(qpacked, in_shape)
            default = C.pack_coords(op.map_f_many(coords, idx), out_shape)
            overridden = store.overridden_keys()
            if overridden.size:
                default = default[~np.isin(default, overridden)]
            parts.append(default)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)


def _as_step(step) -> QueryStep:
    if isinstance(step, QueryStep):
        return step
    if isinstance(step, str):
        return QueryStep(step, 0)
    return QueryStep(*step)
