"""Deferred lineage capture: descriptor accounting + the pipelined encoder.

Interactive-speed capture borrows Smoke's split between *recording* and
*materialising* lineage.  Operators hand the runtime compact columnar
descriptors (:class:`~repro.core.model.RegionBatch` /
:class:`~repro.core.model.ElementwiseBatch` — packed coordinate arrays plus
offset vectors, no per-pair Python objects); the expensive lowering into
codecs, hash tables and R-trees runs off the critical path on a single
background encode worker, so encoding node ``N``'s lineage overlaps
computing node ``N+1`` (and, via :meth:`LineageRuntime.flush_all_async`,
flushing generation ``N`` overlaps the workflow that produces ``N+1``).

The worker is *bounded*: at most :data:`CAPTURE_QUEUE_DEPTH` jobs may be in
flight before the submitting thread blocks — backpressure, not unbounded
buffering.  It is *single* by design: every store keeps its single-writer
ingest contract because all lowering happens on one FIFO thread.  And it is
*loud*: a failed background job parks its exception and re-raises at the
next :meth:`CapturePipeline.drain` / :meth:`CapturePipeline.close` join, so
a crash during background encoding can never be silently dropped (the
segment layer's atomic-rename writes guarantee no torn files either way).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from repro.core.model import BufferSink

__all__ = [
    "CAPTURE_QUEUE_DEPTH",
    "CapturePipeline",
    "DeferredSink",
    "sink_nbytes",
]

#: in-flight background encode jobs before submitters block (backpressure)
CAPTURE_QUEUE_DEPTH = 4


class DeferredSink(BufferSink):
    """A :class:`BufferSink` whose encoding is parked for the background
    worker.  Buffering behaviour is identical — the runtime keys deferral
    off its own capture mode — but the distinct type lets tests and
    debuggers see which sinks travelled the deferred path."""


def sink_nbytes(sink: BufferSink) -> int:
    """Resident bytes of a sink's deferred descriptors (coordinate arrays,
    offset vectors, payload buffers) — what deferral keeps alive until the
    background worker lowers it."""
    total = 0
    for rb in sink.region_batches:
        total += rb.out_coords.nbytes + rb.out_offsets.nbytes
        if rb.is_payload:
            total += len(rb.payloads) + rb.payload_offsets.nbytes
        else:
            total += sum(arr.nbytes for arr in rb.in_coords)
            total += sum(off.nbytes for off in rb.in_offsets)
    for batch in sink.elementwise:
        total += batch.outcells.nbytes
        total += sum(arr.nbytes for arr in batch.incells)
    for pbatch in sink.payload_batches:
        total += pbatch.outcells.nbytes
        if hasattr(pbatch.payloads, "nbytes"):
            total += int(pbatch.payloads.nbytes)
        else:
            total += sum(len(p) for p in pbatch.payloads)
    for pair in sink.pairs:
        total += pair.outcells.nbytes
        if pair.is_payload:
            total += len(pair.payload)
        else:
            total += sum(arr.nbytes for arr in pair.incells)
    return total


class CapturePipeline:
    """Single-worker, bounded, FIFO background encoder.

    Jobs run in submission order on one thread (preserving the stores'
    single-writer contract); :meth:`drain` joins everything in flight and
    re-raises the first failure; :meth:`close` drains then shuts the worker
    down.  The pool spins up lazily on first submit, so eager-mode runtimes
    never pay for a thread.
    """

    def __init__(self, max_pending: int = CAPTURE_QUEUE_DEPTH):
        self._max_pending = max_pending
        self._pool: ThreadPoolExecutor | None = None
        self._sem: threading.BoundedSemaphore | None = None
        #: futures not yet joined; appended by submit (workflow thread) and
        #: swapped out atomically by drain — both run on the foreground
        #: thread, the worker never touches it
        self._pending: list[Future] = []

    @property
    def active(self) -> bool:
        """True once a worker thread exists (a job was ever submitted)."""
        return self._pool is not None

    def submit(self, fn: Callable[[], object]) -> Future:
        """Queue ``fn`` behind everything already in flight.

        Blocks when :data:`CAPTURE_QUEUE_DEPTH` jobs are already pending —
        the workflow thread slows to the encoder's pace instead of buffering
        unboundedly (the paper's capture pipeline must stay interactive, not
        merely move the stall to an out-of-memory kill).
        """
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="subzero-capture"
            )
            self._sem = threading.BoundedSemaphore(self._max_pending)
        # szlint: ignore[SZ001] -- semaphore permit, not a segment ref: the job's finally releases it; the except below covers submit failure
        self._sem.acquire()

        def job():
            try:
                return fn()
            finally:
                self._sem.release()

        try:
            future = self._pool.submit(job)
        except BaseException:
            self._sem.release()
            raise
        self._pending.append(future)
        return future

    def drain(self) -> None:
        """Join every in-flight job; re-raise the first failure.

        Every future is joined even when an early one failed — later jobs
        must not keep running against state the caller believes settled —
        and only then does the first exception propagate."""
        pending, self._pending = self._pending, []
        first: BaseException | None = None
        for future in pending:
            try:
                future.result()
            except BaseException as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first

    def close(self) -> None:
        """Drain, then stop the worker.  Safe to call twice; the exception
        of a failed background job still propagates (after the worker is
        down, so no job outlives the pipeline)."""
        try:
            self.drain()
        finally:
            pool, self._pool = self._pool, None
            self._sem = None
            if pool is not None:
                pool.shutdown(wait=True)
