"""Lineage modes, encodings, orientations, and storage strategies.

The paper distinguishes (§V):

* **lineage modes** — what an operator *generates*: ``FULL`` region pairs,
  ``MAP``-ping functions, ``PAY``-load pairs, ``COMP``-osite
  (mapping default + payload overrides), or ``BLACKBOX`` (nothing extra);
* **encoding strategies** — how generated pairs are laid out in the hash
  store: ``ONE`` entry per cell vs ``MANY`` cells per entry (§VI-B);
* **orientation** — whether the hash key holds output cells
  (*backward-optimized*, ``←``) or input cells (*forward-optimized*, ``→``).

A :class:`StorageStrategy` bundles all three; the optimizer picks a set of
strategies per operator (§VII).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LineageError

__all__ = [
    "LineageMode",
    "EncodingKind",
    "Orientation",
    "StorageStrategy",
    "BLACKBOX",
    "MAP",
    "FULL_ONE_B",
    "FULL_ONE_F",
    "FULL_MANY_B",
    "FULL_MANY_F",
    "PAY_ONE_B",
    "PAY_MANY_B",
    "COMP_ONE_B",
    "COMP_MANY_B",
    "ALL_STRATEGIES",
]


class LineageMode(enum.Enum):
    """What lineage an operator emits while it runs (``cur_modes``)."""

    FULL = "Full"
    MAP = "Map"
    PAY = "Pay"
    COMP = "Comp"
    BLACKBOX = "Blackbox"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


class EncodingKind(enum.Enum):
    """Hash-entry layout: one cell per entry, or one entry per region pair."""

    ONE = "One"
    MANY = "Many"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


class Orientation(enum.Enum):
    """Which side of a region pair is the hash key."""

    BACKWARD = "backward"  # key = output cells; fast backward queries
    FORWARD = "forward"  # key = input cells; fast forward queries

    @property
    def arrow(self) -> str:
        return "<-" if self is Orientation.BACKWARD else "->"

    def __str__(self) -> str:  # pragma: no cover
        return self.arrow


# Modes that physically store region pairs and therefore need an encoding.
_STORED_MODES = frozenset({LineageMode.FULL, LineageMode.PAY, LineageMode.COMP})


@dataclass(frozen=True)
class StorageStrategy:
    """A fully-specified way to store one operator's lineage.

    ``MAP`` and ``BLACKBOX`` strategies carry no encoding or orientation —
    they store nothing (mapping functions) or only what the workflow
    executor already persists (black-box).
    """

    mode: LineageMode
    encoding: EncodingKind | None = None
    orientation: Orientation | None = None

    def __post_init__(self) -> None:
        stored = self.mode in _STORED_MODES
        if stored and (self.encoding is None or self.orientation is None):
            raise LineageError(
                f"{self.mode} strategies must specify an encoding and orientation"
            )
        if not stored and (self.encoding is not None or self.orientation is not None):
            raise LineageError(
                f"{self.mode} strategies carry no encoding/orientation"
            )
        if self.mode is LineageMode.PAY and self.orientation is Orientation.FORWARD:
            # Payloads are opaque blobs; they cannot be indexed by input cell
            # (§V-A.3: "the payload is a binary blob that cannot be easily
            # indexed").  Forward payload queries scan instead.
            raise LineageError("payload lineage cannot be forward-optimized")

    @property
    def stores_pairs(self) -> bool:
        return self.mode in _STORED_MODES

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``<-FullOne`` or ``Blackbox``."""
        if not self.stores_pairs:
            return self.mode.value
        return f"{self.orientation.arrow}{self.mode.value}{self.encoding.value}"

    def __str__(self) -> str:  # pragma: no cover
        return self.label


BLACKBOX = StorageStrategy(LineageMode.BLACKBOX)
MAP = StorageStrategy(LineageMode.MAP)
FULL_ONE_B = StorageStrategy(LineageMode.FULL, EncodingKind.ONE, Orientation.BACKWARD)
FULL_ONE_F = StorageStrategy(LineageMode.FULL, EncodingKind.ONE, Orientation.FORWARD)
FULL_MANY_B = StorageStrategy(LineageMode.FULL, EncodingKind.MANY, Orientation.BACKWARD)
FULL_MANY_F = StorageStrategy(LineageMode.FULL, EncodingKind.MANY, Orientation.FORWARD)
PAY_ONE_B = StorageStrategy(LineageMode.PAY, EncodingKind.ONE, Orientation.BACKWARD)
PAY_MANY_B = StorageStrategy(LineageMode.PAY, EncodingKind.MANY, Orientation.BACKWARD)
COMP_ONE_B = StorageStrategy(LineageMode.COMP, EncodingKind.ONE, Orientation.BACKWARD)
COMP_MANY_B = StorageStrategy(LineageMode.COMP, EncodingKind.MANY, Orientation.BACKWARD)

ALL_STRATEGIES: tuple[StorageStrategy, ...] = (
    BLACKBOX,
    MAP,
    FULL_ONE_B,
    FULL_ONE_F,
    FULL_MANY_B,
    FULL_MANY_F,
    PAY_ONE_B,
    PAY_MANY_B,
    COMP_ONE_B,
    COMP_MANY_B,
)
