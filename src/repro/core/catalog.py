"""Workflow-level catalog of persisted lineage-store segments.

The catalog is the lazy-open serving path of the persistence layer: a
``flush`` writes every materialised :class:`~repro.core.lineage_store.
OpLineageStore` as ONE segment file (columns, R-tree, *and* the lowered
batch-scan tables — see :mod:`repro.storage.segment`) plus one JSON manifest
(``catalog.json``) describing them.  A fresh process then opens the manifest
only; individual stores are opened on first query — mmap-backed, no decode —
so serving a single backward query over a hundred-store workflow touches one
segment, not a hundred.

The manifest records, per store: the node, the strategy triple, the array
shapes needed to reconstruct the store object, the segment filename, its
size, and whether the lowered tables were persisted (they always are on the
current writer; the flag lets the cost model price mismatched scans at the
warm batch rate without opening anything).

Corruption handling lives in :func:`repro.workflow.recovery.recover_lineage`,
which checksum-verifies every segment against the manifest and quarantines
the corrupt ones; :meth:`StoreCatalog.open_store` itself only does the
structural validation that :meth:`~repro.storage.segment.Segment.open`
performs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.lineage_store import OpLineageStore, make_store
from repro.core.modes import EncodingKind, LineageMode, Orientation, StorageStrategy
from repro.errors import StorageError

__all__ = ["CatalogEntry", "StoreCatalog", "MANIFEST_NAME", "store_filename"]

MANIFEST_NAME = "catalog.json"
FORMAT = "subzero-catalog"
VERSION = 1


def store_filename(node: str, strategy: StorageStrategy) -> str:
    """Deterministic segment filename for one (node, strategy) store."""
    parts = [node, strategy.mode.value]
    if strategy.encoding is not None:
        parts.append(strategy.encoding.value)
    if strategy.orientation is not None:
        parts.append(strategy.orientation.value)
    return "__".join(parts) + ".seg"


def _strategy_to_json(strategy: StorageStrategy) -> dict:
    return {
        "mode": strategy.mode.value,
        "encoding": strategy.encoding.value if strategy.encoding else None,
        "orientation": strategy.orientation.value if strategy.orientation else None,
    }


def _strategy_from_json(obj: Mapping) -> StorageStrategy:
    return StorageStrategy(
        mode=LineageMode(obj["mode"]),
        encoding=EncodingKind(obj["encoding"]) if obj["encoding"] else None,
        orientation=Orientation(obj["orientation"]) if obj["orientation"] else None,
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One persisted store, as the manifest records it."""

    node: str
    strategy: StorageStrategy
    out_shape: tuple[int, ...]
    in_shapes: tuple[tuple[int, ...], ...]
    file: str
    nbytes: int
    lowered: bool

    @property
    def key(self) -> tuple[str, StorageStrategy]:
        return (self.node, self.strategy)


class StoreCatalog:
    """Lazy-open view over a flushed workflow's lineage segments."""

    def __init__(self, directory: str, entries: Iterable[CatalogEntry]):
        self.directory = directory
        self._entries: dict[tuple[str, StorageStrategy], CatalogEntry] = {
            entry.key: entry for entry in entries
        }
        self._open: dict[tuple[str, StorageStrategy], OpLineageStore] = {}

    # -- writing -------------------------------------------------------------

    @classmethod
    def write(
        cls,
        directory: str,
        stores: Mapping[tuple[str, StorageStrategy], OpLineageStore],
    ) -> tuple["StoreCatalog", int]:
        """Flush ``stores`` (one segment each, lowered tables included) and
        the manifest; returns ``(catalog, total_bytes_written)``."""
        os.makedirs(directory, exist_ok=True)
        entries: list[CatalogEntry] = []
        total = 0
        for (node, strategy), store in stores.items():
            fname = store_filename(node, strategy)
            nbytes = store.flush_segment(os.path.join(directory, fname))
            total += nbytes
            entries.append(
                CatalogEntry(
                    node=node,
                    strategy=strategy,
                    out_shape=store.out_shape,
                    in_shapes=store.in_shapes,
                    file=fname,
                    nbytes=nbytes,
                    lowered=store.lowered_ready(),
                )
            )
        catalog = cls(directory, entries)
        total += catalog.save_manifest()
        return catalog, total

    def save_manifest(self) -> int:
        """(Re)write ``catalog.json`` from the current entries; returns its
        size.  Recovery calls this after quarantining segments so the
        on-disk manifest stops advertising stores that no longer serve."""
        manifest = {
            "format": FORMAT,
            "version": VERSION,
            "stores": [
                {
                    "node": entry.node,
                    "strategy": _strategy_to_json(entry.strategy),
                    "out_shape": list(entry.out_shape),
                    "in_shapes": [list(s) for s in entry.in_shapes],
                    "file": entry.file,
                    "nbytes": entry.nbytes,
                    "lowered": entry.lowered,
                }
                for entry in self._entries.values()
            ],
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        return os.path.getsize(path)

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(cls, directory: str) -> "StoreCatalog":
        """Parse the manifest only; no segment file is touched."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise StorageError(f"no lineage catalog at {directory!r}: {exc}") from exc
        except ValueError as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        if manifest.get("format") != FORMAT:
            raise StorageError(f"{path!r} is not a lineage catalog manifest")
        if int(manifest.get("version", 0)) > VERSION:
            raise StorageError(
                f"lineage catalog {path!r} has version {manifest['version']}, "
                f"newer than supported version {VERSION}"
            )
        entries = []
        try:
            for obj in manifest["stores"]:
                entries.append(
                    CatalogEntry(
                        node=obj["node"],
                        strategy=_strategy_from_json(obj["strategy"]),
                        out_shape=tuple(obj["out_shape"]),
                        in_shapes=tuple(tuple(s) for s in obj["in_shapes"]),
                        file=obj["file"],
                        nbytes=int(obj["nbytes"]),
                        lowered=bool(obj.get("lowered", False)),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        return cls(directory, entries)

    # -- serving -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple[str, StorageStrategy]]:
        return list(self._entries)

    def entries(self) -> list[CatalogEntry]:
        return list(self._entries.values())

    def entry(self, node: str, strategy: StorageStrategy) -> CatalogEntry | None:
        return self._entries.get((node, strategy))

    def drop(self, node: str, strategy: StorageStrategy) -> None:
        """Forget one entry (used when recovery quarantines its segment)."""
        self._entries.pop((node, strategy), None)
        self._open.pop((node, strategy), None)

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        return tuple(s for (n, s) in self._entries if n == node)

    def open_store(
        self, node: str, strategy: StorageStrategy
    ) -> OpLineageStore | None:
        """Open (and cache) one store lazily; None when not in the manifest.

        The returned store's components are mmap-backed views over the
        segment — nothing is decoded until a query touches it, and the
        persisted lowered tables make its first mismatched scan warm.
        """
        key = (node, strategy)
        store = self._open.get(key)
        if store is None:
            entry = self._entries.get(key)
            if entry is None:
                return None
            store = make_store(node, strategy, entry.out_shape, entry.in_shapes)
            store.load_segment(os.path.join(self.directory, entry.file))
            self._open[key] = store
        return store

    def open_count(self) -> int:
        """How many stores have actually been opened (laziness probe)."""
        return len(self._open)

    def is_catalog_store(
        self, node: str, strategy: StorageStrategy, store: OpLineageStore
    ) -> bool:
        """True when ``store`` is the object this catalog opened for the
        key (as opposed to a freshly re-ingested resident store)."""
        return self._open.get((node, strategy)) is store

    def manifest_bytes(self, node: str, strategy: StorageStrategy) -> int:
        entry = self._entries.get((node, strategy))
        return entry.nbytes if entry is not None else 0

    def lowered_ready(self, node: str, strategy: StorageStrategy) -> bool:
        entry = self._entries.get((node, strategy))
        return bool(entry is not None and entry.lowered)
