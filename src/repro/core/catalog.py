"""Workflow-level catalog of persisted lineage-store segments.

The catalog is the serving core of the persistence layer: a ``flush``
writes every materialised :class:`~repro.core.lineage_store.OpLineageStore`
as one segment (monolithic, or sharded ``.seg.0..k`` above a size
threshold — see :mod:`repro.storage.segment`) plus one JSON manifest
(``catalog.json``) describing them.  A fresh process then opens the
manifest only; individual stores are opened on first query — mmap-backed,
no decode — so serving a single backward query over a hundred-store
workflow touches one segment, not a hundred.

Since the concurrent-serving refactor the catalog is also a **thread-safe,
LRU-bounded open-store cache**:

* :meth:`StoreCatalog.borrow` / :meth:`StoreCatalog.release` hand out
  *pinned* references — the unit :class:`~repro.core.query.QuerySession`
  builds on.  A pinned store is never closed under a reader.
* ``memory_budget_bytes`` caps the resident segment bytes.  When an open
  pushes the cache over budget, unpinned stores are evicted in LRU order
  and their shared mappings closed
  (:meth:`~repro.core.lineage_store.OpLineageStore.close`).  Pinned stores
  are never victims — the cache may transiently exceed the budget by the
  pinned working set — but the budget is re-checked at every release, so
  a store the LRU wants gone closes the moment its last pin drops.
* Hit/miss/evict counters and the open-mapping count are exported via
  :meth:`stats` so serving regressions show up in benchmarks and
  ``QueryResult.explain()``.

The manifest records, per store: the node, the strategy triple, the array
shapes needed to reconstruct the store object, the segment filename (plus
the shard filenames when the store was sharded), its size, and whether the
lowered tables were persisted.  ``catalog.json`` is written atomically
(tmp + ``os.replace``) so a crash mid-write can never brick the catalog.

Corruption handling lives in :func:`repro.workflow.recovery.recover_lineage`,
which checksum-verifies every segment (all shards) against the manifest and
quarantines the corrupt ones; :meth:`StoreCatalog.open_store` itself only
does the structural validation that segment opening performs.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.lineage_store import OpLineageStore, make_store
from repro.core.modes import EncodingKind, LineageMode, Orientation, StorageStrategy
from repro.errors import StorageError
from repro.storage import segment as seglib

__all__ = ["CatalogEntry", "StoreCatalog", "MANIFEST_NAME", "store_filename"]

MANIFEST_NAME = "catalog.json"
FORMAT = "subzero-catalog"
VERSION = 1


def store_filename(node: str, strategy: StorageStrategy) -> str:
    """Deterministic segment filename for one (node, strategy) store."""
    parts = [node, strategy.mode.value]
    if strategy.encoding is not None:
        parts.append(strategy.encoding.value)
    if strategy.orientation is not None:
        parts.append(strategy.orientation.value)
    return "__".join(parts) + ".seg"


def _strategy_to_json(strategy: StorageStrategy) -> dict:
    return {
        "mode": strategy.mode.value,
        "encoding": strategy.encoding.value if strategy.encoding else None,
        "orientation": strategy.orientation.value if strategy.orientation else None,
    }


def _strategy_from_json(obj: Mapping) -> StorageStrategy:
    return StorageStrategy(
        mode=LineageMode(obj["mode"]),
        encoding=EncodingKind(obj["encoding"]) if obj["encoding"] else None,
        orientation=Orientation(obj["orientation"]) if obj["orientation"] else None,
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One persisted store, as the manifest records it."""

    node: str
    strategy: StorageStrategy
    out_shape: tuple[int, ...]
    in_shapes: tuple[tuple[int, ...], ...]
    file: str
    nbytes: int
    lowered: bool
    #: shard filenames (``<file>.0..k``) when the store was flushed sharded;
    #: empty for a monolithic segment
    shards: tuple[str, ...] = ()

    @property
    def key(self) -> tuple[str, StorageStrategy]:
        return (self.node, self.strategy)

    @property
    def files(self) -> tuple[str, ...]:
        """The on-disk file(s) actually backing this store."""
        return self.shards if self.shards else (self.file,)


@dataclass
class _OpenStore:
    """One open (cached) store: the shared object plus its pin state.

    ``store`` is None while the first borrower is still opening the
    segment; ``ready`` flips once the load finished (or failed, in which
    case ``error`` is set and the record has left the cache).  The record
    is inserted — pinned — *before* the load runs, so concurrent borrows
    of the same key share one open and borrows of other keys never wait
    behind it.
    """

    key: tuple[str, StorageStrategy]
    store: OpLineageStore | None
    nbytes: int
    pins: int = 0
    #: set when the LRU evicted this record (it has left the cache)
    evicted: bool = False
    #: True once the backing mapping was closed
    closed: bool = False
    #: the exception the opening thread hit, for waiting borrowers
    error: BaseException | None = None
    ready: threading.Event = field(default_factory=threading.Event)

    def resident_bytes(self) -> int:
        """What this record actually costs the budget *right now*.

        A sharded store maps its shards lazily, so it is charged only the
        bytes of the shards currently mapped — not its full manifest size;
        a store still loading is charged its manifest size as a
        reservation; a closed store costs nothing.
        """
        if self.closed:
            return 0
        store = self.store
        if store is None:  # placeholder: reserve the full size while loading
            return self.nbytes
        seg = store._segment
        if seg is None:
            return 0
        mapped = getattr(seg, "mapped_bytes", None)
        return mapped() if mapped is not None else self.nbytes


class StoreCatalog:
    """Lazy-open, LRU-bounded, thread-safe view over a flushed workflow's
    lineage segments (see module docstring)."""

    def __init__(
        self,
        directory: str,
        entries: Iterable[CatalogEntry],
        memory_budget_bytes: int | None = None,
    ):
        self.directory = directory
        #: cap on resident (mapped) segment bytes; None means unbounded,
        #: which preserves the pre-LRU behaviour of earlier releases
        self.memory_budget_bytes = memory_budget_bytes
        self._entries: dict[tuple[str, StorageStrategy], CatalogEntry] = {
            entry.key: entry for entry in entries
        }
        self._lock = threading.RLock()
        #: LRU cache of open stores, most-recently-used last
        self._open: "OrderedDict[tuple[str, StorageStrategy], _OpenStore]" = OrderedDict()
        #: records evicted while pinned: out of the cache, not yet closed
        self._lingering: list[_OpenStore] = []
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- writing -------------------------------------------------------------

    @classmethod
    def write(
        cls,
        directory: str,
        stores,
        shard_threshold_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
    ) -> tuple["StoreCatalog", int]:
        """Flush ``stores`` (one segment each — sharded above the threshold
        when one is given — lowered tables included) and the manifest;
        returns ``(catalog, total_bytes_written)``.

        ``stores`` is anything with ``.items()`` yielding
        ``((node, strategy), store)`` pairs — a plain dict, or a lazy view
        like the runtime's one-at-a-time borrowing flush, which keeps only
        the store currently being written pinned in memory."""
        os.makedirs(directory, exist_ok=True)
        entries: list[CatalogEntry] = []
        total = 0
        for (node, strategy), store in stores.items():
            fname = store_filename(node, strategy)
            path = os.path.join(directory, fname)
            nbytes = store.flush_segment(path, shard_threshold_bytes=shard_threshold_bytes)
            total += nbytes
            files = seglib.segment_files(path)
            shards = (
                tuple(os.path.basename(f) for f in files)
                if files != [path]
                else ()
            )
            entries.append(
                CatalogEntry(
                    node=node,
                    strategy=strategy,
                    out_shape=store.out_shape,
                    in_shapes=store.in_shapes,
                    file=fname,
                    nbytes=nbytes,
                    lowered=store.lowered_ready(),
                    shards=shards,
                )
            )
        catalog = cls(directory, entries, memory_budget_bytes=memory_budget_bytes)
        total += catalog.save_manifest()
        return catalog, total

    def save_manifest(self) -> int:
        """(Re)write ``catalog.json`` from the current entries; returns its
        size.  Recovery calls this after quarantining segments so the
        on-disk manifest stops advertising stores that no longer serve.

        The write is atomic (tmp file + ``os.replace``): a crash mid-write
        leaves the previous manifest intact instead of a truncated one that
        would brick :meth:`open`."""
        with self._lock:
            stores = []
            for entry in self._entries.values():
                obj = {
                    "node": entry.node,
                    "strategy": _strategy_to_json(entry.strategy),
                    "out_shape": list(entry.out_shape),
                    "in_shapes": [list(s) for s in entry.in_shapes],
                    "file": entry.file,
                    "nbytes": entry.nbytes,
                    "lowered": entry.lowered,
                }
                if entry.shards:
                    obj["shards"] = list(entry.shards)
                stores.append(obj)
        manifest = {"format": FORMAT, "version": VERSION, "stores": stores}
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
        except BaseException:
            # never leave a half-written tmp behind a crash we can see
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)
        return os.path.getsize(path)

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(
        cls, directory: str, memory_budget_bytes: int | None = None
    ) -> "StoreCatalog":
        """Parse the manifest only; no segment file is touched."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise StorageError(f"no lineage catalog at {directory!r}: {exc}") from exc
        except ValueError as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        if manifest.get("format") != FORMAT:
            raise StorageError(f"{path!r} is not a lineage catalog manifest")
        if int(manifest.get("version", 0)) > VERSION:
            raise StorageError(
                f"lineage catalog {path!r} has version {manifest['version']}, "
                f"newer than supported version {VERSION}"
            )
        entries = []
        try:
            for obj in manifest["stores"]:
                entries.append(
                    CatalogEntry(
                        node=obj["node"],
                        strategy=_strategy_from_json(obj["strategy"]),
                        out_shape=tuple(obj["out_shape"]),
                        in_shapes=tuple(tuple(s) for s in obj["in_shapes"]),
                        file=obj["file"],
                        nbytes=int(obj["nbytes"]),
                        lowered=bool(obj.get("lowered", False)),
                        shards=tuple(obj.get("shards", ())),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        return cls(directory, entries, memory_budget_bytes=memory_budget_bytes)

    # -- manifest-level accessors --------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple[str, StorageStrategy]]:
        return list(self._entries)

    def entries(self) -> list[CatalogEntry]:
        return list(self._entries.values())

    def entry(self, node: str, strategy: StorageStrategy) -> CatalogEntry | None:
        return self._entries.get((node, strategy))

    def drop(self, node: str, strategy: StorageStrategy) -> None:
        """Forget one entry (used when recovery quarantines its segment)."""
        with self._lock:
            self._entries.pop((node, strategy), None)
            record = self._open.pop((node, strategy), None)
            if record is not None:
                self._retire(record)

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        return tuple(s for (n, s) in self._entries if n == node)

    def manifest_bytes(self, node: str, strategy: StorageStrategy) -> int:
        entry = self._entries.get((node, strategy))
        return entry.nbytes if entry is not None else 0

    def lowered_ready(self, node: str, strategy: StorageStrategy) -> bool:
        entry = self._entries.get((node, strategy))
        return bool(entry is not None and entry.lowered)

    # -- serving: borrow / release (the pinned path) --------------------------

    def borrow(self, node: str, strategy: StorageStrategy) -> _OpenStore | None:
        """Open (or hit) the store and return a *pinned* record; None when
        the key is not in the manifest.

        The returned record's ``.store`` is safe to read from the calling
        thread until the matching :meth:`release` — eviction will never
        close a mapping while it holds a pin.  Every borrow must be paired
        with exactly one release (``QuerySession`` does this bookkeeping).

        The catalog lock is held only for the cache bookkeeping: a miss
        inserts a pinned placeholder, then opens the segment *outside* the
        lock, so concurrent borrows of other stores (and hits) never queue
        behind one thread's open; concurrent borrows of the *same* store
        wait on the record's ready event and share the single mapping.
        """
        key = (node, strategy)
        load_entry = None
        with self._lock:
            record = self._open.get(key)
            if record is not None:
                self._open.move_to_end(key)
                record.pins += 1
                self._hits += 1
            else:
                entry = self._entries.get(key)
                if entry is None:
                    return None
                self._misses += 1
                record = _OpenStore(key=key, store=None, nbytes=entry.nbytes, pins=1)
                self._open[key] = record
                load_entry = entry  # this thread inserted the placeholder
        if load_entry is not None:  # ...so this thread performs the open
            try:
                store = make_store(
                    node, strategy, load_entry.out_shape, load_entry.in_shapes
                )
                store.load_segment(os.path.join(self.directory, load_entry.file))
            except BaseException as exc:
                with self._lock:
                    record.error = exc
                    record.pins -= 1
                    record.evicted = True
                    if self._open.get(key) is record:
                        del self._open[key]
                    self._close_record(record)
                record.ready.set()  # wake waiters; they re-raise via error
                raise
            record.store = store
            record.ready.set()
            with self._lock:
                self._evict_over_budget()
            return record
        record.ready.wait()
        if record.error is not None:
            with self._lock:
                record.pins -= 1
            raise StorageError(
                f"store ({node!r}, {strategy.label}) failed to open"
            ) from record.error
        return record

    def release(self, record: _OpenStore) -> None:
        """Drop one pin; a record evicted while pinned closes on the last
        release, and the budget is re-checked now that a pin is free."""
        with self._lock:
            record.pins -= 1
            if record.evicted and record.pins <= 0:
                self._close_record(record)
            else:
                self._evict_over_budget()

    def open_store(
        self, node: str, strategy: StorageStrategy
    ) -> OpLineageStore | None:
        """Open (and cache) one store lazily; None when not in the manifest.

        The returned store's components are mmap-backed views over the
        segment — nothing is decoded until a query touches it, and the
        persisted lowered tables make its first mismatched scan warm.

        This is the *unpinned* convenience path: with no memory budget the
        store stays cached indefinitely (the pre-LRU contract); with a
        budget set, long-lived readers should borrow through a
        :class:`~repro.core.query.QuerySession` instead, because an
        unpinned store may be evicted (and closed) as soon as the next
        open needs the room.  The store returned here is excluded from the
        unpin's own budget check, so it is always live when handed back —
        a later eviction makes it raise loudly rather than answer empty.
        """
        record = self.borrow(node, strategy)
        if record is None:
            return None
        store = record.store
        with self._lock:
            record.pins -= 1
            if record.evicted and record.pins <= 0:
                # retired while we held the only pin (e.g. recovery dropped
                # the entry): close now so the mapping never lingers; the
                # poisoned store tells the caller loudly
                self._close_record(record)
            else:
                self._evict_over_budget(exclude=record)
        return store

    # -- eviction ------------------------------------------------------------

    def _evict_over_budget(self, exclude: _OpenStore | None = None) -> None:
        """Evict (LRU first) until resident bytes fit the budget.

        Only *unpinned* records are eligible — classic buffer-pool
        semantics: borrowed stores stay shared and mapped, and the cache
        may transiently exceed the budget by the pinned working set.  The
        budget is re-checked on every release, so a store that outlived
        its welcome closes the moment its last pin drops.  ``exclude``
        shields one record from this pass only (the store ``open_store``
        is about to hand back unpinned).  Callers hold the lock.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        while self._resident_bytes_locked() > budget:
            victim_key = None
            for key, record in self._open.items():  # LRU order
                if record.pins <= 0 and record is not exclude:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything left is pinned; retry at next release
            record = self._open.pop(victim_key)
            record.evicted = True
            self._evictions += 1
            self._close_record(record)

    def _close_record(self, record: _OpenStore) -> None:
        if record in self._lingering:
            self._lingering.remove(record)
        if not record.closed:
            record.closed = True
            if record.store is not None:
                record.store.close()

    def _retire(self, record: _OpenStore) -> None:
        """Close (or defer-close) a record leaving the cache outside the
        normal eviction path (drop / close)."""
        record.evicted = True
        if record.pins > 0:
            self._lingering.append(record)
        else:
            self._close_record(record)

    def _resident_bytes_locked(self) -> int:
        total = sum(r.resident_bytes() for r in self._open.values())
        return total + sum(r.resident_bytes() for r in self._lingering)

    # -- introspection ---------------------------------------------------------

    def resident_bytes(self) -> int:
        """Mapped segment bytes currently held open (incl. pinned-evicted)."""
        with self._lock:
            return self._resident_bytes_locked()

    def open_count(self) -> int:
        """How many stores are currently open in the cache (laziness probe)."""
        with self._lock:
            return len(self._open)

    def is_open(self, node: str, strategy: StorageStrategy) -> bool:
        with self._lock:
            return (node, strategy) in self._open

    def stats(self) -> dict[str, int]:
        """Serving-cache counters for benchmarks and ``explain()``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "open_mappings": len(self._open) + len(self._lingering),
                "resident_bytes": self._resident_bytes_locked(),
            }

    def is_catalog_store(
        self, node: str, strategy: StorageStrategy, store: OpLineageStore
    ) -> bool:
        """True when ``store`` is the object this catalog currently serves
        for the key (as opposed to a freshly re-ingested resident store)."""
        with self._lock:
            record = self._open.get((node, strategy))
            return record is not None and record.store is store

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every open mapping and empty the cache.

        Pinned records are closed too — callers must first end their
        sessions; this is the shutdown path, not an eviction."""
        with self._lock:
            records = list(self._open.values()) + list(self._lingering)
            self._open.clear()
            self._lingering.clear()
            for record in records:
                record.evicted = True
                self._close_record(record)

    def __enter__(self) -> "StoreCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
