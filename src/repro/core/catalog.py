"""Workflow-level catalog of persisted lineage-store segments.

The catalog is the serving core of the persistence layer: a ``flush``
writes every materialised :class:`~repro.core.lineage_store.OpLineageStore`
as one segment (monolithic, or sharded ``.seg.0..k`` above a size
threshold — see :mod:`repro.storage.segment`) plus one JSON manifest
(``catalog.json``) describing them.  A fresh process then opens the
manifest only; individual stores are opened on first query — mmap-backed,
no decode — so serving a single backward query over a hundred-store
workflow touches one segment, not a hundred.

Since the concurrent-serving refactor the catalog is also a **thread-safe,
budget-bounded open-store cache**:

* :meth:`StoreCatalog.borrow` / :meth:`StoreCatalog.release` hand out
  *pinned* references — the unit :class:`~repro.core.query.QuerySession`
  builds on.  A pinned store is never closed under a reader.
* ``memory_budget_bytes`` caps the resident segment bytes.  Eviction is
  **scan-resistant 2Q** (the serving-daemon upgrade over the original
  plain LRU): a first-touch store enters a probationary FIFO and is the
  first eviction victim; a re-reference promotes it to a protected LRU
  tier; and a bounded *ghost* queue remembers recently evicted keys, so a
  store that returns after eviction is admitted straight to protected.
  Net effect: a one-off analytical sweep over the whole catalog churns
  only its own probationary admissions and cannot evict the hot working
  set.  Evicted stores' shared mappings are closed
  (:meth:`~repro.core.lineage_store.OpLineageStore.close`).  Pinned stores
  are never victims — the cache may transiently exceed the budget by the
  pinned working set — but the budget is re-checked at every release, so
  a store the policy wants gone closes the moment its last pin drops.
* Hit/miss/evict counters and the open-mapping count are exported via
  :meth:`stats` so serving regressions show up in benchmarks and
  ``QueryResult.explain()``.

Since the append-merge refactor the catalog is also **generational**:

* :meth:`StoreCatalog.append_stores` writes a run's stores as *delta
  segments* (``<name>.gen.<g>.seg``, see
  :func:`repro.storage.segment.generation_path`) and registers them as
  additional generations of the same ``(node, strategy)`` key — the cheap
  incremental commit, O(delta) instead of O(catalog).
* :meth:`borrow` / :meth:`open_store` transparently serve a
  multi-generation key through an
  :class:`~repro.core.overlay.OverlayStore` — the union view that consults
  every live generation, newest first, using each generation's own
  persisted indexes and lowered tables.
* :meth:`StoreCatalog.compact` merges a key's generations back into one
  base segment *online*: the merged segment is written to a tmp file and
  renamed into place, the manifest is swapped atomically, and concurrent
  sessions pinned on the old generation set keep serving it — the delta
  files they still map are unlinked only when the last pin drops
  (``_OpenStore.unlink_on_close``).  Eviction accounting is per
  generation: an overlay is charged the sum of its generations' *mapped*
  bytes, so a mostly-unmapped sharded delta costs what it maps.

The manifest records, per store generation: the node, the strategy triple,
the generation ordinal (omitted when 0 — a never-appended catalog is
byte-compatible with the pre-generation schema), the array shapes needed
to reconstruct the store object, the segment filename (plus the shard
filenames when the store was sharded), its size, and whether the lowered
tables were persisted.  ``catalog.json`` is written atomically (tmp +
``os.replace``) so a crash mid-write can never brick the catalog.

Corruption handling lives in :func:`repro.workflow.recovery.recover_lineage`,
which checksum-verifies every segment (all shards, all generations) against
the manifest and quarantines the corrupt ones — a torn generation is set
aside without losing the older generations under it;
:meth:`StoreCatalog.open_store` itself only does the structural validation
that segment opening performs.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis import lockcheck
from repro.core.lineage_store import OpLineageStore, make_store
from repro.core.modes import EncodingKind, LineageMode, Orientation, StorageStrategy
from repro.core.overlay import FilterStats, OverlayStore
from repro.errors import StorageError
from repro.storage import segment as seglib

__all__ = [
    "CatalogEntry",
    "CompactionReport",
    "StoreCatalog",
    "MANIFEST_NAME",
    "store_filename",
]

MANIFEST_NAME = "catalog.json"
FORMAT = "subzero-catalog"
VERSION = 1


def store_filename(node: str, strategy: StorageStrategy) -> str:
    """Deterministic segment filename for one (node, strategy) store."""
    parts = [node, strategy.mode.value]
    if strategy.encoding is not None:
        parts.append(strategy.encoding.value)
    if strategy.orientation is not None:
        parts.append(strategy.orientation.value)
    return "__".join(parts) + ".seg"


def _strategy_to_json(strategy: StorageStrategy) -> dict:
    return {
        "mode": strategy.mode.value,
        "encoding": strategy.encoding.value if strategy.encoding else None,
        "orientation": strategy.orientation.value if strategy.orientation else None,
    }


def _strategy_from_json(obj: Mapping) -> StorageStrategy:
    return StorageStrategy(
        mode=LineageMode(obj["mode"]),
        encoding=EncodingKind(obj["encoding"]) if obj["encoding"] else None,
        orientation=Orientation(obj["orientation"]) if obj["orientation"] else None,
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One persisted store *generation*, as the manifest records it.

    A key that was only ever fully flushed has a single generation-0 entry;
    every ``append_stores`` adds one more (``gen`` 1, 2, …) until a
    compaction collapses them back to one.
    """

    node: str
    strategy: StorageStrategy
    out_shape: tuple[int, ...]
    in_shapes: tuple[tuple[int, ...], ...]
    file: str
    nbytes: int
    lowered: bool
    #: shard filenames (``<file>.0..k``) when the store was flushed sharded;
    #: empty for a monolithic segment
    shards: tuple[str, ...] = ()
    #: generation ordinal; 0 is the base segment, higher is a newer delta
    gen: int = 0
    #: True when the segment carries bloom/zone filter sections, so overlay
    #: reads can skip this generation decode-free (pre-filter segments have
    #: none and are always read)
    filters: bool = False

    @property
    def key(self) -> tuple[str, StorageStrategy]:
        return (self.node, self.strategy)

    @property
    def files(self) -> tuple[str, ...]:
        """The on-disk file(s) actually backing this store generation."""
        return self.shards if self.shards else (self.file,)


@dataclass
class CompactionReport:
    """What one :meth:`StoreCatalog.compact` call did."""

    #: ``(node, strategy, generations_merged)`` per compacted key
    compacted: list[tuple[str, StorageStrategy, int]] = field(default_factory=list)
    #: keys left multi-generation because the rewrite budget ran out
    skipped: list[tuple[str, StorageStrategy]] = field(default_factory=list)
    #: size of the merged base segments written
    bytes_written: int = 0
    #: pre-compaction bytes of the merged generations minus bytes_written
    bytes_reclaimed: int = 0

    @property
    def ok(self) -> bool:
        return not self.skipped


@dataclass
class _OpenStore:
    """One open (cached) store: the shared object plus its pin state.

    ``store`` is None while the first borrower is still opening the
    segment; ``ready`` flips once the load finished (or failed, in which
    case ``error`` is set and the record has left the cache).  The record
    is inserted — pinned — *before* the load runs, so concurrent borrows
    of the same key share one open and borrows of other keys never wait
    behind it.
    """

    key: tuple[str, StorageStrategy]
    store: OpLineageStore | None
    nbytes: int
    pins: int = 0
    #: 2Q tier: first-touch stores sit in ``probation`` (FIFO, first
    #: eviction victims); a re-reference promotes to ``protected`` (LRU)
    tier: str = "probation"
    #: set when the LRU evicted this record (it has left the cache)
    evicted: bool = False
    #: True once the backing mapping was closed
    closed: bool = False
    #: the exception the opening thread hit, for waiting borrowers
    error: BaseException | None = None
    ready: threading.Event = field(default_factory=threading.Event)

    def resident_bytes(self) -> int:
        """What this record actually costs the budget *right now*.

        A sharded store maps its shards lazily, so it is charged only the
        bytes of the shards currently mapped — not its full manifest size;
        a store still loading is charged its manifest size as a
        reservation; a closed store costs nothing.
        """
        if self.closed:
            return 0
        store = self.store
        if store is None:  # placeholder: reserve the full size while loading
            return self.nbytes
        seg = store._segment
        if seg is None:
            return 0
        mapped = getattr(seg, "mapped_bytes", None)
        return mapped() if mapped is not None else self.nbytes


class StoreCatalog:
    """Lazy-open, budget-bounded (2Q), thread-safe view over a flushed
    workflow's lineage segments (see module docstring)."""

    def __init__(
        self,
        directory: str,
        entries: Iterable[CatalogEntry],
        memory_budget_bytes: int | None = None,
    ):
        self.directory = directory
        #: cap on resident (mapped) segment bytes; None means unbounded,
        #: which preserves the pre-LRU behaviour of earlier releases
        self.memory_budget_bytes = memory_budget_bytes
        #: per (node, strategy): the live generations, oldest (lowest gen)
        #: first — a never-appended key holds exactly one gen-0 entry
        self._entries: dict[
            tuple[str, StorageStrategy], tuple[CatalogEntry, ...]
        ] = {}
        for entry in entries:
            self._entries[entry.key] = tuple(
                sorted(
                    self._entries.get(entry.key, ()) + (entry,),
                    key=lambda e: e.gen,
                )
            )
        self._lock = lockcheck.make_rlock("catalog.cache")
        #: serializes the *mutating* maintenance paths (append_stores,
        #: compact) against each other — two concurrent appends must never
        #: race the generation-ordinal choice (a duplicate ordinal would
        #: brick the manifest), and a compact never interleaves with an
        #: append's flush.  Readers are untouched: borrows only take
        #: ``_lock`` for cache bookkeeping.
        self._maintenance_lock = lockcheck.make_lock("catalog.maintenance")
        #: open-store cache with 2Q admission: ``probation`` records keep
        #: their insertion (FIFO) order because only a promotion moves a
        #: key to the end, so iteration order doubles as eviction order —
        #: probationary first-touch stores in arrival order, then
        #: ``protected`` re-referenced stores least-recently-used first
        self._open: "OrderedDict[tuple[str, StorageStrategy], _OpenStore]" = OrderedDict()
        #: 2Q ghost queue: keys recently evicted, remembered without data.
        #: A miss that hits the ghost is a re-reference across an eviction
        #: and admits straight to the protected tier — the scan-resistance
        #: half-life.  Bounded; oldest forgotten first.
        self._ghost: "OrderedDict[tuple[str, StorageStrategy], None]" = OrderedDict()
        #: records evicted while pinned: out of the cache, not yet closed
        self._lingering: list[_OpenStore] = []
        #: files superseded by a compaction while readers still held the old
        #: generation set: ``(records still serving them, paths)`` — the
        #: paths are unlinked when the *last* of those records closes (pins
        #: delay unlink; a reader must never lose a file it may still map,
        #: lazily or otherwise)
        self._deferred_unlink: list[tuple[list, list[str]]] = []
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._promotions = 0
        self._ghost_hits = 0
        #: shared generation-skip counters, injected into every overlay this
        #: catalog opens so :meth:`stats` sees process-wide filter hit rates
        self._filter_stats = FilterStats()

    # -- writing -------------------------------------------------------------

    @classmethod
    def write(
        cls,
        directory: str,
        stores,
        shard_threshold_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
    ) -> tuple["StoreCatalog", int]:
        """Flush ``stores`` (one segment each — sharded above the threshold
        when one is given — lowered tables included) and the manifest;
        returns ``(catalog, total_bytes_written)``.

        ``stores`` is anything with ``.items()`` yielding
        ``((node, strategy), store)`` pairs — a plain dict, or a lazy view
        like the runtime's one-at-a-time borrowing flush, which keeps only
        the store currently being written pinned in memory.

        A full write collapses generations: flushing an
        :class:`~repro.core.overlay.OverlayStore` writes the merged segment,
        and any stale delta files of the written stores are removed."""
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create catalog directory {directory!r}: {exc}"
            ) from exc
        entries: list[CatalogEntry] = []
        total = 0
        for (node, strategy), store in stores.items():
            fname = store_filename(node, strategy)
            path = os.path.join(directory, fname)
            nbytes = store.flush_segment(path, shard_threshold_bytes=shard_threshold_bytes)
            total += nbytes
            files = seglib.segment_files(path)
            shards = (
                tuple(os.path.basename(f) for f in files)
                if files != [path]
                else ()
            )
            entries.append(
                CatalogEntry(
                    node=node,
                    strategy=strategy,
                    out_shape=store.out_shape,
                    in_shapes=store.in_shapes,
                    file=fname,
                    nbytes=nbytes,
                    lowered=store.lowered_ready(),
                    shards=shards,
                    filters=store.persists_filters(),
                )
            )
            # a full flush supersedes every delta generation of this store
            for gen, _ in sorted(seglib.generation_files(path).items()):
                if gen != 0:
                    seglib.remove_segment(seglib.generation_path(path, gen))
        catalog = cls(directory, entries, memory_budget_bytes=memory_budget_bytes)
        total += catalog.save_manifest()
        return catalog, total

    def save_manifest(self) -> int:
        """(Re)write ``catalog.json`` from the current entries; returns its
        size.  Recovery calls this after quarantining segments so the
        on-disk manifest stops advertising stores that no longer serve.

        The write is atomic (tmp file + ``os.replace``): a crash mid-write
        leaves the previous manifest intact instead of a truncated one that
        would brick :meth:`open`."""
        with self._lock:
            stores = []
            for generations in self._entries.values():
                for entry in generations:
                    obj = {
                        "node": entry.node,
                        "strategy": _strategy_to_json(entry.strategy),
                        "out_shape": list(entry.out_shape),
                        "in_shapes": [list(s) for s in entry.in_shapes],
                        "file": entry.file,
                        "nbytes": entry.nbytes,
                        "lowered": entry.lowered,
                    }
                    if entry.shards:
                        obj["shards"] = list(entry.shards)
                    if entry.gen:
                        # gen 0 stays implicit so a never-appended manifest is
                        # byte-compatible with the pre-generation schema
                        obj["gen"] = entry.gen
                    if entry.filters:
                        # like gen/shards: optional and additive, so catalogs
                        # written before filters round-trip byte-identically
                        obj["filters"] = True
                    stores.append(obj)
        manifest = {"format": FORMAT, "version": VERSION, "stores": stores}
        path = os.path.join(self.directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
            return os.path.getsize(path)
        except BaseException as exc:
            # never leave a half-written tmp behind a crash we can see
            try:
                os.remove(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise StorageError(
                    f"cannot write catalog manifest {path!r}: {exc}"
                ) from exc
            raise

    # -- appending (incremental delta generations) -----------------------------

    @classmethod
    def append(
        cls,
        directory: str,
        stores,
        shard_threshold_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
    ) -> tuple["StoreCatalog", int]:
        """Append ``stores`` to the catalog at ``directory`` as delta
        generations — the cheap incremental commit: only the deltas and the
        manifest are written, committed segments are never rewritten.
        Creates the catalog when the directory holds none (the append then
        degenerates to a first full flush).  Returns
        ``(catalog, total_bytes_written)``."""
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            catalog = cls.open(directory, memory_budget_bytes=memory_budget_bytes)
        else:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError as exc:
                raise StorageError(
                    f"cannot create catalog directory {directory!r}: {exc}"
                ) from exc
            catalog = cls(directory, [], memory_budget_bytes=memory_budget_bytes)
        total = catalog.append_stores(
            stores, shard_threshold_bytes=shard_threshold_bytes
        )
        return catalog, total

    def append_stores(self, stores, shard_threshold_bytes: int | None = None) -> int:
        """Write each store as the next delta generation of its key and
        re-register the manifest; returns bytes written.

        Per store: a key the catalog already records gains generation
        ``max(gen) + 1`` (skipping ordinals whose files a crash left on
        disk); an unknown key is written as its generation-0 base segment.
        Empty stores are skipped — an empty delta would add a probe pass of
        read amplification and no lineage.  A delta's array shapes must
        match the committed generations (a reshape needs a full re-flush).

        Open records of appended keys are retired, so the next borrow sees
        the new generation set; sessions pinned on the old set keep serving
        it until they release (the committed files are untouched).
        Concurrent appends (and compactions) are serialized, so two racing
        appends can never claim the same generation ordinal.
        """
        with self._maintenance_lock:
            # szlint: ignore[SZ002] -- the maintenance lock exists to serialize flush I/O; readers never take it
            return self._append_stores_locked(stores, shard_threshold_bytes)

    def _append_stores_locked(self, stores, shard_threshold_bytes: int | None) -> int:
        # validate every delta's shapes BEFORE writing anything, so a
        # mixed-validity batch fails whole: no store of the batch is
        # committed, and the manifest never lags a segment already written
        pending = []
        for (node, strategy), store in stores.items():
            if store.n_entries == 0:
                continue
            with self._lock:
                existing = self._entries.get((node, strategy), ())
            if existing:
                base = existing[0]
                if (
                    store.out_shape != base.out_shape
                    or store.in_shapes != base.in_shapes
                ):
                    raise StorageError(
                        f"cannot append store ({node!r}, {strategy.label}): "
                        f"delta shapes out={store.out_shape} do not match the "
                        f"committed generations (out={base.out_shape}); "
                        "re-flush the catalog in full instead"
                    )
            pending.append(((node, strategy), store))
        total = 0
        appended = False
        try:
            for key, store in pending:
                total += self._append_one_locked(key, store, shard_threshold_bytes)
                appended = True
        finally:
            # persist whatever WAS committed even when a later store's write
            # fails: the live entry map and catalog.json must not diverge
            if appended:
                total += self.save_manifest()
        return total

    def _append_one_locked(
        self,
        key: tuple[str, StorageStrategy],
        store,
        shard_threshold_bytes: int | None,
    ) -> int:
        node, strategy = key
        with self._lock:
            existing = self._entries.get(key, ())
        base_path = os.path.join(self.directory, store_filename(node, strategy))
        if existing:
            on_disk = seglib.generation_files(base_path)
            gen = max(e.gen for e in existing) + 1
            while gen in on_disk:  # stale files from an interrupted run
                gen += 1
        else:
            gen = 0
        path = seglib.generation_path(base_path, gen)
        nbytes = store.flush_segment(
            path, shard_threshold_bytes=shard_threshold_bytes
        )
        files = seglib.segment_files(path)
        shards = (
            tuple(os.path.basename(f) for f in files)
            if files != [path]
            else ()
        )
        entry = CatalogEntry(
            node=node,
            strategy=strategy,
            out_shape=store.out_shape,
            in_shapes=store.in_shapes,
            file=os.path.basename(path),
            nbytes=nbytes,
            lowered=store.lowered_ready(),
            shards=shards,
            gen=gen,
            filters=store.persists_filters(),
        )
        with self._lock:
            merged = self._entries.get(key, ()) + (entry,)
            self._entries[key] = tuple(sorted(merged, key=lambda e: e.gen))
            record = self._open.pop(key, None)
            stale = self._retire_locked(record) if record is not None else []
        self._reclaim(stale)
        return nbytes

    # -- compaction -------------------------------------------------------------

    def compact(
        self,
        node: str | None = None,
        strategy: StorageStrategy | None = None,
        budget_bytes: int | None = None,
        shard_threshold_bytes: int | None = None,
    ) -> CompactionReport:
        """Merge delta generations back into one base segment per key,
        online: concurrent sessions keep serving throughout.

        ``node`` / ``strategy`` restrict the sweep to one store (or one
        node's stores); by default every multi-generation key is compacted,
        worst read amplification (most generations) first.  ``budget_bytes``
        caps the bytes *read and rewritten* in this call — keys that would
        exceed it are reported in :attr:`CompactionReport.skipped` for a
        later pass, but the first candidate always runs, so a small budget
        still makes progress.

        Per key the sequence is crash-safe and reader-safe: the merged
        segment is written to a tmp file and atomically renamed over the
        generation-0 path (pinned readers of the old base keep their inode,
        and the old base's superseded shard files are *not* touched yet);
        the in-memory entry set and then the manifest are swapped (a crash
        before the manifest swap leaves the old manifest pointing at the
        merged base plus the deltas — an overlay of a superset, still
        correct); finally the superseded files — delta generations and the
        old base's stale shards — are unlinked, deferred until the last pin
        drops when the key is currently borrowed.  Mutating maintenance
        (appends, other compactions) is serialized with this call; readers
        are not blocked.

        Caveat: the full compact-while-serving guarantee holds for the
        default *monolithic* merge.  Passing ``shard_threshold_bytes``
        re-shards the base **in place** (new shard files rename over old
        ordinals); a reader pinned on the old sharded base that lazily maps
        a replaced shard then fails *loudly* (the per-flush shard token
        refuses mixed generations) rather than serving the old set.  Prefer
        monolithic compaction while serving; re-shard in a maintenance
        window or with a full re-flush.
        """
        with self._maintenance_lock:
            # szlint: ignore[SZ002] -- the maintenance lock exists to serialize merge I/O; readers never take it
            return self._compact_locked(node, strategy, budget_bytes, shard_threshold_bytes)

    def _compact_locked(
        self,
        node: str | None,
        strategy: StorageStrategy | None,
        budget_bytes: int | None,
        shard_threshold_bytes: int | None,
    ) -> CompactionReport:
        with self._lock:
            candidates = [
                (key, generations)
                for key, generations in self._entries.items()
                if len(generations) > 1
                and (node is None or key[0] == node)
                and (strategy is None or key[1] == strategy)
            ]
        candidates.sort(key=lambda kv: (-len(kv[1]), kv[0][0]))
        report = CompactionReport()
        spent = 0
        for key, generations in candidates:
            size = sum(e.nbytes for e in generations)
            if (
                budget_bytes is not None
                and report.compacted
                and spent + size > budget_bytes
            ):
                report.skipped.append(key)
                continue
            written = self._compact_key(key, generations, shard_threshold_bytes)
            spent += size
            report.compacted.append((key[0], key[1], len(generations)))
            report.bytes_written += written
            report.bytes_reclaimed += size - written
        return report

    def _compact_key(
        self,
        key: tuple[str, StorageStrategy],
        generations: tuple[CatalogEntry, ...],
        shard_threshold_bytes: int | None,
    ) -> int:
        node, strategy = key
        base = generations[0]
        stores: list[OpLineageStore] = []
        try:
            # open the generations directly (not through the serving cache):
            # compaction reads stay off the serving path and never perturb
            # the LRU or its pin accounting
            for entry in generations:
                store = make_store(node, strategy, entry.out_shape, entry.in_shapes)
                store.load_segment(os.path.join(self.directory, entry.file))
                stores.append(store)
            # the merge itself is the overlay's: one absorb per generation,
            # oldest first, finalized once
            merged = OverlayStore(stores).merged_store()
            base_path = os.path.join(self.directory, store_filename(node, strategy))
            # superseded base files (e.g. the old sharded base's .0..k when
            # the merge writes a monolith) are *reported*, not removed —
            # a pinned reader may not have mapped them yet, and the old
            # manifest still references them until the swap below
            base_stale: list[str] = []
            try:
                nbytes = merged.flush_segment(
                    base_path,
                    shard_threshold_bytes=shard_threshold_bytes,
                    stale_sink=base_stale,
                )
            except (OSError, StorageError) as exc:
                # e.g. Windows refusing to rename over a base segment a
                # pinned reader still maps; nothing was swapped — the old
                # generation set keeps serving, retry after pins drop
                raise StorageError(
                    f"compaction of ({node!r}, {strategy.label}) could not "
                    f"replace {base_path!r} (still mapped by a reader?): "
                    f"{exc}"
                ) from exc
        finally:
            for store in stores:
                store.close()
        files = seglib.segment_files(base_path)
        shards = (
            tuple(os.path.basename(f) for f in files)
            if files != [base_path]
            else ()
        )
        new_entry = CatalogEntry(
            node=node,
            strategy=strategy,
            out_shape=base.out_shape,
            in_shapes=base.in_shapes,
            file=store_filename(node, strategy),
            nbytes=nbytes,
            lowered=merged.lowered_ready(),
            shards=shards,
            gen=0,
            filters=merged.persists_filters(),
        )
        stale = [
            os.path.join(self.directory, e.file) for e in generations if e.gen != 0
        ] + base_stale
        merged_gens = {e.gen for e in generations}
        with self._lock:
            # generations appended while we merged survive as deltas over
            # the new base; the ones we merged are replaced by it
            survivors = tuple(
                e for e in self._entries.get(key, ()) if e.gen not in merged_gens
            )
            self._entries[key] = tuple(
                sorted((new_entry,) + survivors, key=lambda e: e.gen)
            )
            record = self._open.pop(key, None)
            # every record still serving the OLD generation set: the one we
            # just popped, plus any evicted-while-pinned stragglers
            holders = [r for r in self._lingering if r.key == key]
            if record is not None:
                holders.append(record)
        self.save_manifest()
        with self._lock:
            unlinkable: list[str] = []
            if record is not None:
                # closes now unless a session pins it
                unlinkable += self._retire_locked(record)
            # readers of the old set keep their files until the last one
            # closes; with no live holder this unlinks immediately
            unlinkable += self._defer_unlink_locked(holders, stale)
        self._reclaim(unlinkable)
        return nbytes

    # -- opening -------------------------------------------------------------

    @classmethod
    def open(
        cls, directory: str, memory_budget_bytes: int | None = None
    ) -> "StoreCatalog":
        """Parse the manifest only; no segment file is touched."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise StorageError(f"no lineage catalog at {directory!r}: {exc}") from exc
        except ValueError as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        if manifest.get("format") != FORMAT:
            raise StorageError(f"{path!r} is not a lineage catalog manifest")
        if int(manifest.get("version", 0)) > VERSION:
            raise StorageError(
                f"lineage catalog {path!r} has version {manifest['version']}, "
                f"newer than supported version {VERSION}"
            )
        entries = []
        try:
            for obj in manifest["stores"]:
                entries.append(
                    CatalogEntry(
                        node=obj["node"],
                        strategy=_strategy_from_json(obj["strategy"]),
                        out_shape=tuple(obj["out_shape"]),
                        in_shapes=tuple(tuple(s) for s in obj["in_shapes"]),
                        file=obj["file"],
                        nbytes=int(obj["nbytes"]),
                        lowered=bool(obj.get("lowered", False)),
                        shards=tuple(obj.get("shards", ())),
                        gen=int(obj.get("gen", 0)),
                        filters=bool(obj.get("filters", False)),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"corrupt lineage catalog {path!r}: {exc}") from exc
        seen = set()
        for entry in entries:
            if (entry.key, entry.gen) in seen:
                raise StorageError(
                    f"corrupt lineage catalog {path!r}: store "
                    f"({entry.node!r}, {entry.strategy.label}) lists "
                    f"generation {entry.gen} twice"
                )
            seen.add((entry.key, entry.gen))
        return cls(directory, entries, memory_budget_bytes=memory_budget_bytes)

    # -- manifest-level accessors --------------------------------------------

    def __len__(self) -> int:
        """Number of stores (keys) — generations do not inflate the count."""
        return len(self._entries)

    def keys(self) -> list[tuple[str, StorageStrategy]]:
        return list(self._entries)

    def entries(self) -> list[CatalogEntry]:
        """Every live entry, one per *generation* (recovery verifies each)."""
        return [e for generations in self._entries.values() for e in generations]

    def entry(self, node: str, strategy: StorageStrategy) -> CatalogEntry | None:
        """The base (oldest live) generation of the key; None when absent."""
        generations = self._entries.get((node, strategy))
        return generations[0] if generations else None

    def generations_for(
        self, node: str, strategy: StorageStrategy
    ) -> tuple[CatalogEntry, ...]:
        """Every live generation of the key, oldest first."""
        return self._entries.get((node, strategy), ())

    def generation_count(self, node: str, strategy: StorageStrategy) -> int:
        """How many live generations serve the key (1 = compacted/base)."""
        return len(self._entries.get((node, strategy), ()))

    def drop(self, node: str, strategy: StorageStrategy) -> None:
        """Forget a key — all generations (legacy whole-store quarantine)."""
        with self._lock:
            self._entries.pop((node, strategy), None)
            record = self._open.pop((node, strategy), None)
            stale = self._retire_locked(record) if record is not None else []
        self._reclaim(stale)

    def drop_generation(self, node: str, strategy: StorageStrategy, gen: int) -> None:
        """Forget one generation of a key, keeping the others serving (used
        when recovery quarantines a torn delta segment).  Any open record is
        retired so the next borrow rebuilds the overlay without it."""
        with self._lock:
            generations = self._entries.get((node, strategy), ())
            kept = tuple(e for e in generations if e.gen != gen)
            if len(kept) == len(generations):
                return
            if kept:
                self._entries[(node, strategy)] = kept
            else:
                self._entries.pop((node, strategy), None)
            record = self._open.pop((node, strategy), None)
            stale = self._retire_locked(record) if record is not None else []
        self._reclaim(stale)

    def strategies_for(self, node: str) -> tuple[StorageStrategy, ...]:
        return tuple(s for (n, s) in self._entries if n == node)

    def manifest_bytes(self, node: str, strategy: StorageStrategy) -> int:
        """Total on-disk bytes of the key, summed across generations."""
        return sum(e.nbytes for e in self._entries.get((node, strategy), ()))

    def lowered_ready(self, node: str, strategy: StorageStrategy) -> bool:
        """True only when *every* generation persisted its lowered tables —
        an overlay scan is warm iff each generation's pass is."""
        generations = self._entries.get((node, strategy), ())
        return bool(generations) and all(e.lowered for e in generations)

    def filters_ready(self, node: str, strategy: StorageStrategy) -> bool:
        """True only when *every* generation persisted its key filters —
        the cost model may then price matched overlay reads at the
        filter-skip rate instead of the full per-generation probe rate."""
        generations = self._entries.get((node, strategy), ())
        return bool(generations) and all(e.filters for e in generations)

    # -- serving: borrow / release (the pinned path) --------------------------

    def borrow(self, node: str, strategy: StorageStrategy) -> _OpenStore | None:
        """Open (or hit) the store and return a *pinned* record; None when
        the key is not in the manifest.

        The returned record's ``.store`` is safe to read from the calling
        thread until the matching :meth:`release` — eviction will never
        close a mapping while it holds a pin.  Every borrow must be paired
        with exactly one release (``QuerySession`` does this bookkeeping).

        The catalog lock is held only for the cache bookkeeping: a miss
        inserts a pinned placeholder, then opens the segment *outside* the
        lock, so concurrent borrows of other stores (and hits) never queue
        behind one thread's open; concurrent borrows of the *same* store
        wait on the record's ready event and share the single mapping.
        """
        key = (node, strategy)
        load_entries = None
        with self._lock:
            record = self._open.get(key)
            if record is not None:
                if record.tier == "probation":
                    # 2Q promotion: the second touch proves re-reference
                    record.tier = "protected"
                    self._promotions += 1
                self._open.move_to_end(key)
                record.pins += 1
                self._hits += 1
            else:
                generations = self._entries.get(key)
                if not generations:
                    return None
                self._misses += 1
                tier = "probation"
                if key in self._ghost:
                    # re-reference across an eviction: the ghost remembers
                    # this key was here recently, so admit it protected
                    del self._ghost[key]
                    self._ghost_hits += 1
                    tier = "protected"
                record = _OpenStore(
                    key=key,
                    store=None,
                    nbytes=sum(e.nbytes for e in generations),
                    pins=1,
                    tier=tier,
                )
                self._open[key] = record
                load_entries = generations  # this thread inserted the placeholder
        if load_entries is not None:  # ...so this thread performs the open
            try:
                store = self._open_generations(node, strategy, load_entries)
            except BaseException as exc:
                with self._lock:
                    record.error = exc
                    record.pins -= 1
                    record.evicted = True
                    if self._open.get(key) is record:
                        del self._open[key]
                    stale = self._close_record_locked(record)
                record.ready.set()  # wake waiters; they re-raise via error
                self._reclaim(stale)
                raise
            record.store = store
            record.ready.set()
            with self._lock:
                stale = self._evict_over_budget()
            self._reclaim(stale)
            return record
        record.ready.wait()
        if record.error is not None:
            with self._lock:
                record.pins -= 1
            raise StorageError(
                f"store ({node!r}, {strategy.label}) failed to open"
            ) from record.error
        return record

    def _open_generations(
        self,
        node: str,
        strategy: StorageStrategy,
        generations: tuple[CatalogEntry, ...],
    ) -> OpLineageStore:
        """Open every live generation of a key; a single generation comes
        back as the plain store, several as the overlay union view."""
        stores: list[OpLineageStore] = []
        try:
            for entry in generations:
                store = make_store(node, strategy, entry.out_shape, entry.in_shapes)
                store.load_segment(os.path.join(self.directory, entry.file))
                stores.append(store)
        except BaseException:
            for store in stores:
                store.close()
            raise
        if len(stores) == 1:
            return stores[0]
        return OverlayStore(stores, filter_stats=self._filter_stats)

    def release(self, record: _OpenStore) -> None:
        """Drop one pin; a record evicted while pinned closes on the last
        release, and the budget is re-checked now that a pin is free."""
        with self._lock:
            record.pins -= 1
            if record.evicted and record.pins <= 0:
                stale = self._close_record_locked(record)
            else:
                stale = self._evict_over_budget()
        self._reclaim(stale)

    def open_store(
        self, node: str, strategy: StorageStrategy
    ) -> OpLineageStore | None:
        """Open (and cache) one store lazily; None when not in the manifest.

        The returned store's components are mmap-backed views over the
        segment — nothing is decoded until a query touches it, and the
        persisted lowered tables make its first mismatched scan warm.

        This is the *unpinned* convenience path: with no memory budget the
        store stays cached indefinitely (the pre-LRU contract); with a
        budget set, long-lived readers should borrow through a
        :class:`~repro.core.query.QuerySession` instead, because an
        unpinned store may be evicted (and closed) as soon as the next
        open needs the room.  The store returned here is excluded from the
        unpin's own budget check, so it is always live when handed back —
        a later eviction makes it raise loudly rather than answer empty.
        """
        record = self.borrow(node, strategy)
        if record is None:
            return None
        store = record.store
        with self._lock:
            record.pins -= 1
            if record.evicted and record.pins <= 0:
                # retired while we held the only pin (e.g. recovery dropped
                # the entry): close now so the mapping never lingers; the
                # poisoned store tells the caller loudly
                stale = self._close_record_locked(record)
            else:
                stale = self._evict_over_budget(exclude=record)
        self._reclaim(stale)
        return store

    # -- eviction ------------------------------------------------------------

    def _evict_over_budget(self, exclude: _OpenStore | None = None) -> list[str]:
        """Evict (2Q order: probation FIFO, then protected LRU) until
        resident bytes fit the budget; returns the deferred-unlink paths
        the evictions released (the caller reclaims them after dropping
        the lock).

        Only *unpinned* records are eligible — classic buffer-pool
        semantics: borrowed stores stay shared and mapped, and the cache
        may transiently exceed the budget by the pinned working set.  The
        budget is re-checked on every release, so a store that outlived
        its welcome closes the moment its last pin drops.  ``exclude``
        shields one record from this pass only (the store ``open_store``
        is about to hand back unpinned).  Callers hold the lock.
        """
        unlinkable: list[str] = []
        budget = self.memory_budget_bytes
        if budget is None:
            return unlinkable
        while self._resident_bytes_locked() > budget:
            victim_key = None
            # 2Q victim order: probationary (never re-referenced) stores go
            # first, in FIFO arrival order — a one-off scan churns only its
            # own admissions.  Protected stores are plain LRU and fall only
            # when no unpinned probationary victim remains.  Within a tier,
            # multi-generation overlays (cold deltas awaiting compaction,
            # cheap to re-open and due to be merged anyway) fall before
            # single-generation bases at the same recency.
            for wanted_tier in ("probation", "protected"):
                fallback = None
                for key, record in self._open.items():
                    if (
                        record.tier != wanted_tier
                        or record.pins > 0
                        or record is exclude
                    ):
                        continue
                    if len(self._entries.get(key, ())) > 1:
                        victim_key = key
                        break
                    if fallback is None:
                        fallback = key
                if victim_key is None:
                    victim_key = fallback
                if victim_key is not None:
                    break
            if victim_key is None:
                break  # everything left is pinned; retry at next release
            record = self._open.pop(victim_key)
            record.evicted = True
            self._evictions += 1
            self._remember_ghost_locked(victim_key)
            unlinkable.extend(self._close_record_locked(record))
        return unlinkable

    def _remember_ghost_locked(self, key: tuple[str, StorageStrategy]) -> None:
        """Push an evicted key onto the bounded ghost queue (oldest
        forgotten first).  Capacity scales with the catalog so one sweep
        over every store cannot wash out the re-reference memory.
        Callers hold the lock."""
        self._ghost[key] = None
        self._ghost.move_to_end(key)
        capacity = max(16, 2 * len(self._entries))
        while len(self._ghost) > capacity:
            self._ghost.popitem(last=False)

    def _close_record_locked(self, record: _OpenStore) -> list[str]:
        """Close a record's mapping and return the deferred-unlink paths
        its close released.  Callers hold the lock and MUST pass the
        returned paths to :meth:`_reclaim` after dropping it: unlinks are
        disk I/O, and the catalog lock is never held across disk I/O
        (rule SZ002).  The ``store.close()`` itself — an munmap — stays
        under the lock: it is non-blocking bookkeeping, and running it
        here keeps resident-byte accounting exact."""
        unlinkable: list[str] = []
        if record in self._lingering:
            self._lingering.remove(record)
        if not record.closed:
            record.closed = True
            if record.store is not None:
                record.store.close()
        # release any compaction-superseded files that were waiting on this
        # record; they unlink when their last holder closes
        if self._deferred_unlink:
            remaining: list[tuple[list, list[str]]] = []
            for holders, files in self._deferred_unlink:
                holders = [r for r in holders if r is not record and not r.closed]
                if holders:
                    remaining.append((holders, files))
                else:
                    unlinkable.extend(files)
            self._deferred_unlink = remaining
        return unlinkable

    def _defer_unlink_locked(self, holders: list, files: list[str]) -> list[str]:
        """Queue ``files`` behind ``holders``; returns the ones with no
        live holder, which the caller unlinks after dropping the lock."""
        holders = [r for r in holders if not r.closed]
        if not files:
            return []
        if holders:
            self._deferred_unlink.append((holders, list(files)))
            return []
        return list(files)

    def _retire_locked(self, record: _OpenStore) -> list[str]:
        """Close (or defer-close) a record leaving the cache outside the
        normal eviction path (drop / close); returns paths to reclaim."""
        record.evicted = True
        if record.pins > 0:
            self._lingering.append(record)
            return []
        return self._close_record_locked(record)

    @staticmethod
    def _reclaim(paths: list[str]) -> None:
        """Unlink superseded segment files — always called after the
        catalog lock is released, so one thread's slow disk never stalls
        every concurrent borrow on cache bookkeeping."""
        for path in paths:
            seglib.remove_segment(path)

    def _resident_bytes_locked(self) -> int:
        total = sum(r.resident_bytes() for r in self._open.values())
        return total + sum(r.resident_bytes() for r in self._lingering)

    # -- introspection ---------------------------------------------------------

    def resident_bytes(self) -> int:
        """Mapped segment bytes currently held open (incl. pinned-evicted)."""
        with self._lock:
            return self._resident_bytes_locked()

    def open_count(self) -> int:
        """How many stores are currently open in the cache (laziness probe)."""
        with self._lock:
            return len(self._open)

    def is_open(self, node: str, strategy: StorageStrategy) -> bool:
        with self._lock:
            return (node, strategy) in self._open

    def stats(self) -> dict[str, int]:
        """Serving-cache counters for benchmarks and ``explain()``."""
        with self._lock:
            out = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "promotions": self._promotions,
                "ghost_hits": self._ghost_hits,
                "open_mappings": len(self._open) + len(self._lingering),
                "resident_bytes": self._resident_bytes_locked(),
            }
        # the filter counters have their own lock; merged outside ours
        out.update(self._filter_stats.snapshot())
        return out

    def is_catalog_store(
        self, node: str, strategy: StorageStrategy, store: OpLineageStore
    ) -> bool:
        """True when ``store`` is the object this catalog currently serves
        for the key (as opposed to a freshly re-ingested resident store)."""
        with self._lock:
            record = self._open.get((node, strategy))
            return record is not None and record.store is store

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close every open mapping and empty the cache.

        Pinned records are closed too — callers must first end their
        sessions; this is the shutdown path, not an eviction."""
        with self._lock:
            records = list(self._open.values()) + list(self._lingering)
            self._open.clear()
            self._lingering.clear()
            stale: list[str] = []
            for record in records:
                record.evicted = True
                stale.extend(self._close_record_locked(record))
        self._reclaim(stale)

    def __enter__(self) -> "StoreCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
